"""Tests for the Markdown report generator."""

import pytest

from repro.analysis import markdown_table, render_report, write_report
from repro.experiments.base import ExperimentOutput


def fake_output(experiment_id="x", checks=None, rows=None):
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=f"title of {experiment_id}",
        scale="smoke",
        rows=rows if rows is not None else [{"a": 1, "b": 2.5}],
        text="body",
        checks=checks if checks is not None else {"good": True},
    )


class TestMarkdownTable:
    def test_basic(self):
        text = markdown_table([{"a": 1, "b": None}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | — |"

    def test_empty(self):
        assert "(no rows)" in markdown_table([])

    def test_pipe_escaped(self):
        assert "\\|" in markdown_table([{"a": "x|y"}])

    def test_float_formatting(self):
        assert "| 0.3333 |" in markdown_table([{"a": 1 / 3}])


class TestRenderReport:
    def test_summary_counts(self):
        report = render_report(
            [fake_output("one"), fake_output("two", checks={"ok": True, "bad": False})]
        )
        assert "2/3 shape checks passed" in report
        assert "| one | smoke | 1/1 | PASS |" in report
        assert "FAIL: bad" in report
        assert "❌ `bad`" in report

    def test_row_truncation(self):
        rows = [{"n": i} for i in range(60)]
        report = render_report([fake_output(rows=rows)], max_rows=10)
        assert "50 more rows" in report

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_report([fake_output()], path, title="My run")
        text = path.read_text()
        assert text.startswith("# My run")
        assert "title of x" in text


class TestCLIReportFlag:
    def test_run_with_report(self, tmp_path, capsys):
        from repro._cli import main

        report = tmp_path / "out.md"
        code = main(
            ["run", "thm4", "--scale", "smoke", "--report", str(report)]
        )
        assert code == 0
        assert report.exists()
        assert "thm4" in report.read_text()
