"""Tests for repro.analysis (sweep, tables, plots, stats)."""

import dataclasses

import numpy as np

from repro.analysis import (
    SweepJob,
    SweepRunner,
    WorkloadSpec,
    fairness_summary,
    format_table,
    group_records,
    line_plot,
    ratio_series,
    run_sweep,
    scatter_plot,
    sweep_result_key,
    to_csv,
    write_csv,
)
from repro.analysis import sweep as sweep_mod
from repro.core import SimulationConfig, Simulator, run_simulation

#: every engine-produced SweepRecord field; wall_time_s is excluded from
#: cross-run comparisons because it is the one non-deterministic column.
METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "fetches",
    "evictions",
)


def demo_jobs(threads=(2, 4), arbs=("fifo", "priority"), k=32):
    jobs = []
    for p in threads:
        spec = WorkloadSpec.make(
            "adversarial_cycle", threads=p, pages=16, repeats=4
        )
        for arb in arbs:
            jobs.append(SweepJob(spec, SimulationConfig(hbm_slots=k, arbitration=arb)))
    return jobs


def count_engine_dispatch(monkeypatch, calls):
    """Count per-job engine work through both dispatchers.

    The runner may route eligible cache-miss jobs through
    ``simulate_batch`` instead of per-job ``simulate``; each batched
    lane counts as one call so cache-behavior assertions hold for any
    ``batch_limit()``.
    """
    real = sweep_mod.simulate
    real_batch = sweep_mod.simulate_batch

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    def counting_batch(items, *args, **kwargs):
        items = list(items)
        calls.extend([1] * len(items))
        return real_batch(items, *args, **kwargs)

    monkeypatch.setattr(sweep_mod, "simulate", counting)
    monkeypatch.setattr(sweep_mod, "simulate_batch", counting_batch)


class TestWorkloadSpec:
    def test_build_matches_factory(self):
        spec = WorkloadSpec.make("random", threads=3, seed=2, length=50, pages=8)
        wl = spec.build()
        assert wl.num_threads == 3
        assert wl.total_references == 150

    def test_hashable_and_param_order_independent(self):
        a = WorkloadSpec.make("random", 2, length=10, pages=4)
        b = WorkloadSpec.make("random", 2, pages=4, length=10)
        assert a == b
        assert hash(a) == hash(b)

    def test_describe(self):
        text = WorkloadSpec.make("sort", 4, n=100).describe()
        assert "sort" in text and "n=100" in text


class TestSweep:
    def test_sequential_matches_parallel(self, tmp_path):
        jobs = demo_jobs()
        seq = run_sweep(jobs, processes=1, cache_dir=tmp_path / "c1")
        par = run_sweep(jobs, processes=4, cache_dir=tmp_path / "c2")
        assert [r.makespan for r in seq] == [r.makespan for r in par]
        assert [r.inconsistency for r in seq] == [r.inconsistency for r in par]

    def test_records_preserve_job_identity(self):
        jobs = demo_jobs(threads=(2,))
        records = run_sweep(jobs, processes=1)
        assert [r.job for r in records] == jobs

    def test_empty_jobs(self):
        assert run_sweep([], processes=2) == []

    def test_prepare_warms_cache(self, tmp_path):
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        jobs = demo_jobs(threads=(2,))
        runner.prepare(jobs)
        assert list(tmp_path.glob("*.npz"))

    def test_record_row_is_flat(self):
        records = run_sweep(demo_jobs(threads=(2,)), processes=1)
        row = records[0].row()
        assert row["threads"] == 2
        assert row["arbitration"] in ("fifo", "priority")
        assert isinstance(row["makespan"], int)

    def test_record_row_perf_columns(self):
        records = run_sweep(demo_jobs(threads=(2,)), processes=1)
        row = records[0].row()
        assert {"requests", "fetches", "evictions", "wall_time_s"} <= row.keys()
        assert row["fetches"] >= 1
        assert row["wall_time_s"] >= 0.0


def mixed_engine_jobs(k=32):
    """Jobs spanning both dispatch outcomes: fast-eligible LRU configs
    and clock-replacement configs that must fall back to the reference
    engine."""
    jobs = []
    for p in (2, 4):
        spec = WorkloadSpec.make(
            "adversarial_cycle", threads=p, pages=16, repeats=4
        )
        for replacement in ("lru", "clock"):
            jobs.append(
                SweepJob(
                    spec,
                    SimulationConfig(
                        hbm_slots=k,
                        arbitration="priority",
                        replacement=replacement,
                    ),
                )
            )
        jobs.append(
            SweepJob(
                spec,
                SimulationConfig(
                    hbm_slots=k, arbitration="fifo", record_responses=True
                ),
            )
        )
    return jobs


class TestSweepDifferential:
    """SweepRunner must agree with the reference Simulator bit-for-bit
    regardless of process count, engine dispatch, or caching."""

    def test_pool_sequential_and_direct_agree(self, tmp_path):
        jobs = mixed_engine_jobs()
        seq = run_sweep(jobs, processes=1, cache_dir=tmp_path / "seq")
        par = run_sweep(jobs, processes=2, cache_dir=tmp_path / "par")
        direct = [
            Simulator(job.workload.build().traces, job.config).run()
            for job in jobs
        ]
        for s, p, d in zip(seq, par, direct):
            for name in METRIC_FIELDS:
                assert getattr(s, name) == getattr(p, name)
                assert getattr(s, name) == getattr(d, name)

    def test_forced_engines_agree(self, tmp_path):
        jobs = demo_jobs()
        ref = run_sweep(jobs, processes=1, engine="reference")
        fast = run_sweep(jobs, processes=1, engine="fast")
        auto = run_sweep(jobs, processes=1, engine="auto")
        for a, b, c in zip(ref, fast, auto):
            for name in METRIC_FIELDS:
                assert getattr(a, name) == getattr(b, name) == getattr(c, name)


class TestResultCache:
    def test_rerun_replays_without_engine(self, tmp_path, monkeypatch):
        jobs = demo_jobs()
        first = run_sweep(jobs, processes=1, cache_dir=tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("engine invoked despite warm result cache")

        monkeypatch.setattr(sweep_mod, "simulate", boom)
        monkeypatch.setattr(sweep_mod, "simulate_batch", boom)
        second = run_sweep(jobs, processes=1, cache_dir=tmp_path)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        # Replays carry the original measurements; only `cached` differs.
        assert [dataclasses.replace(r, cached=False) for r in second] == first

    def test_disabled_cache_recomputes(self, tmp_path, monkeypatch):
        jobs = demo_jobs(threads=(2,))
        run_sweep(jobs, processes=1, cache_dir=tmp_path)
        calls = []
        count_engine_dispatch(monkeypatch, calls)
        run_sweep(jobs, processes=1, cache_dir=tmp_path, result_cache=False)
        assert len(calls) == len(jobs)

    def test_cache_entries_on_disk(self, tmp_path):
        jobs = demo_jobs(threads=(2,))
        run_sweep(jobs, processes=1, cache_dir=tmp_path)
        assert len(list((tmp_path / "results").glob("*.json"))) == len(jobs)

    def test_no_cache_dir_means_no_cache(self, tmp_path, monkeypatch):
        jobs = demo_jobs(threads=(2,))
        run_sweep(jobs, processes=1)
        calls = []
        count_engine_dispatch(monkeypatch, calls)
        run_sweep(jobs, processes=1)
        assert len(calls) == len(jobs)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        jobs = demo_jobs(threads=(2,))
        first = run_sweep(jobs, processes=1, cache_dir=tmp_path)
        for path in (tmp_path / "results").glob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        second = run_sweep(jobs, processes=1, cache_dir=tmp_path)
        for a, b in zip(first, second):
            for name in METRIC_FIELDS:
                assert getattr(a, name) == getattr(b, name)

    def test_key_depends_on_spec_and_config_not_tag(self):
        spec = WorkloadSpec.make("random", 2, length=10, pages=4)
        other_spec = WorkloadSpec.make("random", 2, length=20, pages=4)
        cfg = SimulationConfig(hbm_slots=8)
        key = sweep_result_key(spec, cfg)
        assert key == sweep_result_key(spec, cfg)  # stable
        assert key != sweep_result_key(other_spec, cfg)
        assert key != sweep_result_key(spec, SimulationConfig(hbm_slots=16))
        # the tag is presentation metadata, not simulation input
        a = SweepJob(spec, cfg, tag="a")
        b = SweepJob(spec, cfg, tag="b")
        assert sweep_result_key(a.workload, a.config) == sweep_result_key(
            b.workload, b.config
        )

    def test_set_result_cache_default_round_trip(self, tmp_path, monkeypatch):
        from repro.analysis import set_result_cache_default

        jobs = demo_jobs(threads=(2,))
        run_sweep(jobs, processes=1, cache_dir=tmp_path)
        previous = set_result_cache_default(False)
        try:
            assert previous is True
            calls = []
            count_engine_dispatch(monkeypatch, calls)
            run_sweep(jobs, processes=1, cache_dir=tmp_path)
            assert len(calls) == len(jobs)  # default now skips the cache
        finally:
            set_result_cache_default(previous)


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": None}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in lines[2]
        assert len({len(l) for l in lines[1:]}) == 1  # rectangular

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_csv_round_trip(self, tmp_path):
        rows = [{"x": 1, "y": 2.5}, {"x": 3, "y": None}]
        text = to_csv(rows)
        assert text.splitlines()[0] == "x,y"
        path = tmp_path / "out.csv"
        write_csv(rows, path)
        assert path.read_text().splitlines()[1] == "1,2.5"

    def test_csv_empty(self):
        assert to_csv([]) == ""


class TestPlots:
    def test_line_plot_contains_markers_and_labels(self):
        text = line_plot(
            {"s": [(1, 1), (2, 4), (3, 9)]},
            title="squares",
            xlabel="x",
            ylabel="y",
        )
        assert "squares" in text
        assert "o" in text
        assert "y" in text

    def test_plot_no_data(self):
        assert "(no data)" in line_plot({"s": []}, title="t")

    def test_log_x(self):
        text = line_plot(
            {"s": [(1024, 1), (1048576, 2)]}, logx=True, width=30, height=6
        )
        assert "|" in text

    def test_scatter_multiple_series_distinct_markers(self):
        text = scatter_plot({"a": [(0, 0)], "b": [(1, 1)]}, width=20, height=5)
        assert "o a" in text and "x b" in text

    def test_constant_series_does_not_crash(self):
        line_plot({"s": [(1, 5), (2, 5)]})


class TestStats:
    def test_ratio_series_matching(self):
        records = run_sweep(demo_jobs(threads=(2, 4)), processes=1)
        series = ratio_series(records, "fifo", "priority")
        assert [x for x, _ in series] == [2, 4]
        assert all(r > 0 for _, r in series)

    def test_ratio_series_missing_pair_skipped(self):
        records = run_sweep(demo_jobs(threads=(2,), arbs=("fifo",)), processes=1)
        assert ratio_series(records, "fifo", "priority") == []

    def test_group_records(self):
        records = run_sweep(demo_jobs(threads=(2, 4)), processes=1)
        groups = group_records(records, lambda r: r.job.workload.threads)
        assert set(groups) == {2, 4}
        assert all(len(v) == 2 for v in groups.values())

    def test_fairness_summary_keys(self):
        result = run_simulation(
            [[0, 1, 2], [10, 11, 12]], hbm_slots=4, arbitration="priority"
        )
        summary = fairness_summary(result)
        assert summary["makespan"] == result.makespan
        assert summary["worst_thread_max_wait"] >= summary["median_thread_max_wait"]
        assert summary["mean_wait_ratio_worst_to_best"] >= 1.0

    def _zeroed_denominator_records(self):
        """Real records, with every priority record's makespan zeroed."""
        records = run_sweep(demo_jobs(threads=(2,)), processes=1)
        return [
            dataclasses.replace(r, makespan=0)
            if r.job.config.arbitration == "priority"
            else r
            for r in records
        ]

    def test_ratio_series_zero_denominator_warns_and_drops(self):
        import logging

        from repro.analysis import stats as stats_mod
        from repro.obs import reset_warn_once

        records = self._zeroed_denominator_records()
        reset_warn_once()
        captured = []
        handler = logging.Handler()
        handler.emit = lambda rec: captured.append(rec.getMessage())
        stats_mod.log.addHandler(handler)
        try:
            assert ratio_series(records, "fifo", "priority") == []
        finally:
            stats_mod.log.removeHandler(handler)
        assert len(captured) == 1
        # the warning names the dropped key and the offending policy
        assert "x=2" in captured[0]
        assert "priority" in captured[0]

    def test_ratio_series_zero_denominator_warns_once_per_key(self):
        import logging

        from repro.analysis import stats as stats_mod
        from repro.obs import reset_warn_once

        records = self._zeroed_denominator_records()
        reset_warn_once()
        captured = []
        handler = logging.Handler()
        handler.emit = lambda rec: captured.append(rec.getMessage())
        stats_mod.log.addHandler(handler)
        try:
            ratio_series(records, "fifo", "priority")
            ratio_series(records, "fifo", "priority")  # replayed campaign
        finally:
            stats_mod.log.removeHandler(handler)
        assert len(captured) == 1


class TestCampaignStats:
    def test_collect_splits_fresh_and_cached(self, tmp_path):
        from repro.analysis import CampaignStats

        jobs = demo_jobs()
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        runner.run(jobs)
        cold = runner.last_campaign
        assert cold is not None
        assert cold.total_jobs == len(jobs)
        assert cold.cache_hits == 0
        assert cold.simulated == len(jobs)
        assert cold.cache_hit_rate == 0.0
        assert cold.sim_time_s > 0.0
        assert set(cold.by_group) == {
            ("adversarial_cycle", "fifo"),
            ("adversarial_cycle", "priority"),
        }

        runner.run(jobs)
        warm = runner.last_campaign
        assert warm.cache_hits == len(jobs)
        assert warm.simulated == 0
        assert warm.cache_hit_rate == 1.0
        # Replayed wall times must not be double-counted as sim time.
        assert warm.sim_time_s == 0.0

    def test_summary_table_has_total_row(self, tmp_path):
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        runner.run(demo_jobs())
        table = runner.last_campaign.summary_table()
        assert "TOTAL" in table
        assert "workload" in table
        assert "cached" in table

    def test_empty_campaign(self):
        runner = SweepRunner(processes=1)
        assert runner.run([]) == []
        assert runner.last_campaign is not None
        assert runner.last_campaign.total_jobs == 0
        assert runner.last_campaign.cache_hit_rate == 0.0

    def test_cached_flag_in_rows(self, tmp_path):
        jobs = demo_jobs(threads=(2,))
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        first = runner.run(jobs)
        second = runner.run(jobs)
        assert [r.row()["cached"] for r in first] == [False] * len(jobs)
        assert [r.row()["cached"] for r in second] == [True] * len(jobs)

    def test_cache_entries_carry_manifest(self, tmp_path):
        import json

        jobs = demo_jobs(threads=(2,), arbs=("fifo",))
        SweepRunner(processes=1, cache_dir=tmp_path).run(jobs)
        entries = list((tmp_path / "results").glob("*.json"))
        assert entries
        payload = json.loads(entries[0].read_text())
        manifest = payload["manifest"]
        assert manifest["schema"] == "repro.obs.manifest/v1"
        assert manifest["engine"] in ("fast", "reference")
        assert "workload_build_s" in manifest["timings"]
        assert "run_s" in manifest["timings"]
