"""Characterization suite: every registry experiment at smoke scale
must reproduce the pre-campaign-migration snapshot bit for bit.

``tests/data/characterization_smoke.json`` was captured from the
pre-migration experiment implementations (seed 0, smoke scale). The
campaign pipeline replaced every experiment's execution path, so this
suite is the proof that the refactor changed *how* the numbers are
computed without changing a single one of them. Regenerate the snapshot
with ``scripts/capture_characterization.py`` only when a behavior
change is intended.
"""

import json

import pytest

from repro.experiments import experiment_ids, run_experiment

from .characterization_util import SNAPSHOT_PATH, jsonify

SNAPSHOT = json.loads(SNAPSHOT_PATH.read_text())


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One cache for the whole module, so composite experiments replay
    their panels' records instead of simulating them twice."""
    return tmp_path_factory.mktemp("characterization-cache")


def test_snapshot_covers_registry():
    assert sorted(SNAPSHOT) == sorted(experiment_ids())


@pytest.mark.parametrize("experiment_id", sorted(SNAPSHOT))
def test_output_matches_snapshot(experiment_id, shared_cache):
    out = run_experiment(
        experiment_id, scale="smoke", processes=1, cache_dir=shared_cache, seed=0
    )
    want = SNAPSHOT[experiment_id]
    assert jsonify(out.rows) == want["rows"]
    assert jsonify(out.checks) == want["checks"]
