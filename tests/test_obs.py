"""Observability subsystem: probes, manifests, timeline export, logging.

The load-bearing guarantees here are differential:

* probes never perturb results — for each engine, a run with probes
  attached is bit-identical to the same run without them;
* both engines emit the *same* sample series — the reference engine's
  dict/list bookkeeping and the fast engine's dense arrays must agree
  sample for sample, on every probed quantity, across workload families.
"""

import dataclasses
import json
import logging

import numpy as np
import pytest

from repro.analysis import sweep_result_key
from repro.core import SimulationConfig, resolve_engine, simulate
from repro.obs import (
    CallbackProbe,
    ProbeSample,
    RunManifest,
    TimelineProbe,
    ascii_timeline,
    chrome_trace,
    configure_logging,
    get_logger,
    write_chrome_trace,
    write_timeline_jsonl,
)
from repro.obs.trace import _stall_slices
from repro.traces import make_workload

#: (kind, params) for the differential matrix: a synthetic skewed
#: workload, an instrumented sort, and the paper's adversarial pattern.
FAMILIES = (
    ("zipf", {"length": 400, "pages": 48}),
    ("sort", {"n": 96}),
    ("adversarial_cycle", {"pages": 16, "repeats": 4}),
)

RESULT_FIELDS = (
    "makespan",
    "ticks",
    "num_threads",
    "total_requests",
    "hits",
    "fetches",
    "evictions",
    "mean_response",
    "inconsistency",
    "max_response",
    "thread_stats",
    "response_histogram",
    "remap_count",
)


def small_config(**overrides) -> SimulationConfig:
    base = dict(hbm_slots=24, channels=2, seed=0)
    base.update(overrides)
    return SimulationConfig(**base)


def assert_results_identical(a, b):
    for name in RESULT_FIELDS:
        assert getattr(a, name) == getattr(b, name), name


def assert_samples_identical(sa, sb):
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert x.tick == y.tick
        assert x.hbm_occupancy == y.hbm_occupancy, f"tick {x.tick}"
        assert x.queue_depth == y.queue_depth, f"tick {x.tick}"
        assert x.ready_threads == y.ready_threads, f"tick {x.tick}"
        assert x.channels_busy == y.channels_busy, f"tick {x.tick}"
        assert x.channels_total == y.channels_total
        assert x.fetches == y.fetches, f"tick {x.tick}"
        assert x.evictions == y.evictions, f"tick {x.tick}"
        assert np.array_equal(x.blocked, y.blocked), f"tick {x.tick}"
        assert np.array_equal(x.stall_age, y.stall_age), f"tick {x.tick}"


class TestDifferential:
    @pytest.mark.parametrize("kind,params", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_probes_never_change_results(self, kind, params, engine):
        workload = make_workload(kind, threads=4, seed=1, **params)
        bare = simulate(workload, small_config(), engine=engine)
        for stride in (1, 7):
            probe = TimelineProbe()
            cfg = small_config(probes=(probe,), probe_stride=stride)
            probed = simulate(workload, cfg, engine=engine)
            assert_results_identical(bare, probed)
            assert len(probe.samples) > 0
            assert all(s.tick % stride == 0 for s in probe.samples)

    @pytest.mark.parametrize("kind,params", FAMILIES, ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("stride", [1, 5])
    def test_engines_emit_identical_samples(self, kind, params, stride):
        workload = make_workload(kind, threads=4, seed=2, **params)
        series = {}
        for engine in ("reference", "fast"):
            probe = TimelineProbe()
            cfg = small_config(probes=(probe,), probe_stride=stride)
            simulate(workload, cfg, engine=engine)
            series[engine] = probe.samples
        assert_samples_identical(series["reference"], series["fast"])

    def test_probe_hooks_see_run_metadata(self):
        workload = make_workload("zipf", threads=3, seed=0, length=200, pages=16)
        probe = TimelineProbe()
        cfg = small_config(probes=(probe,))
        result = simulate(workload, cfg)
        assert probe.num_threads == 3
        assert probe.config is cfg
        assert probe.result is result
        arrays = probe.as_arrays()
        assert arrays["tick"].shape == arrays["queue_depth"].shape
        assert arrays["blocked"].shape == (len(probe), 3)

    def test_callback_probe_and_multiple_probes(self):
        workload = make_workload("zipf", threads=2, seed=0, length=100, pages=8)
        seen = []
        timeline = TimelineProbe()
        cfg = small_config(
            probes=(timeline, CallbackProbe(lambda s: seen.append(s.tick))),
            probe_stride=4,
        )
        simulate(workload, cfg, engine="reference")
        assert seen == [s.tick for s in timeline.samples]

    def test_cumulative_counters_match_result(self):
        workload = make_workload("zipf", threads=4, seed=3, length=300, pages=32)
        probe = TimelineProbe()
        result = simulate(workload, small_config(probes=(probe,)))
        last = probe.samples[-1]
        assert last.fetches == result.fetches
        assert last.evictions == result.evictions


class TestChromeTrace:
    def _probe(self):
        workload = make_workload("zipf", threads=3, seed=0, length=250, pages=24)
        probe = TimelineProbe()
        simulate(workload, small_config(probes=(probe,)))
        return probe

    def test_document_schema(self):
        probe = self._probe()
        doc = chrome_trace(probe, name="unit", metadata={"k": "v"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["source"] == "unit"
        assert doc["otherData"]["k"] == "v"
        assert doc["otherData"]["samples"] == len(probe)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "C", "X"}
        for event in doc["traceEvents"]:
            assert event["ph"] in ("M", "C", "X")
            if event["ph"] == "C":
                assert isinstance(event["args"]["value"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 1
                assert event["name"] == "DRAM stall"
        json.dumps(doc)  # must be serializable as-is

    def test_counter_tracks_cover_all_samples(self):
        probe = self._probe()
        doc = chrome_trace(probe)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 5 * len(probe)

    def test_write_round_trips(self, tmp_path):
        probe = self._probe()
        path = write_chrome_trace(probe, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc == chrome_trace(probe)

    def test_empty_samples(self):
        doc = chrome_trace([])
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        assert ascii_timeline([]) == "(no samples)"

    def test_stall_slices_reconstruction(self):
        def sample(tick, ages):
            ages = np.asarray(ages, dtype=np.int64)
            return ProbeSample(
                tick=tick, hbm_occupancy=0, queue_depth=0, ready_threads=0,
                channels_busy=0, channels_total=1, fetches=0, evictions=0,
                blocked=ages > 0, stall_age=ages,
            )

        # thread 0 stalls ticks 1-3; thread 1 has two back-to-back
        # stalls (4-5 then 6-7) distinguishable only by their start tick.
        samples = [
            sample(0, [0, 0]),
            sample(1, [1, 0]),
            sample(2, [2, 0]),
            sample(3, [3, 0]),
            sample(4, [0, 1]),
            sample(5, [0, 2]),
            sample(6, [0, 1]),
            sample(7, [0, 2]),
        ]
        assert _stall_slices(samples) == [(0, 1, 3), (1, 4, 2), (1, 6, 2)]

    def test_stall_slices_sparse_stride_exact_starts(self):
        # Sampling only ticks 0/4/8 of a stall spanning 2..9 still
        # recovers the exact start from stall_age.
        def sample(tick, age):
            ages = np.asarray([age], dtype=np.int64)
            return ProbeSample(
                tick=tick, hbm_occupancy=0, queue_depth=0, ready_threads=0,
                channels_busy=0, channels_total=1, fetches=0, evictions=0,
                blocked=ages > 0, stall_age=ages,
            )

        samples = [sample(0, 0), sample(4, 3), sample(8, 7)]
        assert _stall_slices(samples) == [(0, 2, 7)]


class TestTimelineExports:
    def test_jsonl_one_line_per_sample(self, tmp_path):
        workload = make_workload("zipf", threads=2, seed=0, length=120, pages=8)
        probe = TimelineProbe()
        simulate(workload, small_config(probes=(probe,), probe_stride=3))
        path = write_timeline_jsonl(probe, tmp_path / "timeline.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(probe)
        first = json.loads(lines[0])
        assert first == probe.samples[0].to_dict()
        assert isinstance(first["blocked"], list)

    def test_ascii_timeline_renders(self):
        workload = make_workload("zipf", threads=2, seed=0, length=120, pages=8)
        probe = TimelineProbe()
        simulate(workload, small_config(probes=(probe,)))
        art = ascii_timeline(probe, width=40, height=8)
        assert "timeline" in art
        assert "HBM occupancy" in art
        assert "DRAM queue depth" in art


class TestManifest:
    def test_simulate_writes_manifest(self, tmp_path):
        workload = make_workload("zipf", threads=3, seed=0, length=200, pages=16)
        cfg = small_config()
        path = tmp_path / "run" / "manifest.json"
        result = simulate(workload, cfg, manifest_path=path)
        manifest = RunManifest.read(path)
        assert manifest.schema == "repro.obs.manifest/v1"
        assert manifest.engine == resolve_engine(workload, cfg)
        from repro.core import ENGINE_SEMANTICS_VERSION

        assert manifest.engine_semantics_version == ENGINE_SEMANTICS_VERSION
        assert manifest.config == {
            k: v for k, v in cfg.to_dict().items()
        }
        assert manifest.workload["threads"] == 3
        assert manifest.workload["attestation"]["disjoint"] is True
        assert set(manifest.timings) == {"dispatch_s", "run_s", "total_s"}
        assert manifest.result["makespan"] == result.makespan
        assert manifest.result["total_requests"] == result.total_requests

    def test_manifest_records_forced_reference(self, tmp_path):
        workload = make_workload("zipf", threads=2, seed=0, length=100, pages=8)
        path = tmp_path / "manifest.json"
        simulate(workload, small_config(), engine="reference", manifest_path=path)
        assert RunManifest.read(path).engine == "reference"

    def test_build_with_spec_and_raw_traces(self):
        manifest = RunManifest.build(
            config={"hbm_slots": 4},
            engine="reference",
            traces=[np.array([0, 1]), np.array([2])],
            spec={"kind": "zipf", "threads": 2},
        )
        assert manifest.workload == {"threads": 2, "total_references": 3}
        assert manifest.spec == {"kind": "zipf", "threads": 2}
        # to_json is stable and round-trips through to_dict
        assert json.loads(manifest.to_json())["engine"] == "reference"


class TestConfigExclusion:
    def test_probes_excluded_from_dict_and_equality(self):
        bare = small_config()
        probed = small_config(probes=(TimelineProbe(),), probe_stride=16)
        assert bare == probed
        assert bare.to_dict() == probed.to_dict()
        assert "probes" not in bare.to_dict()
        assert "probe_stride" not in bare.to_dict()

    def test_probes_do_not_change_sweep_cache_key(self):
        spec = type(
            "Spec", (), {"kind": "zipf", "threads": 2, "seed": 0, "params": ()}
        )()
        key_bare = sweep_result_key(spec, small_config())
        key_probed = sweep_result_key(
            spec, small_config(probes=(TimelineProbe(),), probe_stride=8)
        )
        assert key_bare == key_probed

    def test_probe_stride_validated(self):
        with pytest.raises(ValueError):
            small_config(probe_stride=0)

    def test_probes_list_coerced_to_tuple(self):
        probe = TimelineProbe()
        cfg = small_config(probes=[probe])
        assert cfg.probes == (probe,)


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("x").name == "repro.x"
        assert get_logger().name == "repro"

    def test_configure_is_idempotent(self):
        configure_logging(0)
        root = logging.getLogger("repro")
        count = len(root.handlers)
        configure_logging(1)
        configure_logging(1)
        assert len(logging.getLogger("repro").handlers) == count

    @pytest.mark.parametrize(
        "verbosity,level",
        [(-2, logging.WARNING), (-1, logging.WARNING), (0, logging.INFO),
         (1, logging.DEBUG), (3, logging.DEBUG)],
    )
    def test_verbosity_levels(self, verbosity, level):
        configure_logging(verbosity)
        assert logging.getLogger("repro").level == level

    def test_library_loggers_emit_under_repro(self):
        # The "repro" logger does not propagate to the root logger (the
        # library must not spam foreign handlers), so capture directly.
        configure_logging(1)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        root = logging.getLogger("repro")
        handler = Capture(level=logging.DEBUG)
        root.addHandler(handler)
        try:
            make_workload("zipf", threads=2, seed=0, length=50, pages=8)
        finally:
            root.removeHandler(handler)
        assert any(r.name == "repro.traces" for r in records)
