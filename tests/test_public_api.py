"""Public API surface checks: exports exist, are documented, and stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.arbitration",
    "repro.core.config",
    "repro.core.directmapped",
    "repro.core.dram",
    "repro.core.engine",
    "repro.core.metrics",
    "repro.core.replacement",
    "repro.traces",
    "repro.traces.base",
    "repro.traces.instrument",
    "repro.traces.io",
    "repro.traces.sorting",
    "repro.traces.spgemm",
    "repro.traces.densemm",
    "repro.traces.adversarial",
    "repro.traces.synthetic",
    "repro.traces.shared",
    "repro.theory",
    "repro.theory.bounds",
    "repro.theory.adversary",
    "repro.theory.validation",
    "repro.machine",
    "repro.machine.hierarchy",
    "repro.machine.knl",
    "repro.machine.hybrid",
    "repro.machine.sapphire",
    "repro.machine.pointer_chase",
    "repro.machine.glups",
    "repro.analysis",
    "repro.analysis.sweep",
    "repro.analysis.faults",
    "repro.analysis.stats",
    "repro.analysis.tables",
    "repro.analysis.asciiplot",
    "repro.analysis.telemetry",
    "repro.analysis.benchtrend",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.experiments",
    "repro.experiments.registry",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_importable_with_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_public_callables_documented(name):
    """Every function/class named in __all__ carries a docstring."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_top_level_quickstart_names():
    import repro

    for name in ("SimulationConfig", "Simulator", "run_simulation",
                 "Workload", "make_workload", "SimulationResult"):
        assert hasattr(repro, name)
