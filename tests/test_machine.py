"""Tests for repro.machine (hierarchy model, KNL, microbenchmarks)."""

import numpy as np
import pytest

from repro.machine import (
    GIB,
    KIB,
    MIB,
    CacheLevel,
    MachineModel,
    TLBModel,
    default_bandwidth_sizes,
    default_latency_sizes,
    glups_curve,
    knl_cache_mode,
    knl_flat_dram,
    knl_flat_hbm,
    knl_machines,
    measure_glups,
    measure_pointer_chase,
    pointer_chase_curve,
)


def tiny_machine(**kwargs):
    return MachineModel(
        "tiny",
        [
            CacheLevel("L1", 1 * KIB, 1.0, 1000.0),
            CacheLevel("L2", 4 * KIB, 10.0, 500.0),
            CacheLevel("MEM", None, 100.0, 50.0),
        ],
        tlb=TLBModel(segments=()),
        **kwargs,
    )


class TestMachineModel:
    def test_level_validation(self):
        with pytest.raises(ValueError, match="backing store"):
            MachineModel("m", [CacheLevel("L1", 10, 1.0, 1.0)])
        with pytest.raises(ValueError, match="strictly increase"):
            MachineModel(
                "m",
                [
                    CacheLevel("a", 10, 1.0, 1.0),
                    CacheLevel("b", 10, 2.0, 1.0),
                    CacheLevel("c", None, 3.0, 1.0),
                ],
            )
        with pytest.raises(ValueError, match="at least one"):
            MachineModel("m", [])

    def test_cache_level_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("x", 0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CacheLevel("x", 10, -1.0, 1.0)
        with pytest.raises(ValueError):
            CacheLevel("x", 10, 1.0, 0.0)

    def test_served_fractions_sum_to_one(self):
        m = tiny_machine()
        for size in (512, 1024, 3000, 100_000):
            fractions = m.served_fractions(size)
            assert fractions.sum() == pytest.approx(1.0)
            assert (fractions >= 0).all()

    def test_fractions_tiny_working_set_all_l1(self):
        fractions = tiny_machine().served_fractions(512)
        assert fractions[0] == pytest.approx(1.0)

    def test_expected_latency_interpolates(self):
        m = tiny_machine()
        assert m.expected_latency_ns(512) == pytest.approx(1.0)
        # 8KiB: 1/8 L1, 3/8 L2, 4/8 MEM
        expected = (1 / 8) * 1 + (3 / 8) * 10 + (1 / 2) * 100
        assert m.expected_latency_ns(8 * KIB) == pytest.approx(expected)

    def test_latency_monotone_in_size(self):
        m = tiny_machine()
        values = [m.expected_latency_ns(s) for s in (512, 2048, 8192, 65536)]
        assert values == sorted(values)

    def test_miss_penalty_charged_to_deeper_levels(self):
        m = MachineModel(
            "pen",
            [
                CacheLevel("C", 1 * KIB, 10.0, 100.0, miss_penalty_ns=7.0),
                CacheLevel("MEM", None, 100.0, 10.0),
            ],
            tlb=TLBModel(segments=()),
        )
        # 2KiB working set: half served at C (10ns), half at MEM (100+7)
        assert m.expected_latency_ns(2 * KIB) == pytest.approx(
            0.5 * 10 + 0.5 * 107
        )

    def test_allocation_limit(self):
        m = tiny_machine(allocatable_bytes=10 * KIB)
        m.check_allocation(10 * KIB)
        with pytest.raises(MemoryError):
            m.check_allocation(11 * KIB)
        with pytest.raises(ValueError):
            m.check_allocation(0)

    def test_monte_carlo_matches_expectation(self):
        m = tiny_machine()
        rng = np.random.default_rng(0)
        samples = m.sample_latencies_ns(8 * KIB, 20000, rng, jitter=0.0)
        assert samples.mean() == pytest.approx(
            m.expected_latency_ns(8 * KIB), rel=0.05
        )

    def test_bandwidth_bottleneck_composition(self):
        m = tiny_machine()
        # fully in L1
        assert m.streaming_bandwidth_mib_s(512, threads=100) == pytest.approx(1000.0)
        # half the traffic reaches MEM -> MEM caps at 50/0.5 = 100
        assert m.streaming_bandwidth_mib_s(8 * KIB, threads=100) == pytest.approx(
            100.0
        )

    def test_bandwidth_issue_cap(self):
        m = tiny_machine()
        assert m.streaming_bandwidth_mib_s(512, threads=1, per_thread_mib_s=3.0) == 3.0

    def test_bad_inputs(self):
        m = tiny_machine()
        with pytest.raises(ValueError):
            m.served_fractions(0)
        with pytest.raises(ValueError):
            m.streaming_bandwidth_mib_s(512, threads=0)


class TestTLB:
    def test_no_cost_within_coverage(self):
        tlb = TLBModel(segments=((1 * MIB, 10.0),))
        assert tlb.walk_ns(1 * MIB) == 0.0

    def test_cost_per_doubling(self):
        tlb = TLBModel(segments=((1 * MIB, 10.0),))
        assert tlb.walk_ns(4 * MIB) == pytest.approx(20.0)

    def test_segments_accumulate(self):
        tlb = TLBModel(segments=((1 * MIB, 10.0), (4 * MIB, 5.0)))
        assert tlb.walk_ns(8 * MIB) == pytest.approx(30.0 + 5.0)


class TestKNLProperties:
    """The four section 5 properties, asserted on the synthetic KNL."""

    def test_property1_similar_latency(self):
        dram, hbm = knl_flat_dram(), knl_flat_hbm()
        for size in (16 * MIB, 1 * GIB, 8 * GIB):
            gap = hbm.expected_latency_ns(size) - dram.expected_latency_ns(size)
            assert 15 < gap < 35  # ~24ns, far below the level latencies

    def test_property2_bandwidth_advantage(self):
        dram, hbm = knl_flat_dram(), knl_flat_hbm()
        for size in (512 * MIB, 4 * GIB):
            ratio = hbm.streaming_bandwidth_mib_s(size) / dram.streaming_bandwidth_mib_s(size)
            assert 4.0 < ratio < 5.5

    def test_property3_cache_miss_latency_penalty(self):
        cache = knl_cache_mode()
        within = cache.expected_latency_ns(8 * GIB)
        beyond = cache.expected_latency_ns(64 * GIB)
        # beyond-HBM accesses pay roughly double the post-L2 latency
        assert beyond > within + 100

    def test_property4_bandwidth_cliff(self):
        cache = knl_cache_mode()
        dram = knl_flat_dram()
        inside = cache.streaming_bandwidth_mib_s(8 * GIB)
        outside = cache.streaming_bandwidth_mib_s(32 * GIB)
        assert outside < 0.5 * inside
        assert outside > dram.streaming_bandwidth_mib_s(32 * GIB)

    def test_hbm_allocation_cap(self):
        hbm = knl_flat_hbm()
        with pytest.raises(MemoryError):
            hbm.check_allocation(16 * GIB)

    def test_machines_dict(self):
        machines = knl_machines()
        assert set(machines) == {"DRAM", "HBM", "Cache"}


class TestMicrobenchmarks:
    def test_pointer_chase_returns_none_when_unallocatable(self):
        assert measure_pointer_chase(knl_flat_hbm(), 16 * GIB) is None

    def test_pointer_chase_deterministic_under_seed(self):
        a = measure_pointer_chase(knl_flat_dram(), 1 * GIB, operations=2048, seed=3)
        b = measure_pointer_chase(knl_flat_dram(), 1 * GIB, operations=2048, seed=3)
        assert a.mean_ns == b.mean_ns

    def test_pointer_chase_mc_close_to_model(self):
        r = measure_pointer_chase(knl_flat_dram(), 1 * GIB, operations=1 << 14)
        assert r.mean_ns == pytest.approx(r.expected_ns, rel=0.05)

    def test_curve_covers_all_sizes(self):
        sizes = [1 * MIB, 32 * MIB]
        curves = pointer_chase_curve(knl_machines(), sizes, operations=256)
        assert all(len(v) == 2 for v in curves.values())

    def test_default_sizes_are_doubling(self):
        sizes = default_latency_sizes(1 * KIB, 8 * KIB)
        assert sizes == [1024, 2048, 4096, 8192]

    def test_glups_block_accounting(self):
        r = measure_glups(knl_flat_dram(), 1 * GIB)
        assert r.blocks_updated == GIB // 1024
        assert r.glups > 0

    def test_glups_close_to_model(self):
        r = measure_glups(knl_cache_mode(), 32 * GIB, sample_blocks=1 << 16)
        assert r.mib_per_s == pytest.approx(r.model_mib_per_s, rel=0.05)

    def test_glups_none_when_unallocatable(self):
        assert measure_glups(knl_flat_hbm(), 16 * GIB) is None

    def test_glups_curve(self):
        curves = glups_curve(knl_machines(), [512 * MIB, 1 * GIB])
        assert len(curves["DRAM"]) == 2

    def test_default_bandwidth_sizes(self):
        sizes = default_bandwidth_sizes(512 * MIB, 2 * GIB)
        assert sizes == [512 * MIB, 1 * GIB, 2 * GIB]
