"""Tests for the DRAM geometry substrate and FR-FCFS arbitration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_simulation
from repro.core.arbitration import FRFCFSArbitration
from repro.core.dram import BankState, DramGeometry


class TestDramGeometry:
    def test_bank_interleaving(self):
        geo = DramGeometry(banks=4, row_pages=2)
        assert [geo.bank_of(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_row_grouping(self):
        geo = DramGeometry(banks=2, row_pages=2)
        # bank 0 pages: 0, 2, 4, 6 -> rows 0, 0, 1, 1
        assert geo.row_of(0) == geo.row_of(2) == 0
        assert geo.row_of(4) == geo.row_of(6) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DramGeometry(banks=0)
        with pytest.raises(ValueError):
            DramGeometry(row_pages=0)


class TestBankState:
    def test_open_row_tracking(self):
        banks = BankState(DramGeometry(banks=2, row_pages=2))
        assert banks.access(0) is False  # cold bank
        assert banks.is_row_hit(2)  # same bank 0, same row 0
        assert banks.access(2) is True
        assert banks.access(4) is False  # bank 0, row 1: activation
        assert not banks.is_row_hit(0)

    def test_banks_independent(self):
        banks = BankState(DramGeometry(banks=2, row_pages=1))
        banks.access(0)  # bank 0
        assert banks.access(1) is False  # bank 1 cold
        assert banks.is_row_hit(0)  # bank 0 row still open

    def test_reset(self):
        banks = BankState(DramGeometry())
        banks.access(0)
        banks.reset()
        assert not banks.is_row_hit(0)


class TestFRFCFS:
    def make(self, threads=8, banks=2, row_pages=2):
        return FRFCFSArbitration(threads, geometry=DramGeometry(banks, row_pages))

    def test_requires_page(self):
        arb = self.make()
        with pytest.raises(ValueError, match="page"):
            arb.enqueue(0)

    def test_plain_fcfs_when_nothing_ready(self):
        arb = self.make(banks=4, row_pages=1)
        arb.enqueue(0, 0)
        arb.enqueue(1, 1)
        arb.enqueue(2, 2)
        # all banks cold: strict arrival order
        assert arb.select(3) == [0, 1, 2]

    def test_row_hit_jumps_the_queue(self):
        arb = self.make(banks=2, row_pages=2)
        arb.enqueue(0, 0)  # bank 0 row 0: opens it
        assert arb.select(1) == [0]
        arb.enqueue(1, 1)  # bank 1, cold (would be FCFS head)
        arb.enqueue(2, 2)  # bank 0 row 0: READY -> served first
        assert arb.select(1) == [2]
        assert arb.select(1) == [1]

    def test_drains_exactly_once(self):
        arb = self.make()
        for thread in range(6):
            arb.enqueue(thread, thread * 3)
        seen = []
        while len(arb):
            seen += arb.select(2)
        assert sorted(seen) == list(range(6))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 40)),
            min_size=0,
            max_size=20,
            unique_by=lambda t: t[0],
        ),
        st.integers(1, 4),
    )
    def test_conservation(self, requests, limit):
        arb = self.make()
        for thread, page in requests:
            arb.enqueue(thread, page)
        out = []
        while len(arb):
            granted = arb.select(limit)
            assert granted  # progress guaranteed
            out += granted
        assert sorted(out) == sorted(t for t, _ in requests)


class TestFRFCFSEndToEnd:
    def test_simulation_conserves_requests(self):
        rng = np.random.default_rng(1)
        traces = [
            (1000 * i + rng.integers(0, 30, size=200)).tolist() for i in range(6)
        ]
        result = run_simulation(traces, hbm_slots=16, arbitration="fr_fcfs")
        assert result.total_requests == 1200
        assert result.fetches == result.misses

    def test_sequential_streams_benefit_from_row_locality(self):
        """Streaming threads produce row-hit trains; FR-FCFS exploits
        them by batching same-row fetches, unlike pure FCFS order.
        The makespans agree (every transfer still costs one tick) but
        the service *order* differs — check it runs and orders shift."""
        traces = [list(range(1000 * i, 1000 * i + 64)) * 2 for i in range(4)]
        fr = run_simulation(
            traces,
            hbm_slots=64,
            arbitration="fr_fcfs",
            dram_banks=2,
            dram_row_pages=8,
        )
        fifo = run_simulation(traces, hbm_slots=64, arbitration="fifo")
        assert fr.total_requests == fifo.total_requests
        # same model cost per transfer: makespans stay comparable
        assert fr.makespan <= 1.5 * fifo.makespan

    def test_geometry_configurable(self):
        result = run_simulation(
            [[0, 1, 2, 3]],
            hbm_slots=4,
            arbitration="fr_fcfs",
            dram_banks=1,
            dram_row_pages=4,
        )
        assert result.total_requests == 4
