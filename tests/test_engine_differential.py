"""Differential testing: the engine vs an independent reference simulator.

The reference below is written straight from the paper's section 3.1
pseudo-code with no sharing of code or data structures with
``repro.core.engine`` (plain dicts/lists, no fast paths, no
engine-tracked queue length). Any divergence in makespan, response-time
histogram, or per-thread completion times on randomized workloads flags
a bug in one of the two implementations.
"""

from collections import OrderedDict, deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationConfig, Simulator


def reference_simulate(traces, k, q=1, arbitration="fifo"):
    """Naive tick-by-tick simulation of the paper's five steps.

    Supports FIFO and static Priority arbitration with LRU replacement
    and pending-page protection (the engine's default configuration).
    Returns (makespan, histogram, completion_ticks).
    """
    p = len(traces)
    pos = [0] * p
    current = [t[0] if len(t) else None for t in traces]
    request_tick = [0] * p
    state = ["ready" if len(t) else "done" for t in traces]
    lru: OrderedDict[int, None] = OrderedDict()  # front = LRU
    fifo_queue: deque[int] = deque()
    waiting: list[int] = []  # for priority: waiting thread ids
    hist: dict[int, int] = {}
    completion = [0] * p
    t = 0
    while any(s != "done" for s in state):
        # step 2: enqueue misses (thread-id order)
        for i in range(p):
            if state[i] == "ready" and current[i] not in lru:
                state[i] = "waiting"
                if arbitration == "fifo":
                    fifo_queue.append(i)
                else:
                    waiting.append(i)
        # step 3: evict to make room
        queue_len = len(fifo_queue) if arbitration == "fifo" else len(waiting)
        will_fetch = min(q, queue_len)
        protected = {current[i] for i in range(p) if state[i] != "done"}
        need = will_fetch - (k - len(lru))
        while need > 0:
            victim = None
            for page in lru:  # front-to-back = LRU order
                if page not in protected:
                    victim = page
                    break
            if victim is None:
                break
            del lru[victim]
            need -= 1
        if need > 0:
            will_fetch -= need
        # step 4: serve resident current requests
        for i in range(p):
            if state[i] == "ready" and current[i] in lru:
                lru.move_to_end(current[i])
                w = t - request_tick[i] + 1
                hist[w] = hist.get(w, 0) + 1
                pos[i] += 1
                if pos[i] >= len(traces[i]):
                    state[i] = "done"
                    completion[i] = t + 1
                    current[i] = None
                else:
                    current[i] = traces[i][pos[i]]
                    request_tick[i] = t + 1
        # step 5: fetch up to will_fetch queued pages
        for _ in range(will_fetch):
            if arbitration == "fifo":
                i = fifo_queue.popleft()
            else:
                i = min(waiting)  # identity priorities: lowest id first
                waiting.remove(i)
            if current[i] not in lru:
                lru[current[i]] = None
            state[i] = "ready"
        t += 1
        assert t < 10_000_000, "reference simulator runaway"
    makespan = max(completion)
    return makespan, hist, completion


def run_engine(traces, k, q, arbitration):
    config = SimulationConfig(hbm_slots=k, channels=q, arbitration=arbitration)
    return Simulator(traces, config).run()


class TestHandCases:
    @pytest.mark.parametrize("arbitration", ["fifo", "priority"])
    def test_simple_two_thread(self, arbitration):
        traces = [[0, 1, 0], [10, 11]]
        makespan, hist, completion = reference_simulate(traces, 4, 1, arbitration)
        result = run_engine(traces, 4, 1, arbitration)
        assert result.makespan == makespan
        assert result.response_histogram == hist
        assert list(result.completion_ticks) == completion

    def test_contended_cycle(self):
        traces = [[100 * i + j for j in range(8)] * 3 for i in range(4)]
        for arbitration in ("fifo", "priority"):
            makespan, hist, _ = reference_simulate(traces, 8, 1, arbitration)
            result = run_engine(traces, 8, 1, arbitration)
            assert result.makespan == makespan, arbitration
            assert result.response_histogram == hist, arbitration


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 12), min_size=0, max_size=30),
        min_size=1,
        max_size=5,
    ),
    st.integers(1, 10),
    st.integers(1, 3),
    st.sampled_from(["fifo", "priority"]),
)
def test_engine_matches_reference_on_random_workloads(raw, k, q, arbitration):
    # namespace pages per thread (model Property 1)
    traces = [[1000 * i + page for page in t] for i, t in enumerate(raw)]
    if all(len(t) == 0 for t in traces):
        return
    makespan, hist, completion = reference_simulate(traces, k, q, arbitration)
    result = run_engine(traces, k, q, arbitration)
    assert result.makespan == makespan
    assert result.response_histogram == hist
    assert list(result.completion_ticks) == completion


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_engine_matches_reference_on_zipf(seed):
    rng = np.random.default_rng(seed)
    p = int(rng.integers(2, 5))
    traces = [
        (1000 * i + rng.zipf(1.5, size=60).clip(max=40)).tolist() for i in range(p)
    ]
    k = int(rng.integers(2, 30))
    for arbitration in ("fifo", "priority"):
        makespan, hist, _ = reference_simulate(traces, k, 1, arbitration)
        result = run_engine(traces, k, 1, arbitration)
        assert result.makespan == makespan
        assert result.response_histogram == hist
