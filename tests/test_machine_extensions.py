"""Tests for the hybrid-mode composite and the Sapphire Rapids models."""

import pytest

from repro.machine import (
    GIB,
    MIB,
    SPR_HBM_BYTES,
    SPR_PER_THREAD_MIB_S,
    SPR_THREADS,
    HybridMachine,
    make_hybrid,
    knl_cache_mode,
    knl_flat_hbm,
    spr_cache_mode,
    spr_flat_dram,
    spr_flat_hbm,
    spr_hbm_only,
    spr_hybrid_mode,
    spr_machines,
)


class TestHybridMachine:
    def make(self, flat_fraction=0.5, hbm=16 * GIB):
        return make_hybrid(knl_flat_hbm(), knl_cache_mode(), hbm, flat_fraction)

    def test_split_arithmetic(self):
        hybrid = self.make(0.25)
        in_flat, in_cached = hybrid.split(16 * GIB)
        assert in_flat == 4 * GIB
        assert in_cached == 12 * GIB

    def test_small_working_set_all_flat(self):
        hybrid = self.make(0.5)
        in_flat, in_cached = hybrid.split(1 * GIB)
        assert in_flat == 1 * GIB and in_cached == 0

    def test_latency_matches_flat_when_fitting(self):
        hybrid = self.make(0.5)
        flat = knl_flat_hbm()
        size = 2 * GIB
        assert hybrid.expected_latency_ns(size) == pytest.approx(
            flat.expected_latency_ns(size)
        )

    def test_latency_interpolates_when_overflowing(self):
        hybrid = self.make(0.5)
        size = 64 * GIB  # far beyond the 8 GiB flat slice
        flat_like = knl_flat_hbm().expected_latency_ns(8 * GIB)
        cache_like = knl_cache_mode().expected_latency_ns(size)
        value = hybrid.expected_latency_ns(size)
        assert flat_like < value < cache_like + 50

    def test_bandwidth_capped_by_shared_hbm(self):
        hybrid = self.make(0.5)
        hbm_bw = knl_flat_hbm().levels[-1].bandwidth_mib_s
        assert hybrid.streaming_bandwidth_mib_s(4 * GIB, 272) <= hbm_bw

    def test_validation(self):
        with pytest.raises(ValueError):
            make_hybrid(knl_flat_hbm(), knl_cache_mode(), 16 * GIB, 1.5)
        with pytest.raises(ValueError):
            make_hybrid(knl_flat_hbm(), knl_cache_mode(), 16 * GIB, 1.0)
        with pytest.raises(ValueError):
            HybridMachine(knl_flat_hbm(), knl_cache_mode(), -1)
        with pytest.raises(ValueError):
            self.make(0.5).split(0)

    def test_repr(self):
        assert "hybrid" in repr(self.make(0.5))


class TestSapphireRapids:
    def test_modes_dict(self):
        assert set(spr_machines()) == {"DRAM", "HBM", "Cache", "HBM-only"}

    def test_bandwidth_projection_matches_public_figure(self):
        """~3.68 TB/s peak (paper section 1.3 citing [52])."""
        hbm = spr_flat_hbm()
        bw = hbm.streaming_bandwidth_mib_s(
            64 * GIB, SPR_THREADS, per_thread_mib_s=SPR_PER_THREAD_MIB_S
        )
        assert 3.0e6 < bw < 3.7e6  # MiB/s, i.e. ~3.2-3.9 TB/s

    def test_property1_persists(self):
        gap = spr_flat_hbm().expected_latency_ns(16 * GIB) - spr_flat_dram(
        ).expected_latency_ns(16 * GIB)
        assert 5 < gap < 60

    def test_hbm_only_allocation_limit(self):
        only = spr_hbm_only()
        only.check_allocation(SPR_HBM_BYTES)
        with pytest.raises(MemoryError):
            only.check_allocation(SPR_HBM_BYTES + 1)

    def test_cache_mode_cliff(self):
        cache = spr_cache_mode()
        inside = cache.streaming_bandwidth_mib_s(
            64 * GIB, SPR_THREADS, per_thread_mib_s=SPR_PER_THREAD_MIB_S
        )
        outside = cache.streaming_bandwidth_mib_s(
            512 * GIB, SPR_THREADS, per_thread_mib_s=SPR_PER_THREAD_MIB_S
        )
        assert outside < 0.25 * inside
        dram = spr_flat_dram().streaming_bandwidth_mib_s(
            512 * GIB, SPR_THREADS, per_thread_mib_s=SPR_PER_THREAD_MIB_S
        )
        assert outside > dram

    def test_hybrid_mode_builder(self):
        hybrid = spr_hybrid_mode(0.25)
        assert hybrid.flat_bytes == SPR_HBM_BYTES // 4
        assert hybrid.expected_latency_ns(256 * GIB) > 0
