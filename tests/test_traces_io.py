"""Workload persistence round-trips and cache robustness.

Regression anchor: both on-disk formats must preserve the ``namespace``
flag. A shared-page workload (``namespace=False``) that reloads with
the default ``namespace=True`` gets silently renumbered into disjoint
per-thread blocks — the sharing the family exists to model disappears
and every downstream contention number is quietly wrong.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.traces import Workload, WorkloadCache, make_workload
from repro.traces.io import (
    load_workload_npz,
    load_workload_text,
    save_workload_npz,
    save_workload_text,
)

# lists of per-thread page-id lists: 1-4 threads, 1-40 refs each
TRACES = st.lists(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40),
    min_size=1,
    max_size=4,
)


def workload_from(traces, namespace):
    return Workload(
        [np.asarray(t, dtype=np.int64) for t in traces],
        name="prop",
        namespace=namespace,
    )


def assert_same_workload(loaded, original):
    assert loaded.namespaced == original.namespaced
    assert loaded.num_threads == original.num_threads
    # source pages survive verbatim...
    for a, b in zip(loaded.source_traces, original.source_traces):
        np.testing.assert_array_equal(a.pages, b.pages)
    # ...so the engine-facing (possibly renumbered) traces do too.
    for a, b in zip(loaded.traces, original.traces):
        np.testing.assert_array_equal(a, b)


class TestSharedPageRegression:
    """The pinned bug: text round-trip must not destroy page sharing."""

    def test_text_round_trip_preserves_sharing(self, tmp_path):
        wl = make_workload(
            "shared", 4, seed=1, length=200, private_pages=8, shared_pages=8
        )
        assert wl.namespaced is False
        path = tmp_path / "shared.trace"
        save_workload_text(wl, path)
        loaded = load_workload_text(path)
        assert loaded.namespaced is False
        assert_same_workload(loaded, wl)
        # the shared segment is still shared: some page id appears in
        # more than one thread's trace
        page_sets = [set(t.tolist()) for t in loaded.traces]
        assert any(
            page_sets[i] & page_sets[j]
            for i in range(len(page_sets))
            for j in range(i + 1, len(page_sets))
        )

    def test_npz_round_trip_preserves_sharing(self, tmp_path):
        wl = make_workload(
            "shared", 4, seed=1, length=200, private_pages=8, shared_pages=8
        )
        path = tmp_path / "shared.npz"
        save_workload_npz(wl, path)
        loaded = load_workload_npz(path)
        assert loaded.namespaced is False
        assert_same_workload(loaded, wl)

    def test_text_header_records_namespace(self, tmp_path):
        wl = workload_from([[1, 2], [2, 3]], namespace=False)
        path = tmp_path / "w.trace"
        save_workload_text(wl, path)
        lines = path.read_text().splitlines()
        assert lines[1] == "# namespace false"
        save_workload_text(workload_from([[1]], namespace=True), path)
        assert path.read_text().splitlines()[1] == "# namespace true"


class TestTextFormatCompatibility:
    def test_headerless_file_keeps_historical_defaults(self, tmp_path):
        path = tmp_path / "external.trace"
        path.write_text("3\n1\n4\n1\n5\n")
        wl = load_workload_text(path)
        assert wl.num_threads == 1
        assert wl.namespaced is True  # the pre-header default
        assert wl.name == "external"
        np.testing.assert_array_equal(wl.source_traces[0].pages, [3, 1, 4, 1, 5])

    @pytest.mark.parametrize("value", ["false", "0", "no", "False", "NO"])
    def test_namespace_header_false_spellings(self, tmp_path, value):
        path = tmp_path / "w.trace"
        path.write_text(f"# workload w\n# namespace {value}\n# thread 0\n1\n2\n")
        assert load_workload_text(path).namespaced is False

    def test_namespace_header_true_spellings(self, tmp_path):
        path = tmp_path / "w.trace"
        path.write_text("# workload w\n# namespace true\n# thread 0\n1\n")
        assert load_workload_text(path).namespaced is True

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("# workload empty\n")
        with pytest.raises(ValueError, match="no traces"):
            load_workload_text(path)


class TestRoundTripProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(traces=TRACES, namespace=st.booleans())
    def test_text_round_trip(self, tmp_path, traces, namespace):
        wl = workload_from(traces, namespace)
        path = tmp_path / "prop.trace"
        save_workload_text(wl, path)
        assert_same_workload(load_workload_text(path), wl)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(traces=TRACES, namespace=st.booleans())
    def test_npz_round_trip(self, tmp_path, traces, namespace):
        wl = workload_from(traces, namespace)
        path = tmp_path / "prop.npz"
        save_workload_npz(wl, path)
        loaded = load_workload_npz(path)
        assert_same_workload(loaded, wl)
        assert loaded.name == wl.name


def _concurrent_get(directory, barrier):
    cache = WorkloadCache(directory)
    barrier.wait()
    cache.get("random", 4, seed=3, length=200, pages=16)


class TestWorkloadCacheRobustness:
    SPEC = dict(kind="random", threads=4, seed=3, length=200, pages=16)

    def _get(self, cache):
        spec = dict(self.SPEC)
        return cache.get(spec.pop("kind"), spec.pop("threads"), **spec)

    def test_get_leaves_no_temp_files(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        self._get(cache)
        assert not list(tmp_path.glob("*.tmp*"))
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_leftover_temp_file_does_not_break_cache(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        # a writer SIGKILLed mid-save leaves a temp behind
        stale = tmp_path / "random-t4-s3-deadbeef.tmp9999.npz"
        stale.parent.mkdir(exist_ok=True)
        stale.write_bytes(b"half-written garbage")
        wl = self._get(cache)
        assert wl.num_threads == 4
        again = self._get(cache)  # hit, served from the real entry
        for a, b in zip(wl.traces, again.traces):
            np.testing.assert_array_equal(a, b)

    def test_clear_sweeps_stale_temp_files(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        self._get(cache)
        (tmp_path / "random-t4-s3-deadbeef.tmp9999.npz").write_bytes(b"junk")
        removed = cache.clear()
        assert removed == 2  # the entry and the stale temp
        assert not any(tmp_path.iterdir())

    def test_two_concurrent_writers_do_not_clobber(self, tmp_path):
        barrier = multiprocessing.Barrier(2)
        procs = [
            multiprocessing.Process(
                target=_concurrent_get, args=(str(tmp_path), barrier)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        # exactly one finished entry, no temp litter, and it loads
        assert not list(tmp_path.glob("*.tmp*"))
        (entry,) = tmp_path.glob("*.npz")
        wl = load_workload_npz(entry)
        assert wl.num_threads == 4
        # and it is bit-identical to a fresh generation
        fresh = make_workload("random", 4, seed=3, length=200, pages=16)
        for a, b in zip(wl.traces, fresh.traces):
            np.testing.assert_array_equal(a, b)
