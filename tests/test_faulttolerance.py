"""Fault-tolerant campaign execution: no worker failure may abort or
lose a sweep.

Three injected fault families (worker exception, deadline overrun,
SIGKILLed worker) each must leave the campaign with: every non-failed
job's record present and bit-identical to a fault-free run, failed jobs
carrying structured errors, retry/recovery counters in
:class:`CampaignStats`, and nothing failed written to the result cache.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.analysis import (
    CampaignStats,
    ResultCache,
    SweepFailure,
    SweepJob,
    SweepRunner,
    WorkloadSpec,
    parse_fault_plan,
    run_sweep,
    set_execution_defaults,
    set_fault_plan,
    sweep_result_key,
)
from repro.analysis.faults import FaultSpec, InjectedFault, maybe_inject
from repro.analysis.sweep import JobTimeout, _job_deadline
from repro.core import SimulationConfig, set_batch_limit

#: deterministic engine-produced fields (wall_time_s varies per run)
METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "hits",
    "fetches",
    "evictions",
)

FAST_RETRY = {"retry_backoff_s": 0.01}


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    previous = set_fault_plan(None)
    yield
    set_fault_plan(previous)


def demo_jobs(victim_tag="victim"):
    """Four jobs; exactly one carries the fault-matched tag."""
    jobs = []
    for threads in (2, 4):
        spec = WorkloadSpec.make(
            "adversarial_cycle", threads=threads, pages=16, repeats=4
        )
        for arb in ("fifo", "priority"):
            tag = victim_tag if (threads, arb) == (4, "priority") else f"ok-{threads}-{arb}"
            jobs.append(
                SweepJob(spec, SimulationConfig(hbm_slots=32, arbitration=arb), tag=tag)
            )
    return jobs


def assert_matches_baseline(records, baseline, *, expect_failed=()):
    """Non-failed records must be bit-identical to the fault-free run."""
    assert len(records) == len(baseline)
    for record, clean in zip(records, baseline):
        if record.job.tag in expect_failed:
            assert record.failed
            assert record.error is not None
        else:
            assert not record.failed
            for name in METRIC_FIELDS:
                assert getattr(record, name) == getattr(clean, name), name


class TestFaultPlanParsing:
    def test_parse_full_spec(self):
        (spec,) = parse_fault_plan("sleep:victim:seconds=2.5,attempts=3")
        assert spec == FaultSpec("sleep", "victim", attempts=3, seconds=2.5)

    def test_parse_defaults_and_multiple(self):
        a, b = parse_fault_plan("raise:a; kill:*:attempts=0")
        assert a == FaultSpec("raise", "a")
        assert b.mode == "kill" and b.attempts == 0

    def test_parse_rejects_unknown_mode_and_option(self):
        with pytest.raises(ValueError):
            parse_fault_plan("explode:x")
        with pytest.raises(ValueError):
            parse_fault_plan("raise:x:frequency=2")

    def test_set_fault_plan_validates_and_restores(self):
        with pytest.raises(ValueError):
            set_fault_plan("not-a-mode:x")
        previous = set_fault_plan("raise:abc")
        assert previous is None
        assert set_fault_plan(None) == "raise:abc"

    def test_attempt_gating(self):
        spec = FaultSpec("raise", "victim", attempts=2)
        assert spec.fires("the-victim-job", 1)
        assert spec.fires("the-victim-job", 2)
        assert not spec.fires("the-victim-job", 3)
        assert not spec.fires("innocent", 1)
        always = FaultSpec("raise", "*", attempts=0)
        assert always.fires("anything", 99)

    def test_maybe_inject_raises_only_on_match(self):
        set_fault_plan("raise:victim")
        maybe_inject("innocent", 1)  # no-op
        with pytest.raises(InjectedFault):
            maybe_inject("victim", 1)
        maybe_inject("victim", 2)  # attempts=1 default: cleared on retry


class TestWorkerRaise:
    @pytest.mark.parametrize("processes", [1, 2])
    def test_keep_going_produces_failed_record(self, processes):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("raise:victim:attempts=0")
        runner = SweepRunner(processes=processes, retries=1, **FAST_RETRY)
        records = runner.run(jobs)
        assert_matches_baseline(records, baseline, expect_failed={"victim"})
        failed = next(r for r in records if r.failed)
        assert failed.error.kind == "exception"
        assert failed.error.error_type == "InjectedFault"
        assert "injected fault" in failed.error.message
        assert failed.error.traceback  # worker-side traceback preserved
        assert failed.error.attempts == 2  # initial try + 1 retry
        stats = runner.last_campaign
        assert stats.failed == 1
        assert stats.retried == 1
        assert stats.simulated == len(jobs) - 1

    def test_retry_clears_transient_fault(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("raise:victim:attempts=1")
        runner = SweepRunner(processes=1, retries=1, **FAST_RETRY)
        records = runner.run(jobs)
        assert_matches_baseline(records, baseline)  # nothing failed
        stats = runner.last_campaign
        assert stats.failed == 0
        assert stats.retried == 1

    def test_strict_mode_raises_sweep_failure(self):
        jobs = demo_jobs()
        set_fault_plan("raise:victim:attempts=0")
        runner = SweepRunner(
            processes=1, retries=0, failure_mode="strict", **FAST_RETRY
        )
        with pytest.raises(SweepFailure) as excinfo:
            runner.run(jobs)
        assert excinfo.value.job.tag == "victim"
        assert excinfo.value.error.error_type == "InjectedFault"

    def test_failed_record_row_and_zero_metrics(self):
        jobs = demo_jobs()
        set_fault_plan("raise:victim:attempts=0")
        records = SweepRunner(processes=1, retries=0, **FAST_RETRY).run(jobs)
        failed = next(r for r in records if r.failed)
        assert failed.makespan == 0 and failed.total_requests == 0
        row = failed.row()
        assert row["failed"] is True
        assert row["error"] == "InjectedFault"
        ok = next(r for r in records if not r.failed)
        assert ok.row()["failed"] is False and ok.row()["error"] == ""


class TestTimeout:
    def test_overrun_fails_with_timeout_kind(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("sleep:victim:seconds=30,attempts=0")
        runner = SweepRunner(
            processes=1, retries=0, job_timeout=0.2, **FAST_RETRY
        )
        records = runner.run(jobs)
        assert_matches_baseline(records, baseline, expect_failed={"victim"})
        failed = next(r for r in records if r.failed)
        assert failed.error.kind == "timeout"
        assert runner.last_campaign.failed == 1

    def test_timeout_in_pool(self):
        jobs = demo_jobs()
        set_fault_plan("sleep:victim:seconds=30,attempts=0")
        runner = SweepRunner(
            processes=2, retries=0, job_timeout=0.2, **FAST_RETRY
        )
        records = runner.run(jobs)
        kinds = [r.error.kind for r in records if r.failed]
        assert kinds == ["timeout"]

    def test_timeout_retry_succeeds_when_fault_clears(self):
        jobs = demo_jobs()
        set_fault_plan("sleep:victim:seconds=30,attempts=1")
        runner = SweepRunner(
            processes=1, retries=1, job_timeout=0.2, **FAST_RETRY
        )
        records = runner.run(jobs)
        assert not any(r.failed for r in records)
        assert runner.last_campaign.retried == 1


class TestWorkerKill:
    """SIGKILLed workers surface as BrokenProcessPool; the campaign must
    rebuild the pool and resubmit only the lost jobs."""

    def test_killed_worker_recovers_all_records(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("kill:victim:attempts=1")
        runner = SweepRunner(processes=2, retries=1, **FAST_RETRY)
        records = runner.run(jobs)
        # zero lost records: the campaign completed with every record
        assert_matches_baseline(records, baseline)
        stats = runner.last_campaign
        assert stats.failed == 0
        assert stats.pool_rebuilds >= 1
        assert stats.recovered >= 1  # the victim, plus any in-flight peers

    def test_unrecoverable_kill_exhausts_rebuild_budget(self):
        from repro.analysis.sweep import _MAX_POOL_REBUILDS

        jobs = demo_jobs()
        set_fault_plan("kill:victim:attempts=0")  # dies on every attempt
        runner = SweepRunner(processes=2, retries=1, **FAST_RETRY)
        records = runner.run(jobs)
        # The campaign still completes: every record is present. The
        # victim is deterministically failed; innocent jobs in flight
        # when the budget ran out may be failed too (their worker died
        # with the pool), but never silently lost.
        assert all(r is not None for r in records)
        victim = next(r for r in records if r.job.tag == "victim")
        assert victim.failed
        assert victim.error.kind == "worker-lost"
        assert victim.error.error_type == "BrokenProcessPool"
        stats = runner.last_campaign
        assert stats.failed >= 1
        assert stats.pool_rebuilds == _MAX_POOL_REBUILDS + 1


class TestResultCacheHygiene:
    def test_failed_jobs_never_poison_the_cache(self, tmp_path):
        jobs = demo_jobs()
        set_fault_plan("raise:victim:attempts=0")
        runner = SweepRunner(
            processes=1, cache_dir=tmp_path, retries=0, **FAST_RETRY
        )
        records = runner.run(jobs)
        failed = next(r for r in records if r.failed)
        key = sweep_result_key(
            failed.job.workload, failed.job.config, failed.job.payload
        )
        cache = ResultCache(tmp_path / "results")
        assert cache.get(key) is None  # the failure was not cached
        assert len(cache) == len(jobs) - 1  # the successes were

        # A fault-free rerun replays the successes and simulates only
        # the previously failed job.
        set_fault_plan(None)
        runner2 = SweepRunner(processes=1, cache_dir=tmp_path, **FAST_RETRY)
        records2 = runner2.run(jobs)
        assert not any(r.failed for r in records2)
        assert runner2.last_campaign.cache_hits == len(jobs) - 1
        assert runner2.last_campaign.simulated == 1

    def test_result_cache_put_rejects_failed_payload(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put("abc", {"makespan": 0, "error": {"kind": "exception"}})

    def test_cached_entry_records_attempt(self, tmp_path):
        jobs = demo_jobs()
        set_fault_plan("raise:victim:attempts=1")
        SweepRunner(
            processes=1, cache_dir=tmp_path, retries=1, **FAST_RETRY
        ).run(jobs)
        attempts = []
        for path in (tmp_path / "results").glob("*.json"):
            manifest = json.loads(path.read_text())["manifest"]
            attempts.append(manifest["execution"]["attempt"])
        assert sorted(attempts) == [1, 1, 1, 2]  # the victim took 2 tries


class TestCampaignStatsSurface:
    def test_summary_table_unchanged_without_failures(self):
        jobs = demo_jobs()
        runner = SweepRunner(processes=1, **FAST_RETRY)
        runner.run(jobs)
        table = runner.last_campaign.summary_table()
        assert "failed" not in table
        assert "retried" not in table

    def test_summary_table_shows_failure_counters(self):
        jobs = demo_jobs()
        set_fault_plan("raise:victim:attempts=0")
        runner = SweepRunner(processes=1, retries=1, **FAST_RETRY)
        runner.run(jobs)
        table = runner.last_campaign.summary_table()
        assert "1 failed" in table
        assert "1 retried" in table
        header = next(l for l in table.splitlines() if "workload" in l)
        assert "failed" in header  # column present

    def test_collect_counts_failed_separately(self):
        jobs = demo_jobs()
        set_fault_plan("raise:victim:attempts=0")
        runner = SweepRunner(processes=1, retries=0, **FAST_RETRY)
        records = runner.run(jobs)
        stats = CampaignStats.collect(records, wall_time_s=1.0)
        assert stats.failed == 1
        assert stats.simulated == len(jobs) - 1
        assert stats.sim_time_s > 0.0
        group = stats.by_group[("adversarial_cycle", "priority")]
        assert group["failed"] == 1

    def test_campaign_manifest_and_checks_surface_counters(self, tmp_path):
        from repro.experiments.base import (
            Campaign,
            Reduction,
            save_experiment_output,
        )

        campaign = Campaign.sweep(
            "ft-demo",
            "fault-tolerance demo",
            build_jobs=lambda ctx: demo_jobs(),
            reduce=lambda ctx, records: Reduction(
                rows=[r.row() for r in records if not r.failed],
                checks={"ran": True},
                text="ok",
            ),
        )
        set_fault_plan("raise:victim:attempts=0")
        previous = set_execution_defaults(retries=1, retry_backoff_s=0.01)
        try:
            out = campaign.run(scale="smoke", processes=1)
        finally:
            set_execution_defaults(**previous)
        assert out.campaign.failed == 1
        target = save_experiment_output(out, tmp_path, seed=0)
        checks = json.loads((target / "checks.json").read_text())
        assert checks["failed_jobs"] == 1
        assert checks["retried_jobs"] == 1
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["campaign"]["failed"] == 1
        assert manifest["campaign"]["retried"] == 1
        assert manifest["campaign"]["recovered"] == 0


class TestExecutionDefaults:
    def test_round_trip(self):
        previous = set_execution_defaults(
            retries=3, job_timeout=12.5, failure_mode="strict", max_pool_rebuilds=7
        )
        try:
            runner = SweepRunner(processes=1)
            assert runner.retries == 3
            assert runner.job_timeout == 12.5
            assert runner.failure_mode == "strict"
            assert runner.max_pool_rebuilds == 7
        finally:
            restored = set_execution_defaults(**previous)
        assert restored == {
            "retries": 3,
            "job_timeout": 12.5,
            "failure_mode": "strict",
            "retry_backoff_s": previous["retry_backoff_s"],
            "max_pool_rebuilds": 7,
            "shard": None,
        }
        runner = SweepRunner(processes=1)
        assert runner.retries == previous["retries"]
        assert runner.job_timeout is previous["job_timeout"]
        assert runner.max_pool_rebuilds == previous["max_pool_rebuilds"]

    def test_validation(self):
        with pytest.raises(ValueError):
            set_execution_defaults(retries=-1)
        with pytest.raises(ValueError):
            set_execution_defaults(failure_mode="explode")
        with pytest.raises(ValueError):
            set_execution_defaults(max_pool_rebuilds=-1)
        with pytest.raises(ValueError):
            set_execution_defaults(max_pool_rebuilds=None)
        with pytest.raises(ValueError):
            SweepRunner(processes=1, failure_mode="explode")
        with pytest.raises(ValueError):
            SweepRunner(processes=1, retries=-2)
        with pytest.raises(ValueError):
            SweepRunner(processes=1, max_pool_rebuilds=-3)

    def test_runner_arguments_override_defaults(self):
        runner = SweepRunner(
            processes=1,
            retries=5,
            job_timeout=1.0,
            failure_mode="strict",
            max_pool_rebuilds=9,
        )
        assert (runner.retries, runner.job_timeout, runner.failure_mode) == (
            5,
            1.0,
            "strict",
        )
        assert runner.max_pool_rebuilds == 9


class TestNoFaultEquivalence:
    """With no faults installed, the fault-tolerant runner must be
    byte-for-byte equivalent to the historical behavior."""

    def test_records_identical_and_counters_zero(self, tmp_path):
        jobs = demo_jobs()
        seq = run_sweep(jobs, processes=1, cache_dir=tmp_path / "a")
        par = run_sweep(jobs, processes=2, cache_dir=tmp_path / "b")
        for a, b in zip(seq, par):
            assert dataclasses.replace(a, wall_time_s=0.0) == dataclasses.replace(
                b, wall_time_s=0.0
            )
        runner = SweepRunner(processes=2, cache_dir=tmp_path / "c")
        runner.run(jobs)
        stats = runner.last_campaign
        assert (stats.failed, stats.retried, stats.recovered) == (0, 0, 0)
        assert stats.pool_rebuilds == 0


@pytest.fixture
def _forced_batching():
    """Force batch units of up to 4 lanes regardless of REPRO_BATCH."""
    previous = set_batch_limit(4)
    yield
    set_batch_limit(previous)


@pytest.mark.usefixtures("_forced_batching")
class TestBatchFormationUnderFaults:
    """A lane dying mid-batch is retried solo; survivors are unaffected.

    ``demo_jobs`` uses one config family (lru/protect_pending, no
    probes), so all four jobs are batch-eligible and — with the limit
    forced to 4 — run as a single lockstep batch unit on the first
    attempt.
    """

    def test_transient_lane_fault_retried_solo(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("raise:victim")  # first attempt only
        runner = SweepRunner(processes=1, **FAST_RETRY)
        records = runner.run(jobs)
        assert_matches_baseline(records, baseline)  # nothing failed
        stats = runner.last_campaign
        assert stats.retried == 1 and stats.failed == 0

    def test_permanent_lane_fault_leaves_survivors_intact(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("raise:victim:attempts=0")
        runner = SweepRunner(processes=1, retries=1, **FAST_RETRY)
        records = runner.run(jobs)
        assert_matches_baseline(records, baseline, expect_failed={"victim"})
        victim = next(r for r in records if r.job.tag == "victim")
        assert victim.error.kind == "exception"
        assert victim.error.error_type == "InjectedFault"
        assert victim.error.attempts == 2

    def test_killed_worker_recovers_whole_batch(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("kill:victim")
        runner = SweepRunner(processes=2, **FAST_RETRY)
        records = runner.run(jobs)
        assert_matches_baseline(records, baseline)
        stats = runner.last_campaign
        assert stats.pool_rebuilds == 1
        assert stats.recovered >= 1

    def test_batch_manifest_records_lane_geometry(self, tmp_path):
        jobs = demo_jobs()
        SweepRunner(processes=1, cache_dir=tmp_path).run(jobs)
        execution = [
            json.loads(path.read_text())["manifest"]["execution"]
            for path in (tmp_path / "results").glob("*.json")
        ]
        assert {e["batch_lanes"] for e in execution} == {len(jobs)}
        assert sorted(e["batch_lane"] for e in execution) == list(range(len(jobs)))


class TestWatchdogDeadline:
    """The ``_job_deadline`` watchdog fallback enforces timeouts off the
    main thread, where SIGALRM is unavailable."""

    def test_watchdog_interrupts_overrun_in_worker_thread(self):
        outcome = {}

        def body():
            try:
                with _job_deadline(0.1):
                    # Busy loop, not time.sleep: the async exception is
                    # delivered at a bytecode boundary.
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        pass
                outcome["result"] = "finished"
            except JobTimeout as exc:
                outcome["result"] = str(exc)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert "0.1s deadline" in outcome["result"]

    def test_watchdog_noop_when_job_finishes_in_time(self):
        outcome = {}

        def body():
            with _job_deadline(30.0):
                outcome["result"] = "finished"

        thread = threading.Thread(target=body)
        thread.start()
        thread.join(timeout=30)
        assert outcome["result"] == "finished"

    def test_timeout_of_batched_lane_fails_only_that_attempt(self):
        jobs = demo_jobs()
        baseline = run_sweep(jobs, processes=1)
        set_fault_plan("sleep:victim:seconds=5")
        previous = set_batch_limit(4)
        try:
            runner = SweepRunner(processes=1, job_timeout=0.5, **FAST_RETRY)
            records = runner.run(jobs)
        finally:
            set_batch_limit(previous)
        # sleep fault clears on attempt 2 (attempts=1 default), so the
        # solo retry succeeds and every record matches the baseline.
        assert_matches_baseline(records, baseline)
        stats = runner.last_campaign
        assert stats.retried >= 1 and stats.failed == 0
