"""Tests for the experiment registry, output plumbing, and cheap experiments.

The heavyweight simulation experiments (fig2/fig3/fig4/fig5) run in the
benchmark suite; here we exercise the machinery plus the experiments
that complete in well under a second.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentOutput,
    experiment_ids,
    run_experiment,
)
from repro.experiments.base import require_scale
from repro.experiments.table2 import figure6, table2a, table2b
from repro.experiments.theory_checks import lemma1, theorem4


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        ids = experiment_ids()
        for required in (
            "fig2a",
            "fig2b",
            "fig3",
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "tab1",
            "tab2a",
            "tab2b",
            "fig6",
        ):
            assert required in ids

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("nope")

    def test_descriptions_present(self):
        for _, (fn, description) in EXPERIMENTS.items():
            assert callable(fn)
            assert len(description) > 10

    def test_require_scale(self):
        assert require_scale("smoke") == "smoke"
        assert require_scale("paper") == "paper"
        with pytest.raises(ValueError):
            require_scale("huge")


class TestExperimentOutput:
    def test_render_and_checks(self):
        out = ExperimentOutput(
            experiment_id="x",
            title="T",
            scale="smoke",
            rows=[{"a": 1}],
            text="body",
            checks={"good": True, "bad": False},
        )
        assert not out.all_checks_pass
        assert out.failed_checks() == ["bad"]
        rendered = out.render()
        assert "[PASS] good" in rendered
        assert "[FAIL] bad" in rendered
        assert "x: T" in rendered


class TestCheapExperiments:
    def test_table2a_smoke(self):
        out = run_experiment("tab2a", scale="smoke")
        assert out.all_checks_pass, out.failed_checks()
        assert any(r["array_size"] == "16MiB" for r in out.rows)
        # flat HBM unallocatable past 8GiB -> '-' cells
        big = [r for r in out.rows if r["array_size"] in ("16GiB", "64GiB")]
        assert all(r["hbm_ns"] is None for r in big)

    def test_table2b_smoke(self):
        out = table2b(scale="smoke")
        assert out.all_checks_pass, out.failed_checks()
        first = out.rows[0]
        assert first["hbm_mib_s"] > 4 * first["dram_mib_s"]

    def test_figure6_smoke(self):
        out = figure6(scale="smoke")
        assert out.all_checks_pass, out.failed_checks()
        assert "Figure 6a" in out.text
        assert "Figure 6b" in out.text

    def test_lemma1_smoke(self):
        out = lemma1(scale="smoke")
        assert out.all_checks_pass, out.failed_checks()
        assert {r["replacement"] for r in out.rows} == {"lru", "fifo"}

    def test_theorem4_smoke(self):
        out = theorem4(scale="smoke")
        assert out.all_checks_pass, out.failed_checks()

    def test_experiments_deterministic_under_seed(self):
        a = table2a(scale="smoke", seed=7)
        b = table2a(scale="smoke", seed=7)
        assert a.rows == b.rows
