"""Tests for the campaign pipeline: payload-carrying records, cache
replay, Campaign/Reduction, output persistence, and the CLI flags that
expose them."""

import json

import pytest

from repro.analysis import (
    PayloadRequest,
    SweepJob,
    SweepPayload,
    SweepRunner,
    WorkloadSpec,
    run_sweep,
    sweep_result_key,
)
from repro.core import SimulationConfig
from repro.experiments.base import (
    CAMPAIGN_MANIFEST_SCHEMA,
    Campaign,
    CampaignContext,
    Reduction,
    merge_campaign_stats,
    save_experiment_output,
)

SPEC = WorkloadSpec.make("adversarial_cycle", threads=4, seed=0, pages=16, repeats=3)
CONFIG = SimulationConfig(hbm_slots=32)

FAT = PayloadRequest(response_histogram=True, response_series=True)


def fat_job(payload=FAT):
    return SweepJob(workload=SPEC, config=CONFIG, tag="t", payload=payload)


class TestPayloadCacheKeys:
    def test_empty_request_leaves_slim_key_unchanged(self):
        bare = sweep_result_key(SPEC, CONFIG)
        assert sweep_result_key(SPEC, CONFIG, PayloadRequest()) == bare
        assert sweep_result_key(SPEC, CONFIG, None) == bare

    def test_fat_key_differs_from_slim(self):
        assert sweep_result_key(SPEC, CONFIG, FAT) != sweep_result_key(SPEC, CONFIG)

    def test_distinct_requests_distinct_keys(self):
        keys = {
            sweep_result_key(SPEC, CONFIG, req)
            for req in (
                PayloadRequest(response_histogram=True),
                PayloadRequest(response_series=True),
                PayloadRequest(probe_samples=True),
                PayloadRequest(probe_samples=True, probe_stride=16),
            )
        }
        assert len(keys) == 4

    def test_stride_irrelevant_without_probe_samples(self):
        a = PayloadRequest(response_histogram=True, probe_stride=64)
        b = PayloadRequest(response_histogram=True, probe_stride=128)
        assert sweep_result_key(SPEC, CONFIG, a) == sweep_result_key(SPEC, CONFIG, b)


class TestPayloadReplay:
    def test_fat_record_round_trips_through_cache(self, tmp_path):
        cold = run_sweep([fat_job()], processes=1, cache_dir=tmp_path)[0]
        assert not cold.cached
        assert cold.payload is not None
        assert cold.payload.response_percentile(0.99) <= cold.max_response

        warm = run_sweep([fat_job()], processes=1, cache_dir=tmp_path)[0]
        assert warm.cached
        assert warm.payload is not None
        for frac in (0.5, 0.95, 0.99, 1.0):
            assert warm.payload.response_percentile(
                frac
            ) == cold.payload.response_percentile(frac)
        assert warm.payload.to_json_dict() == cold.payload.to_json_dict()

    def test_payload_json_round_trip_is_lossless(self, tmp_path):
        record = run_sweep([fat_job()], processes=1, cache_dir=tmp_path)[0]
        rebuilt = SweepPayload.from_json_dict(record.payload.to_json_dict())
        assert rebuilt.to_json_dict() == record.payload.to_json_dict()

    def test_slim_cache_entry_never_serves_fat_job(self, tmp_path):
        slim = SweepJob(workload=SPEC, config=CONFIG)
        run_sweep([slim], processes=1, cache_dir=tmp_path)
        record = run_sweep([fat_job()], processes=1, cache_dir=tmp_path)[0]
        # the fat job must simulate (distinct key), not hit the slim entry
        assert not record.cached
        assert record.payload is not None

    def test_probe_samples_replayed(self, tmp_path):
        job = fat_job(PayloadRequest(probe_samples=True, probe_stride=8))
        cold = run_sweep([job], processes=1, cache_dir=tmp_path)[0]
        warm = run_sweep([job], processes=1, cache_dir=tmp_path)[0]
        assert cold.payload.probe_samples
        assert warm.cached
        assert warm.payload.probe_samples == cold.payload.probe_samples

    def test_hits_misses_survive_replay(self, tmp_path):
        job = SweepJob(workload=SPEC, config=CONFIG)
        cold = run_sweep([job], processes=1, cache_dir=tmp_path)[0]
        warm = run_sweep([job], processes=1, cache_dir=tmp_path)[0]
        assert warm.cached
        assert (warm.hits, warm.misses) == (cold.hits, cold.misses)
        assert cold.hits + cold.misses == cold.total_requests


def demo_campaign():
    def build(ctx):
        return [
            SweepJob(
                workload=SPEC,
                config=SimulationConfig(hbm_slots=32, arbitration=arb),
                tag=arb,
            )
            for arb in ("fifo", "priority")
        ]

    def reduce(ctx, records):
        rows = [r.row() for r in records]
        return Reduction(
            rows=rows,
            checks={"two_records": len(records) == 2},
            data={"makespans": [r.makespan for r in records]},
            text="demo table",
        )

    return Campaign.sweep("demo", "Demo campaign", build, reduce)


class TestCampaign:
    def test_sweep_campaign_produces_output(self, tmp_path):
        out = demo_campaign().run(scale="smoke", cache_dir=tmp_path)
        assert out.experiment_id == "demo"
        assert len(out.rows) == 2
        assert out.checks == {"two_records": True}
        assert out.campaign is not None
        assert out.campaign.total_jobs == 2
        assert out.campaign.simulated == 2

    def test_warm_campaign_replays_everything(self, tmp_path):
        campaign = demo_campaign()
        campaign.run(cache_dir=tmp_path)
        warm = campaign.run(cache_dir=tmp_path)
        assert warm.campaign.simulated == 0
        assert warm.campaign.cache_hits == 2

    def test_callable_matches_classic_signature(self, tmp_path):
        campaign = demo_campaign()
        out = campaign(scale="smoke", processes=1, cache_dir=tmp_path, seed=0)
        assert out.scale == "smoke"

    def test_local_campaign_skips_sweep(self):
        def compute(ctx):
            return Reduction(
                rows=[{"scale": ctx.scale}], checks={"ok": True}, text="local"
            )

        out = Campaign.local("loc", "Local", compute).run(scale="smoke")
        assert out.rows == [{"scale": "smoke"}]
        assert out.campaign is not None and out.campaign.total_jobs == 0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            demo_campaign().run(scale="huge")

    def test_context_builds_workloads_through_cache(self, tmp_path):
        ctx = CampaignContext(
            experiment_id="demo", scale="smoke", cache_dir=str(tmp_path)
        )
        wl = ctx.build_workload(SPEC)
        assert wl.num_threads == 4
        assert list(tmp_path.glob("*.npz"))  # generated via the disk cache

    def test_merge_campaign_stats(self, tmp_path):
        a = demo_campaign().run(cache_dir=tmp_path).campaign
        b = demo_campaign().run(cache_dir=tmp_path).campaign
        merged = merge_campaign_stats([a, b, None])
        assert merged.total_jobs == 4
        assert merged.simulated == a.simulated  # b was fully cached
        assert merged.cache_hits == a.cache_hits + b.cache_hits


class TestSaveExperimentOutput:
    def test_writes_full_results_tree(self, tmp_path):
        out = demo_campaign().run(cache_dir=tmp_path / "cache")
        target = save_experiment_output(out, tmp_path / "results", seed=0)
        assert target == tmp_path / "results" / "demo"
        for name in ("rows.csv", "report.txt", "checks.json", "manifest.json"):
            assert (target / name).exists()
        checks = json.loads((target / "checks.json").read_text())
        assert checks == {
            "checks": {"two_records": True},
            "all_checks_pass": True,
            "failed_jobs": 0,
            "retried_jobs": 0,
            "recovered_jobs": 0,
        }
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["schema"] == CAMPAIGN_MANIFEST_SCHEMA
        assert manifest["experiment_id"] == "demo"
        assert manifest["seed"] == 0
        assert manifest["campaign"]["total_jobs"] == 2
        assert manifest["engine_semantics_version"]

    def test_no_rows_no_csv(self, tmp_path):
        def compute(ctx):
            return Reduction(rows=[], text="empty")

        out = Campaign.local("empty", "Empty", compute).run()
        target = save_experiment_output(out, tmp_path)
        assert not (target / "rows.csv").exists()
        assert (target / "manifest.json").exists()

    def test_run_experiment_save_dir(self, tmp_path):
        from repro.experiments import run_experiment

        run_experiment(
            "thm4", scale="smoke", cache_dir=tmp_path / "c", save_dir=tmp_path / "r"
        )
        assert (tmp_path / "r" / "thm4" / "manifest.json").exists()


class TestCliFlags:
    def test_run_save_flag_persists_results(self, tmp_path, capsys):
        from repro._cli import main

        code = main(
            [
                "run",
                "thm4",
                "--scale",
                "smoke",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--save",
                str(tmp_path / "results"),
            ]
        )
        assert code == 0
        capsys.readouterr()
        manifest = json.loads(
            (tmp_path / "results" / "thm4" / "manifest.json").read_text()
        )
        assert manifest["schema"] == CAMPAIGN_MANIFEST_SCHEMA

    def test_run_no_strict_downgrades_exit_code(self, monkeypatch, capsys):
        from repro._cli import main
        from repro.experiments import registry
        from repro.experiments.base import ExperimentOutput

        def fake(scale="smoke", processes=None, cache_dir=None, seed=0):
            return ExperimentOutput(
                experiment_id="thm4",
                title="fake",
                scale=scale,
                rows=[],
                text="",
                checks={"doomed": False},
            )

        monkeypatch.setitem(registry.EXPERIMENTS, "thm4", (fake, "fake"))
        assert main(["run", "thm4"]) == 1
        capsys.readouterr()
        assert main(["run", "thm4", "--no-strict"]) == 0
        assert "FAILED shape checks" in capsys.readouterr().err
