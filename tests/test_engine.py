"""Tests for repro.core.engine — the paper's five-step tick semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SimulationConfig,
    SimulationLimitError,
    Simulator,
    run_simulation,
)


def run(traces, **kwargs):
    return run_simulation(traces, **kwargs)


class TestTickSemantics:
    """Hand-checked miniature schedules pinning the exact model timing."""

    def test_single_hit_costs_one_tick(self):
        # page 0 misses (w=2: fetched tick 0, served tick 1), then hits.
        result = run([[0, 0]], hbm_slots=1)
        assert result.response_histogram == {2: 1, 1: 1}
        assert result.makespan == 3

    def test_cold_miss_costs_two_ticks(self):
        result = run([[5]], hbm_slots=4)
        assert result.response_histogram == {2: 1}
        assert result.makespan == 2

    def test_doc_example(self):
        # traced in the run_simulation docstring
        result = run([[0, 1, 0, 1]], hbm_slots=2)
        assert result.makespan == 6
        assert result.hits == 2
        assert result.misses == 2

    def test_two_threads_share_one_channel(self):
        # Both cold-miss at tick 0; q=1 so thread 1 waits one extra tick.
        result = run([[0], [1]], hbm_slots=4, channels=1)
        assert result.thread_stats[0].response.max == 2
        assert result.thread_stats[1].response.max == 3
        assert result.makespan == 3

    def test_two_channels_fetch_in_parallel(self):
        result = run([[0], [1]], hbm_slots=4, channels=2)
        assert result.thread_stats[0].response.max == 2
        assert result.thread_stats[1].response.max == 2
        assert result.makespan == 2

    def test_q_larger_than_queue_is_harmless(self):
        result = run([[0], [1]], hbm_slots=4, channels=8)
        assert result.makespan == 2

    def test_hits_are_served_in_parallel(self):
        # After the cold misses, all three threads hit simultaneously.
        traces = [[0, 0, 0], [1, 1, 1], [2, 2, 2]]
        result = run(traces, hbm_slots=3, channels=3)
        assert result.makespan == 4  # 2 ticks cold miss + 2 hit ticks

    def test_eviction_on_capacity_pressure(self):
        # k=1: every new page evicts the previous one.
        result = run([[0, 1, 2, 3]], hbm_slots=1)
        assert result.evictions == 3
        assert result.fetches == 4
        assert result.hits == 0

    def test_lru_keeps_hot_page(self):
        # Page 0 reused; k=2 keeps it while 1..3 stream through.
        trace = [0, 1, 0, 2, 0, 3, 0]
        result = run([trace], hbm_slots=2)
        assert result.hits == 3  # all re-references of page 0 hit

    def test_completion_ticks_monotone_with_priority(self):
        traces = [[i * 10 + j for j in range(5)] for i in range(3)]
        result = run(traces, hbm_slots=100, arbitration="priority")
        completions = list(result.completion_ticks)
        assert completions == sorted(completions)

    def test_makespan_is_last_completion(self):
        traces = [[0, 1], [2, 3, 4, 5]]
        result = run(traces, hbm_slots=100)
        assert result.makespan == max(result.completion_ticks)

    def test_empty_trace_thread_finishes_at_zero(self):
        result = run([[], [1, 2]], hbm_slots=4)
        assert result.completion_ticks[0] == 0
        assert result.total_requests == 2

    def test_all_empty_traces(self):
        result = run([[], []], hbm_slots=4)
        assert result.makespan == 0
        assert result.total_requests == 0


class TestFIFOVsPriority:
    def test_fifo_serves_in_arrival_order(self):
        # Thread 2's request is enqueued at the same tick as the others;
        # ties break by thread id under FIFO.
        traces = [[0], [1], [2]]
        result = run(traces, hbm_slots=8, arbitration="fifo")
        w = [result.thread_stats[i].response.max for i in range(3)]
        assert w == [2, 3, 4]

    def test_priority_always_prefers_thread_zero(self):
        # Interleaved misses: thread 0 never waits behind thread 1.
        traces = [[0, 1, 2, 3], [10, 11, 12, 13]]
        result = run(traces, hbm_slots=2, arbitration="priority")
        assert result.completion_ticks[0] < result.completion_ticks[1]
        assert (
            result.thread_stats[0].response.max
            <= result.thread_stats[1].response.max
        )

    def test_priority_starves_low_thread_on_contention(self):
        p, pages = 4, 8
        traces = [list(range(pages)) * 3 for _ in range(p)]
        wl_slots = pages  # room for exactly one thread's working set
        fifo = run(
            [list(np.array(t) + 100 * i) for i, t in enumerate(traces)],
            hbm_slots=wl_slots,
            arbitration="fifo",
        )
        prio = run(
            [list(np.array(t) + 100 * i) for i, t in enumerate(traces)],
            hbm_slots=wl_slots,
            arbitration="priority",
        )
        # Priority gives thread 0 a strictly better max response time
        # than FIFO's all-equal treatment gives anyone.
        assert prio.thread_stats[0].response.max <= fifo.thread_stats[0].response.max
        # ... at the price of a worse worst case for the lowest thread.
        assert prio.max_response >= fifo.max_response


class TestRemapping:
    def test_remap_count_reported(self):
        traces = [list(range(20))] * 2
        result = run(
            traces,
            hbm_slots=4,
            arbitration="dynamic_priority",
            remap_period=10,
        )
        assert result.remap_count == (result.ticks + 9) // 10

    def test_dynamic_priority_deterministic_under_seed(self):
        traces = [list(range(30)) * 2 for _ in range(6)]
        kwargs = dict(
            hbm_slots=16, arbitration="dynamic_priority", remap_period=20, seed=5
        )
        a = run(traces, **kwargs)
        b = run(traces, **kwargs)
        assert a.makespan == b.makespan
        assert a.response_histogram == b.response_histogram

    def test_different_seeds_change_dynamic_priority(self):
        traces = [list(range(40)) * 3 for _ in range(8)]
        a = run(traces, hbm_slots=16, arbitration="dynamic_priority",
                remap_period=16, seed=1)
        b = run(traces, hbm_slots=16, arbitration="dynamic_priority",
                remap_period=16, seed=2)
        # Same workload, different shuffles: virtually certain to differ
        # somewhere in the response distribution.
        assert a.response_histogram != b.response_histogram


class TestProtectPending:
    def test_tiny_hbm_progresses_with_protection(self):
        # k=1 < p would livelock if freshly fetched pages could be
        # evicted before being served.
        traces = [[0, 1], [10, 11], [20, 21]]
        result = run(traces, hbm_slots=1, protect_pending=True)
        assert result.total_requests == 6

    def test_unprotected_mode_matches_paper_order_on_safe_workload(self):
        traces = [list(range(8)) * 2 for _ in range(3)]
        a = run(traces, hbm_slots=16, protect_pending=True)
        b = run(traces, hbm_slots=16, protect_pending=False)
        # ample HBM: protection can never trigger, results identical
        assert a.makespan == b.makespan
        assert a.response_histogram == b.response_histogram


class TestLimits:
    def test_max_ticks_raises(self):
        traces = [list(range(100))]
        with pytest.raises(SimulationLimitError, match="max_ticks"):
            run(traces, hbm_slots=4, max_ticks=10)

    def test_no_traces_rejected(self):
        with pytest.raises(ValueError, match="at least one trace"):
            Simulator([], SimulationConfig(hbm_slots=4))


class TestTimeline:
    def test_timeline_collection(self):
        traces = [list(range(50))]
        result = run(
            traces, hbm_slots=4, collect_timeline=True, timeline_stride=8
        )
        assert result.timeline is not None
        ticks = result.timeline[:, 0]
        assert list(ticks) == list(range(0, result.ticks, 8))
        occupancy = result.timeline[:, 2]
        assert occupancy.max() <= 4

    def test_timeline_off_by_default(self):
        assert run([[0]], hbm_slots=2).timeline is None


class TestAccountingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 30), max_size=40),
            min_size=1,
            max_size=6,
        ),
        st.integers(1, 8),
        st.integers(1, 3),
        st.sampled_from(["fifo", "priority", "random", "round_robin"]),
    )
    def test_conservation_properties(self, raw_traces, k, q, arbitration):
        """Every request is served exactly once; fetches == misses when
        traces are disjoint; eviction count never exceeds fetches."""
        # Namespace per-thread pages to honour model Property 1.
        traces = [
            [1000 * i + page for page in t] for i, t in enumerate(raw_traces)
        ]
        total = sum(len(t) for t in traces)
        result = run(
            traces, hbm_slots=k, channels=q, arbitration=arbitration, seed=3
        )
        assert result.total_requests == total
        assert result.hits + result.misses == total
        assert result.fetches == result.misses
        assert 0 <= result.evictions <= result.fetches
        assert result.evictions >= result.fetches - k
        if total:
            assert result.makespan >= max(len(t) for t in traces)
            assert result.max_response >= 1
        # response-time floor: hits are exactly the w==1 serves
        assert all(w >= 1 for w in result.response_histogram)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=60),
        st.integers(1, 6),
    )
    def test_single_thread_lru_hit_count_matches_reference(self, trace, k):
        """With one thread and q=1, hits must match a plain LRU cache
        simulation (the far channel adds latency but cannot change which
        references hit)."""
        result = run([trace], hbm_slots=k)
        # reference LRU simulation
        from collections import OrderedDict

        cache: OrderedDict[int, None] = OrderedDict()
        hits = 0
        for page in trace:
            if page in cache:
                hits += 1
                cache.move_to_end(page)
            else:
                if len(cache) >= k:
                    cache.popitem(last=False)
                cache[page] = None
        assert result.hits == hits

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_disjoint_single_pages(self, p, q):
        """p threads each requesting one distinct page: makespan is the
        cold-miss pipeline length ceil(p/q) + 1."""
        traces = [[i] for i in range(p)]
        result = run(traces, hbm_slots=p, channels=q)
        assert result.makespan == -(-p // q) + 1


class TestSharedPagesTolerance:
    def test_shared_page_fetch_is_noop(self):
        # Both threads want page 0; only one DRAM fetch should happen.
        result = run([[0], [0]], hbm_slots=4, channels=1)
        assert result.fetches == 1
        assert result.total_requests == 2

    def test_shared_workload_completes(self):
        traces = [list(range(10)) for _ in range(4)]
        result = run(traces, hbm_slots=4)
        assert result.total_requests == 40


class TestReplacementChoicesMatter:
    def test_mru_beats_lru_on_cyclic_scan(self):
        trace = list(range(10)) * 10
        lru = run([trace], hbm_slots=5, replacement="lru")
        mru = run([trace], hbm_slots=5, replacement="mru")
        assert lru.hits == 0  # classic cyclic-scan LRU pathology
        assert mru.hits > 0
        assert mru.makespan < lru.makespan

    def test_belady_hits_at_least_lru_single_thread(self):
        rng = np.random.default_rng(4)
        trace = rng.integers(0, 30, size=400).tolist()
        lru = run([trace], hbm_slots=8, replacement="lru")
        belady = run([trace], hbm_slots=8, replacement="belady")
        assert belady.hits >= lru.hits

    def test_all_replacements_complete(self):
        trace = list(np.random.default_rng(0).integers(0, 20, size=100))
        for name in ("lru", "fifo", "clock", "random", "mru", "belady"):
            result = run([trace, [100 + x for x in trace]],
                         hbm_slots=6, replacement=name, seed=1)
            assert result.total_requests == 200, name
