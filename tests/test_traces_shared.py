"""Tests for the non-disjoint (shared pages) workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_simulation
from repro.traces import Workload, make_workload, shared_segment_trace
from repro.traces.shared import _PRIVATE_BASE


class TestSharedSegmentTrace:
    def make(self, fraction, length=500, seed=0, thread=0):
        return shared_segment_trace(
            length, 32, 16, fraction, np.random.default_rng(seed), thread
        )

    def test_fraction_zero_is_all_private(self):
        trace = self.make(0.0)
        assert (trace.pages >= _PRIVATE_BASE).all()

    def test_fraction_one_is_all_shared(self):
        trace = self.make(1.0)
        assert (trace.pages < 16).all()

    def test_fraction_roughly_respected(self):
        trace = self.make(0.5, length=4000)
        shared = (trace.pages < _PRIVATE_BASE).mean()
        assert 0.45 < shared < 0.55

    def test_private_blocks_disjoint_across_threads(self):
        a = self.make(0.0, thread=0)
        b = self.make(0.0, thread=1, seed=1)
        assert set(a.pages.tolist()).isdisjoint(b.pages.tolist())

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            shared_segment_trace(10, 4, 4, 1.5, rng, 0)
        with pytest.raises(ValueError):
            shared_segment_trace(10, 0, 4, 0.5, rng, 0)
        with pytest.raises(ValueError):
            shared_segment_trace(-1, 4, 4, 0.5, rng, 0)


class TestSharedWorkload:
    def test_not_namespaced(self):
        wl = make_workload("shared", threads=4, length=200, shared_fraction=0.5)
        assert wl.namespaced is False
        sets = [set(t.tolist()) for t in wl.traces]
        # the shared segment really is shared
        assert sets[0] & sets[1]

    def test_unique_accounting_uses_union(self):
        wl = make_workload(
            "shared",
            threads=4,
            length=5000,
            private_pages=8,
            shared_pages=8,
            shared_fraction=0.5,
        )
        # 4 private blocks of 8 plus one shared block of 8
        assert wl.total_unique_pages == 4 * 8 + 8

    def test_subset_preserves_non_namespacing(self):
        wl = make_workload("shared", threads=4, length=100, shared_fraction=0.9)
        sub = wl.subset(2)
        assert sub.namespaced is False
        assert set(sub.traces[0].tolist()) & set(sub.traces[1].tolist())

    def test_simulation_shares_fetches(self):
        """At shared_fraction=1 every core reads the same tiny segment:
        one fetch per page serves all cores."""
        wl = make_workload(
            "shared",
            threads=8,
            length=500,
            private_pages=4,
            shared_pages=16,
            shared_fraction=1.0,
        )
        result = run_simulation(wl.traces, hbm_slots=32)
        assert result.fetches == 16  # compulsory only, shared by all
        assert result.total_requests == 8 * 500

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 6),
        st.floats(0.0, 1.0),
        st.integers(0, 5),
    )
    def test_simulation_always_completes(self, threads, fraction, seed):
        wl = make_workload(
            "shared",
            threads=threads,
            seed=seed,
            length=120,
            private_pages=8,
            shared_pages=8,
            shared_fraction=fraction,
        )
        for arb in ("fifo", "priority", "round_robin"):
            result = run_simulation(wl.traces, hbm_slots=12, arbitration=arb)
            assert result.total_requests == threads * 120


class TestWorkloadNamespaceFlag:
    def test_namespace_false_keeps_raw_ids(self):
        wl = Workload([[5, 6], [5, 7]], namespace=False)
        assert wl.traces[0][0] == wl.traces[1][0] == 5
        assert wl.total_unique_pages == 3

    def test_namespace_true_separates(self):
        wl = Workload([[5, 6], [5, 7]], namespace=True)
        assert wl.total_unique_pages == 4
