"""Tests for the hbm-repro CLI."""

import pytest

from repro._cli import _parse_params, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "tab2b" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "spgemm" in out and "sort" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_rejects_unknown_id(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["n=100", "density=0.25", "coalesce=true", "tag=x"])
        assert params == {"n": 100, "density": 0.25, "coalesce": True, "tag": "x"}

    def test_rejects_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestRunCommands:
    def test_simulate_prints_summary(self, capsys):
        code = main(
            [
                "simulate",
                "adversarial_cycle",
                "--threads",
                "4",
                "--hbm-slots",
                "32",
                "--param",
                "pages=16",
                "--param",
                "repeats=2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "thm4",
                "--scale",
                "smoke",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "thm4.csv").exists()
        assert (tmp_path / "thm4.txt").exists()
        assert "[PASS]" in capsys.readouterr().out

    def test_profile_prints_locality(self, capsys):
        code = main(
            [
                "profile",
                "adversarial_cycle",
                "--param",
                "pages=16",
                "--param",
                "repeats=3",
                "--capacities",
                "8,16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "reuse distance" in out

    SIMULATE_ARGV = [
        "simulate",
        "adversarial_cycle",
        "--threads",
        "4",
        "--hbm-slots",
        "32",
        "--param",
        "pages=16",
        "--param",
        "repeats=2",
    ]

    def test_simulate_engine_flag_output_identical(self, capsys):
        outputs = {}
        for engine in ("reference", "fast", "auto"):
            assert main(self.SIMULATE_ARGV + ["--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["reference"] == outputs["fast"] == outputs["auto"]

    def test_simulate_engine_fast_rejects_unsupported(self):
        argv = self.SIMULATE_ARGV + ["--replacement", "clock", "--engine", "fast"]
        with pytest.raises(ValueError, match="fast"):
            main(argv)

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(self.SIMULATE_ARGV + ["--engine", "warp"])

    def test_run_engine_flags_restore_defaults(self, capsys):
        from repro.analysis.sweep import _RESULT_CACHE_DEFAULT
        from repro.core import default_engine

        assert default_engine() == "auto"
        code = main(
            ["run", "thm4", "--engine", "reference", "--no-result-cache"]
        )
        assert code == 0
        assert "[PASS]" in capsys.readouterr().out
        # module-level defaults must be restored after the command
        assert default_engine() == "auto"
        from repro.analysis import sweep as sweep_mod

        assert sweep_mod._RESULT_CACHE_DEFAULT is _RESULT_CACHE_DEFAULT is True

    def test_run_exit_code_on_failed_checks(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.base import ExperimentOutput

        def fake(scale="smoke", processes=None, cache_dir=None, seed=0):
            return ExperimentOutput(
                experiment_id="thm4",
                title="fake",
                scale=scale,
                rows=[],
                text="",
                checks={"doomed": False},
            )

        monkeypatch.setitem(registry.EXPERIMENTS, "thm4", (fake, "fake"))
        assert main(["run", "thm4"]) == 1
        assert "FAILED shape checks" in capsys.readouterr().err


class TestObservabilityCommands:
    TRACE_ARGV = [
        "trace",
        "adversarial_cycle",
        "--threads",
        "4",
        "--hbm-slots",
        "32",
        "--param",
        "pages=16",
        "--param",
        "repeats=2",
    ]

    def test_trace_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(self.TRACE_ARGV + ["--output-dir", str(out_dir)])
        assert code == 0
        import json

        doc = json.loads((out_dir / "trace.json").read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "C", "X"}
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["schema"] == "repro.obs.manifest/v1"
        assert manifest["engine"] in ("fast", "reference")
        assert (out_dir / "timeline.jsonl").read_text().count("\n") == len(
            [e for e in doc["traceEvents"] if e["ph"] == "C"]
        ) // 5
        out = capsys.readouterr().out
        assert "perfetto" in out
        assert "timeline" in out

    def test_trace_no_ascii_and_stride(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            self.TRACE_ARGV
            + ["--output-dir", str(out_dir), "--no-ascii", "--probe-stride", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HBM occupancy" not in out
        import json

        lines = (out_dir / "timeline.jsonl").read_text().splitlines()
        assert all(json.loads(line)["tick"] % 8 == 0 for line in lines)

    def test_simulate_probe_prints_timeline(self, capsys):
        argv = TestRunCommands.SIMULATE_ARGV + ["--probe", "--probe-stride", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "HBM occupancy" in out
        assert "timeline" in out

    def test_simulate_manifest_flag(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        argv = TestRunCommands.SIMULATE_ARGV + ["--manifest", str(path)]
        assert main(argv) == 0
        import json

        assert json.loads(path.read_text())["engine"] in ("fast", "reference")
        assert str(path) in capsys.readouterr().out

    def test_verbosity_flags(self):
        import logging

        assert main(["-v", "workloads"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert main(["-q", "workloads"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING
        assert main(["workloads"]) == 0
        assert logging.getLogger("repro").level == logging.INFO
