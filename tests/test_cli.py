"""Tests for the hbm-repro CLI."""

import pytest

from repro._cli import _parse_params, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "tab2b" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "spgemm" in out and "sort" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_rejects_unknown_id(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["n=100", "density=0.25", "coalesce=true", "tag=x"])
        assert params == {"n": 100, "density": 0.25, "coalesce": True, "tag": "x"}

    def test_rejects_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestRunCommands:
    def test_simulate_prints_summary(self, capsys):
        code = main(
            [
                "simulate",
                "adversarial_cycle",
                "--threads",
                "4",
                "--hbm-slots",
                "32",
                "--param",
                "pages=16",
                "--param",
                "repeats=2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "thm4",
                "--scale",
                "smoke",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "thm4.csv").exists()
        assert (tmp_path / "thm4.txt").exists()
        assert "[PASS]" in capsys.readouterr().out

    def test_profile_prints_locality(self, capsys):
        code = main(
            [
                "profile",
                "adversarial_cycle",
                "--param",
                "pages=16",
                "--param",
                "repeats=3",
                "--capacities",
                "8,16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "reuse distance" in out

    SIMULATE_ARGV = [
        "simulate",
        "adversarial_cycle",
        "--threads",
        "4",
        "--hbm-slots",
        "32",
        "--param",
        "pages=16",
        "--param",
        "repeats=2",
    ]

    def test_simulate_engine_flag_output_identical(self, capsys):
        outputs = {}
        for engine in ("reference", "fast", "auto"):
            assert main(self.SIMULATE_ARGV + ["--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["reference"] == outputs["fast"] == outputs["auto"]

    def test_simulate_engine_fast_rejects_unsupported(self):
        argv = self.SIMULATE_ARGV + ["--replacement", "clock", "--engine", "fast"]
        with pytest.raises(ValueError, match="fast"):
            main(argv)

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(self.SIMULATE_ARGV + ["--engine", "warp"])

    def test_run_engine_flags_restore_defaults(self, capsys):
        from repro.analysis.sweep import _RESULT_CACHE_DEFAULT
        from repro.core import default_engine

        assert default_engine() == "auto"
        code = main(
            ["run", "thm4", "--engine", "reference", "--no-result-cache"]
        )
        assert code == 0
        assert "[PASS]" in capsys.readouterr().out
        # module-level defaults must be restored after the command
        assert default_engine() == "auto"
        from repro.analysis import sweep as sweep_mod

        assert sweep_mod._RESULT_CACHE_DEFAULT is _RESULT_CACHE_DEFAULT is True

    def test_run_exit_code_on_failed_checks(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.base import ExperimentOutput

        def fake(scale="smoke", processes=None, cache_dir=None, seed=0):
            return ExperimentOutput(
                experiment_id="thm4",
                title="fake",
                scale=scale,
                rows=[],
                text="",
                checks={"doomed": False},
            )

        monkeypatch.setitem(registry.EXPERIMENTS, "thm4", (fake, "fake"))
        assert main(["run", "thm4"]) == 1
        assert "FAILED shape checks" in capsys.readouterr().err


class TestObservabilityCommands:
    TRACE_ARGV = [
        "trace",
        "adversarial_cycle",
        "--threads",
        "4",
        "--hbm-slots",
        "32",
        "--param",
        "pages=16",
        "--param",
        "repeats=2",
    ]

    def test_trace_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(self.TRACE_ARGV + ["--output-dir", str(out_dir)])
        assert code == 0
        import json

        doc = json.loads((out_dir / "trace.json").read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "C", "X"}
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["schema"] == "repro.obs.manifest/v1"
        assert manifest["engine"] in ("fast", "reference")
        assert (out_dir / "timeline.jsonl").read_text().count("\n") == len(
            [e for e in doc["traceEvents"] if e["ph"] == "C"]
        ) // 5
        out = capsys.readouterr().out
        assert "perfetto" in out
        assert "timeline" in out

    def test_trace_no_ascii_and_stride(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            self.TRACE_ARGV
            + ["--output-dir", str(out_dir), "--no-ascii", "--probe-stride", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HBM occupancy" not in out
        import json

        lines = (out_dir / "timeline.jsonl").read_text().splitlines()
        assert all(json.loads(line)["tick"] % 8 == 0 for line in lines)

    def test_simulate_probe_prints_timeline(self, capsys):
        argv = TestRunCommands.SIMULATE_ARGV + ["--probe", "--probe-stride", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "HBM occupancy" in out
        assert "timeline" in out

    def test_simulate_manifest_flag(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        argv = TestRunCommands.SIMULATE_ARGV + ["--manifest", str(path)]
        assert main(argv) == 0
        import json

        assert json.loads(path.read_text())["engine"] in ("fast", "reference")
        assert str(path) in capsys.readouterr().out

    def test_verbosity_flags(self):
        import logging

        assert main(["-v", "workloads"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert main(["-q", "workloads"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING
        assert main(["workloads"]) == 0
        assert logging.getLogger("repro").level == logging.INFO


class TestTelemetryFlags:
    def test_run_with_metrics_and_events(self, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        events = tmp_path / "e.jsonl"
        code = main(
            [
                "run",
                "fig3",
                "--scale",
                "smoke",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics-out",
                str(metrics),
                "--events-out",
                str(events),
                "--progress-every",
                "2",
            ]
        )
        assert code == 0
        capsys.readouterr()
        text = metrics.read_text()
        assert "repro_campaign_jobs_total" in text
        assert "repro_phase_seconds_bucket" in text
        import json

        lines = [json.loads(l) for l in events.read_text().splitlines()]
        assert lines[0]["event"] == "campaign.start"
        assert lines[-1]["event"] == "campaign.end"
        seqs = [e["seq"] for e in lines]
        assert seqs == sorted(seqs)

    def test_run_restores_telemetry_defaults(self, tmp_path, capsys):
        from repro.analysis.telemetry import default_telemetry

        main(
            [
                "run",
                "thm4",
                "--scale",
                "smoke",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics-out",
                str(tmp_path / "m.prom"),
            ]
        )
        capsys.readouterr()
        assert default_telemetry() is None  # CLI flags did not leak

    def test_progress_every_validated(self, tmp_path):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main(
                [
                    "run",
                    "thm4",
                    "--scale",
                    "smoke",
                    "--progress-every",
                    "0",
                    "--metrics-out",
                    str(tmp_path / "m.prom"),
                ]
            )


class TestTraceMergeCommand:
    def test_merge_combines_traces(self, tmp_path, capsys):
        import json

        one = tmp_path / "t1"
        two = tmp_path / "t2"
        argv = TestObservabilityCommands.TRACE_ARGV + ["--no-ascii"]
        assert main(argv + ["--output-dir", str(one)]) == 0
        assert main(argv + ["--output-dir", str(two), "--seed", "1"]) == 0
        capsys.readouterr()
        out_dir = tmp_path / "merged"
        code = main(
            [
                "trace",
                "--merge",
                str(one / "trace.json"),
                f"second={two / 'trace.json'}",
                "--output-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        assert "merged 2 trace(s)" in capsys.readouterr().out
        doc = json.loads((out_dir / "trace.json").read_text())
        tracks = [s["track"] for s in doc["otherData"]["merged"]]
        assert tracks[1] == "second"
        # pid ranges of the two inputs are disjoint in the merged doc
        assert len({e["pid"] for e in doc["traceEvents"]}) == 4

    def test_merge_rejects_workload_operand(self, capsys):
        assert main(["trace", "spgemm", "--merge", "x.json"]) == 2
        assert "not a workload" in capsys.readouterr().err

    def test_merge_missing_file_is_an_error(self, capsys):
        assert main(["trace", "--merge", "does-not-exist.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_plain_trace_still_requires_hbm_slots(self, capsys):
        assert main(["trace", "spgemm"]) == 2
        assert "--hbm-slots" in capsys.readouterr().err


class TestBenchCommand:
    def _write_bench(self, directory, ff_speedup):
        import json

        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_engine.json").write_text(
            json.dumps(
                {"miss_bound": {"ff_speedup": ff_speedup, "ff_on_s": 0.05}}
            )
        )

    def test_record_then_diff_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        self._write_bench(tmp_path, 8.0)
        assert main(
            [
                "bench",
                "record",
                "--bench-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        ) == 0
        assert baseline.exists()
        code = main(
            [
                "bench",
                "diff",
                "--bench-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_catches_synthetic_slowdown(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        self._write_bench(tmp_path, 8.0)
        main(["bench", "record", "--bench-dir", str(tmp_path), "--baseline", str(baseline)])
        slow = tmp_path / "slow"
        self._write_bench(slow, 4.0)  # the synthetic 2x slowdown
        code = main(
            [
                "bench",
                "diff",
                "--bench-dir",
                str(slow),
                "--baseline",
                str(baseline),
                "--tolerance",
                "0.25",
            ]
        )
        assert code == 4
        captured = capsys.readouterr()
        assert "REGRESSION engine.miss_bound.ff_speedup" in captured.err

    def test_diff_without_baseline_explains(self, tmp_path, capsys):
        self._write_bench(tmp_path, 8.0)
        code = main(
            [
                "bench",
                "diff",
                "--bench-dir",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "nope.json"),
            ]
        )
        assert code == 2
        assert "bench record" in capsys.readouterr().err

    def test_record_without_results_fails(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "record",
                "--bench-dir",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "baseline.json"),
            ]
        )
        assert code == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_repo_baseline_matches_committed_bench_files(self, capsys):
        # the committed baseline must stay in sync with the committed
        # BENCH_*.json results at the repo root
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        if not (repo_root / "BENCH_engine.json").is_file():
            import pytest as _pytest

            _pytest.skip("BENCH files not present")
        code = main(
            [
                "bench",
                "diff",
                "--bench-dir",
                str(repo_root),
                "--baseline",
                str(repo_root / "benchmarks" / "baseline.json"),
            ]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out
