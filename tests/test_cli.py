"""Tests for the hbm-repro CLI."""

import pytest

from repro._cli import _parse_params, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "tab2b" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "spgemm" in out and "sort" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_rejects_unknown_id(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["n=100", "density=0.25", "coalesce=true", "tag=x"])
        assert params == {"n": 100, "density": 0.25, "coalesce": True, "tag": "x"}

    def test_rejects_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestRunCommands:
    def test_simulate_prints_summary(self, capsys):
        code = main(
            [
                "simulate",
                "adversarial_cycle",
                "--threads",
                "4",
                "--hbm-slots",
                "32",
                "--param",
                "pages=16",
                "--param",
                "repeats=2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "thm4",
                "--scale",
                "smoke",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "thm4.csv").exists()
        assert (tmp_path / "thm4.txt").exists()
        assert "[PASS]" in capsys.readouterr().out

    def test_profile_prints_locality(self, capsys):
        code = main(
            [
                "profile",
                "adversarial_cycle",
                "--param",
                "pages=16",
                "--param",
                "repeats=3",
                "--capacities",
                "8,16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "reuse distance" in out

    def test_run_exit_code_on_failed_checks(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.base import ExperimentOutput

        def fake(scale="smoke", processes=None, cache_dir=None, seed=0):
            return ExperimentOutput(
                experiment_id="thm4",
                title="fake",
                scale=scale,
                rows=[],
                text="",
                checks={"doomed": False},
            )

        monkeypatch.setitem(registry.EXPERIMENTS, "thm4", (fake, "fake"))
        assert main(["run", "thm4"]) == 1
        assert "FAILED shape checks" in capsys.readouterr().err
