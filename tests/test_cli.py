"""Tests for the hbm-repro CLI."""

import pytest

from repro._cli import _parse_params, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "tab2b" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "spgemm" in out and "sort" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_rejects_unknown_id(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["n=100", "density=0.25", "coalesce=true", "tag=x"])
        assert params == {"n": 100, "density": 0.25, "coalesce": True, "tag": "x"}

    def test_rejects_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestRunCommands:
    def test_simulate_prints_summary(self, capsys):
        code = main(
            [
                "simulate",
                "adversarial_cycle",
                "--threads",
                "4",
                "--hbm-slots",
                "32",
                "--param",
                "pages=16",
                "--param",
                "repeats=2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "thm4",
                "--scale",
                "smoke",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "thm4.csv").exists()
        assert (tmp_path / "thm4.txt").exists()
        assert "[PASS]" in capsys.readouterr().out

    def test_profile_prints_locality(self, capsys):
        code = main(
            [
                "profile",
                "adversarial_cycle",
                "--param",
                "pages=16",
                "--param",
                "repeats=3",
                "--capacities",
                "8,16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert "reuse distance" in out

    SIMULATE_ARGV = [
        "simulate",
        "adversarial_cycle",
        "--threads",
        "4",
        "--hbm-slots",
        "32",
        "--param",
        "pages=16",
        "--param",
        "repeats=2",
    ]

    def test_simulate_engine_flag_output_identical(self, capsys):
        outputs = {}
        for engine in ("reference", "fast", "auto"):
            assert main(self.SIMULATE_ARGV + ["--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["reference"] == outputs["fast"] == outputs["auto"]

    def test_simulate_engine_fast_rejects_unsupported(self):
        argv = self.SIMULATE_ARGV + ["--replacement", "clock", "--engine", "fast"]
        with pytest.raises(ValueError, match="fast"):
            main(argv)

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(self.SIMULATE_ARGV + ["--engine", "warp"])

    def test_run_engine_flags_restore_defaults(self, capsys):
        from repro.analysis.sweep import _RESULT_CACHE_DEFAULT
        from repro.core import default_engine

        assert default_engine() == "auto"
        code = main(
            ["run", "thm4", "--engine", "reference", "--no-result-cache"]
        )
        assert code == 0
        assert "[PASS]" in capsys.readouterr().out
        # module-level defaults must be restored after the command
        assert default_engine() == "auto"
        from repro.analysis import sweep as sweep_mod

        assert sweep_mod._RESULT_CACHE_DEFAULT is _RESULT_CACHE_DEFAULT is True

    def test_run_exit_code_on_failed_checks(self, monkeypatch, capsys):
        from repro.experiments import registry
        from repro.experiments.base import ExperimentOutput

        def fake(scale="smoke", processes=None, cache_dir=None, seed=0):
            return ExperimentOutput(
                experiment_id="thm4",
                title="fake",
                scale=scale,
                rows=[],
                text="",
                checks={"doomed": False},
            )

        monkeypatch.setitem(registry.EXPERIMENTS, "thm4", (fake, "fake"))
        assert main(["run", "thm4"]) == 1
        assert "FAILED shape checks" in capsys.readouterr().err
