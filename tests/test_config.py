"""Tests for repro.core.config."""

import pickle

import pytest

from repro.core import ARBITRATION_POLICIES, REPLACEMENT_POLICIES, SimulationConfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = SimulationConfig(hbm_slots=100)
        assert cfg.channels == 1
        assert cfg.replacement == "lru"
        assert cfg.arbitration == "fifo"
        assert cfg.protect_pending is True

    @pytest.mark.parametrize("k", [0, -1, -100])
    def test_rejects_bad_hbm_slots(self, k):
        with pytest.raises(ValueError, match="hbm_slots"):
            SimulationConfig(hbm_slots=k)

    @pytest.mark.parametrize("q", [0, -3])
    def test_rejects_bad_channels(self, q):
        with pytest.raises(ValueError, match="channels"):
            SimulationConfig(hbm_slots=10, channels=q)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError, match="replacement"):
            SimulationConfig(hbm_slots=10, replacement="magic")

    def test_rejects_unknown_arbitration(self):
        with pytest.raises(ValueError, match="arbitration"):
            SimulationConfig(hbm_slots=10, arbitration="magic")

    def test_rejects_bad_remap_period(self):
        with pytest.raises(ValueError, match="remap_period"):
            SimulationConfig(hbm_slots=10, remap_period=0)

    def test_rejects_bad_timeline_stride(self):
        with pytest.raises(ValueError, match="timeline_stride"):
            SimulationConfig(hbm_slots=10, timeline_stride=0)

    def test_rejects_bad_max_ticks(self):
        with pytest.raises(ValueError, match="max_ticks"):
            SimulationConfig(hbm_slots=10, max_ticks=0)

    @pytest.mark.parametrize("knob", ["blacklist_threshold", "blacklist_clear_interval"])
    def test_rejects_bad_blacklist_knobs(self, knob):
        with pytest.raises(ValueError, match="blacklist"):
            SimulationConfig(hbm_slots=10, **{knob: 0})

    @pytest.mark.parametrize("name", REPLACEMENT_POLICIES)
    def test_all_registered_replacements_accepted(self, name):
        assert SimulationConfig(hbm_slots=10, replacement=name).replacement == name

    @pytest.mark.parametrize("name", ARBITRATION_POLICIES)
    def test_all_registered_arbitrations_accepted(self, name):
        assert SimulationConfig(hbm_slots=10, arbitration=name).arbitration == name


class TestRoundTrips:
    def test_replace_returns_modified_copy(self):
        cfg = SimulationConfig(hbm_slots=100)
        other = cfg.replace(channels=4)
        assert other.channels == 4
        assert cfg.channels == 1  # original untouched

    def test_replace_validates(self):
        cfg = SimulationConfig(hbm_slots=100)
        with pytest.raises(ValueError):
            cfg.replace(channels=0)

    def test_dict_round_trip(self):
        cfg = SimulationConfig(
            hbm_slots=64,
            channels=3,
            arbitration="dynamic_priority",
            remap_period=640,
            seed=7,
        )
        assert SimulationConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_ignores_unknown_keys(self):
        cfg = SimulationConfig.from_dict({"hbm_slots": 5, "bogus": 1})
        assert cfg.hbm_slots == 5

    def test_hashable_and_picklable(self):
        cfg = SimulationConfig(hbm_slots=64, seed=3)
        assert hash(cfg) == hash(cfg.replace())
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_blacklist_knobs_elided_at_defaults(self):
        # Cache-warmness contract: configs that never touch the
        # late-added blacklist knobs must serialize exactly as they did
        # before the knobs existed, so historical result-cache keys
        # (hashes of to_dict) are unchanged.
        d = SimulationConfig(hbm_slots=64, arbitration="blacklist").to_dict()
        assert "blacklist_threshold" not in d
        assert "blacklist_clear_interval" not in d

    def test_blacklist_knobs_serialized_when_set(self):
        cfg = SimulationConfig(
            hbm_slots=64,
            arbitration="blacklist",
            blacklist_threshold=2,
            blacklist_clear_interval=37,
        )
        d = cfg.to_dict()
        assert d["blacklist_threshold"] == 2
        assert d["blacklist_clear_interval"] == 37
        assert SimulationConfig.from_dict(d) == cfg
