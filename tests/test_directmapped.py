"""Tests for repro.core.directmapped (Lemma 1 / Theorem 4 machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directmapped import (
    DirectMappedCache,
    TransformedCacheSimulator,
    TwoUniversalHash,
    concurrent_front_insert,
    simulate_fully_associative,
    transform_overhead,
)


class TestTwoUniversalHash:
    def test_range(self):
        h = TwoUniversalHash(16, np.random.default_rng(0))
        assert all(0 <= h(x) < 16 for x in range(1000))

    def test_deterministic_per_instance(self):
        h = TwoUniversalHash(16, np.random.default_rng(0))
        assert h(12345) == h(12345)

    def test_distributes_roughly_uniformly(self):
        h = TwoUniversalHash(8, np.random.default_rng(1))
        counts = np.bincount([h(x) for x in range(8000)], minlength=8)
        assert counts.min() > 700  # expectation 1000

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            TwoUniversalHash(0, np.random.default_rng(0))


class TestDirectMappedCache:
    def test_hit_after_install(self):
        cache = DirectMappedCache(8, rng=np.random.default_rng(0))
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_conflicts_evict(self):
        cache = DirectMappedCache(1, rng=np.random.default_rng(0))
        cache.access(1)
        cache.access(2)  # must evict 1 (single slot)
        assert cache.access(1) is False

    def test_reset_counters(self):
        cache = DirectMappedCache(4, rng=np.random.default_rng(0))
        cache.access(1)
        cache.reset_counters()
        assert cache.hits == cache.misses == 0


class TestFullyAssociativeReference:
    def test_lru_miss_count(self):
        # 0 1 2 0 with k=2: misses 0,1,2 then 0 again (evicted) -> 4
        hits, misses = simulate_fully_associative([0, 1, 2, 0], 2, "lru")
        assert (hits, misses) == (0, 4)

    def test_fifo_differs_from_lru(self):
        # FIFO does not refresh 0 on reuse
        trace = [0, 1, 0, 2, 0]
        lru = simulate_fully_associative(trace, 2, "lru")
        fifo = simulate_fully_associative(trace, 2, "fifo")
        assert lru[0] > fifo[0]

    def test_bad_replacement(self):
        with pytest.raises(ValueError):
            simulate_fully_associative([1], 2, "clock")


class TestLemma1Transformation:
    def test_logical_behaviour_matches_original(self):
        """replay() raises if the transformed hit/miss sequence diverges,
        so a clean run is the assertion."""
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 100, size=3000)
        report = transform_overhead(trace, capacity=32, seed=1)
        assert report.original_hits + report.original_misses == 3000

    @pytest.mark.parametrize("replacement", ["lru", "fifo"])
    def test_constant_miss_overhead(self, replacement):
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 128, size=4000)
        report = transform_overhead(
            trace, capacity=48, replacement=replacement, seed=0
        )
        assert report.miss_overhead < 4.0
        assert report.access_overhead < 30.0

    def test_overhead_does_not_grow_with_capacity(self):
        rng = np.random.default_rng(3)
        overheads = []
        for k in (16, 64, 256):
            trace = rng.integers(0, 4 * k, size=4000)
            overheads.append(transform_overhead(trace, k, seed=0).access_overhead)
        assert max(overheads) < 2.0 * min(overheads)

    def test_chain_lengths_stay_short(self):
        rng = np.random.default_rng(4)
        trace = rng.integers(0, 512, size=5000)
        sim = TransformedCacheSimulator(128, seed=0)
        sim.replay(trace)
        assert sim.max_chain <= 12  # 2-universal expectation O(1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TransformedCacheSimulator(0)
        with pytest.raises(ValueError):
            TransformedCacheSimulator(4, replacement="clock")
        with pytest.raises(ValueError):
            TransformedCacheSimulator(4, slack=1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=300), st.integers(2, 16))
    def test_random_traces_never_diverge(self, trace, capacity):
        transform_overhead(np.asarray(trace), capacity, seed=5)


class TestTheorem4:
    def test_empty_insert(self):
        items, steps = concurrent_front_insert([1, 2], [])
        assert items == [1, 2] and steps == 0

    def test_order_preserved(self):
        items, _ = concurrent_front_insert([4, 5], [1, 2, 3])
        assert items == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("x", [1, 2, 3, 8, 100, 1024])
    def test_steps_logarithmic(self, x):
        _, steps = concurrent_front_insert([], list(range(x)))
        assert steps <= math.ceil(math.log2(max(x, 2))) + 3
