"""Integration tests for the example scripts.

The two fast examples run end to end; the longer studies (spgemm_study,
sort_fairness, adversarial_fifo — minutes of simulation) are
compile-checked here and exercised by the benchmark suite's equivalent
experiments.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {p.name for p in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "spgemm_study.py",
        "sort_fairness.py",
        "adversarial_fifo.py",
        "knl_validation.py",
        "hbm_sizing.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", ["quickstart.py", "knl_validation.py"])
def test_fast_examples_run(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_quickstart_story_holds():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = completed.stdout
    assert "slower than Priority" in out
    assert "fifo" in out and "dynamic_priority" in out
