"""Tests for adversarial and synthetic trace families and workload I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    WorkloadCache,
    adversarial_cycle_workload,
    cyclic_trace,
    fifo_adversarial_hbm_slots,
    load_workload_npz,
    load_workload_text,
    make_workload,
    phased_trace,
    random_trace,
    save_workload_npz,
    save_workload_text,
    stream_trace,
    strided_trace,
    theorem2_workload,
    zipf_trace,
)


class TestAdversarial:
    def test_cyclic_trace_shape(self):
        t = cyclic_trace(pages=4, repeats=3)
        assert list(t.pages) == [0, 1, 2, 3] * 3
        assert t.unique_pages == 4

    def test_cyclic_trace_offset(self):
        t = cyclic_trace(pages=3, repeats=1, offset=10)
        assert list(t.pages) == [10, 11, 12]

    def test_cyclic_rejects_bad_params(self):
        with pytest.raises(ValueError):
            cyclic_trace(0, 1)
        with pytest.raises(ValueError):
            cyclic_trace(1, 0)

    def test_dataset3_default_shape(self):
        wl = adversarial_cycle_workload(threads=3)
        assert wl.num_threads == 3
        assert wl.lengths == (25600,) * 3
        assert wl.total_unique_pages == 3 * 256

    def test_hbm_sizing_quarter(self):
        assert fifo_adversarial_hbm_slots(8, pages=256) == 8 * 256 // 4
        with pytest.raises(ValueError):
            fifo_adversarial_hbm_slots(8, fraction=0.0)

    def test_theorem2_workload(self):
        wl = theorem2_workload(threads=4, pages_per_thread=16, repeats=5)
        assert wl.total_unique_pages == 64
        assert wl.lengths == (80,) * 4


class TestSynthetic:
    def test_random_trace_range(self):
        t = random_trace(500, 16, np.random.default_rng(0))
        assert t.pages.min() >= 0 and t.pages.max() < 16

    def test_zipf_trace_is_skewed(self):
        t = zipf_trace(5000, 100, np.random.default_rng(0), s=1.5)
        counts = np.bincount(t.pages, minlength=100)
        top = np.sort(counts)[::-1]
        assert top[0] > 5 * max(top[50], 1)  # hot page dominates the tail

    def test_zipf_bad_exponent(self):
        with pytest.raises(ValueError):
            zipf_trace(10, 10, np.random.default_rng(0), s=0)

    def test_stream_trace(self):
        t = stream_trace(7, 3)
        assert list(t.pages) == [0, 1, 2, 0, 1, 2, 0]

    def test_strided_trace(self):
        t = strided_trace(4, 10, 3)
        assert list(t.pages) == [0, 3, 6, 9]
        with pytest.raises(ValueError):
            strided_trace(4, 10, 0)

    def test_phased_trace_shifts_working_set(self):
        t = phased_trace(3, 100, 10, np.random.default_rng(0), overlap=0.0)
        first = set(t.pages[:100].tolist())
        last = set(t.pages[200:].tolist())
        assert first.isdisjoint(last)

    def test_phased_overlap_validates(self):
        with pytest.raises(ValueError):
            phased_trace(2, 10, 10, np.random.default_rng(0), overlap=1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(["random", "zipf", "stream", "stride"]),
        st.integers(1, 4),
        st.integers(0, 3),
    )
    def test_factory_families_build_and_are_disjoint(self, kind, threads, seed):
        wl = make_workload(kind, threads=threads, seed=seed, length=50, pages=8)
        sets = [set(t.tolist()) for t in wl.traces]
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                assert sets[i].isdisjoint(sets[j])


class TestIO:
    def test_npz_round_trip(self, tmp_path):
        wl = make_workload("random", threads=3, seed=7, length=40, pages=6)
        path = tmp_path / "wl.npz"
        save_workload_npz(wl, path)
        loaded = load_workload_npz(path)
        assert loaded.name == wl.name
        assert loaded.num_threads == 3
        for a, b in zip(loaded.traces, wl.traces):
            assert np.array_equal(a, b)
        assert [t.source for t in loaded.source_traces] == [
            t.source for t in wl.source_traces
        ]

    def test_npz_round_trip_preserves_shared_pages(self, tmp_path):
        # regression: the namespace flag was not persisted, so reloading
        # a non-disjoint workload renumbered its threads into disjoint
        # blocks and silently destroyed the page sharing
        wl = make_workload(
            "shared",
            threads=4,
            seed=3,
            length=60,
            private_pages=8,
            shared_pages=8,
            shared_fraction=0.5,
        )
        path = tmp_path / "shared.npz"
        save_workload_npz(wl, path)
        loaded = load_workload_npz(path)
        assert not loaded.namespaced
        for a, b in zip(loaded.traces, wl.traces):
            assert np.array_equal(a, b)
        shared = set(loaded.traces[0].tolist()) & set(loaded.traces[1].tolist())
        assert shared  # threads still overlap after the round trip

    def test_text_round_trip(self, tmp_path):
        wl = make_workload("stream", threads=2, length=10, pages=4)
        path = tmp_path / "wl.txt"
        save_workload_text(wl, path)
        loaded = load_workload_text(path)
        assert loaded.num_threads == 2
        for a, b in zip(loaded.traces, wl.traces):
            assert np.array_equal(a, b)

    def test_text_headerless_single_thread(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("3\n1\n2\n")
        wl = load_workload_text(path)
        assert wl.num_threads == 1
        assert len(wl.traces[0]) == 3

    def test_text_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError, match="no traces"):
            load_workload_text(path)

    def test_cache_generates_then_hits(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        a = cache.get("random", threads=2, seed=1, length=20, pages=5)
        assert cache.path_for("random", 2, seed=1, length=20, pages=5).exists()
        b = cache.get("random", threads=2, seed=1, length=20, pages=5)
        for ta, tb in zip(a.traces, b.traces):
            assert np.array_equal(ta, tb)

    def test_cache_distinguishes_params(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        p1 = cache.path_for("random", 2, seed=1, length=20, pages=5)
        p2 = cache.path_for("random", 2, seed=1, length=21, pages=5)
        assert p1 != p2

    def test_cache_clear(self, tmp_path):
        cache = WorkloadCache(tmp_path)
        cache.get("random", threads=1, seed=0, length=5, pages=2)
        assert cache.clear() == 1
        assert cache.clear() == 0


class TestWorkFactors:
    def test_sort_work_factors_scale_traces(self):
        wl = make_workload(
            "sort", threads=3, seed=0, n=300, work_factors=[1.0, 0.5, 0.25]
        )
        lengths = wl.lengths
        assert lengths[0] > lengths[1] > lengths[2]

    def test_work_factors_length_checked(self):
        with pytest.raises(ValueError, match="work_factors"):
            make_workload("sort", threads=3, n=100, work_factors=[1.0])
