"""Tests for campaign telemetry: the metrics registry and its merge
semantics, worker->parent piggybacking, the JSONL event stream,
heartbeat files, cross-worker warn-once forwarding, Chrome trace
merging, and bench-regression tracking."""

import io
import itertools
import json
import os
import time

import pytest

from repro.analysis import SweepJob, SweepRunner, WorkloadSpec
from repro.analysis import benchtrend
from repro.analysis.telemetry import (
    CampaignTelemetry,
    HeartbeatWriter,
    default_telemetry,
    set_telemetry_defaults,
)
from repro.core import SimulationConfig
from repro.obs import log as obs_log
from repro.obs import merge_chrome_traces
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    phase,
    record_phase,
    render_prom,
    set_active_registry,
    write_prom,
)

SPEC = WorkloadSpec.make("adversarial_cycle", threads=4, seed=0, pages=16, repeats=3)
CONFIG = SimulationConfig(hbm_slots=32)


def jobs(n=3):
    return [
        SweepJob(
            workload=SPEC,
            config=SimulationConfig(hbm_slots=32, channels=c + 1),
            tag=f"j{c}",
        )
        for c in range(n)
    ]


@pytest.fixture(autouse=True)
def _clean_warn_state():
    obs_log.reset_warn_once()
    yield
    obs_log.reset_warn_once()


class TestRegistry:
    def test_counter_labels_and_negative_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs", "jobs done")
        c.inc(2, status="ok")
        c.inc(1, status="ok")
        c.inc(5, status="bad")
        snap = reg.snapshot()["families"]["jobs"]
        values = {tuple(map(tuple, k)): v for k, v in snap["series"]}
        assert values[(("status", "ok"),)] == 3
        assert values[(("status", "bad"),)] == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_merges_as_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth", "queue depth").set(3)
        b.gauge("depth", "queue depth").set(7)
        a.merge(b.snapshot())
        assert a.snapshot()["families"]["depth"]["series"] == [[[], 7.0]]

    def test_histogram_bucket_stability(self):
        reg = MetricsRegistry()
        reg.histogram("lat", "latency", bounds=(0.1, 1.0))
        # same name, different bounds -> identity error, not silent skew
        with pytest.raises(ValueError):
            reg.histogram("lat", "latency", bounds=(0.2, 1.0))
        other = MetricsRegistry()
        other.histogram("lat", "latency", bounds=(0.5,)).observe(0.3)
        with pytest.raises(ValueError):
            reg.merge(other.snapshot())

    def test_merge_is_order_independent(self):
        def make(seed):
            reg = MetricsRegistry()
            reg.counter("c", "h").inc(seed, worker=str(seed % 2))
            reg.gauge("g", "h").set(seed * 1.5)
            h = reg.histogram("hist", "h", bounds=(1.0, 10.0))
            h.observe(seed)
            h.observe(seed * 3)
            return reg.snapshot()

        snaps = [make(s) for s in (1, 2, 5)]
        merged = []
        for perm in itertools.permutations(snaps):
            reg = MetricsRegistry()
            for snap in perm:
                reg.merge(snap)
            merged.append(reg.snapshot())
        assert all(m == merged[0] for m in merged[1:])

    def test_merge_accepts_registry_and_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", "h").inc(1)
        b.counter("c", "h").inc(2)
        a.merge(b)
        a.merge(b.snapshot())
        assert a.snapshot()["families"]["c"]["series"] == [[[], 5.0]]

    def test_prom_rendering(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "jobs").inc(4, status="ok")
        reg.gauge("repro_eta_seconds", "eta").set(1.5)
        reg.histogram("repro_phase_seconds", "phases", bounds=(0.1, 1.0)).observe(
            0.05, phase="reduce"
        )
        text = render_prom(reg)
        assert "# HELP repro_jobs_total jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{status="ok"} 4.0' in text
        assert 'repro_phase_seconds_bucket{phase="reduce",le="+Inf"} 1' in text
        assert 'repro_phase_seconds_count{phase="reduce"} 1' in text
        assert 'repro_phase_seconds_sum{phase="reduce"}' in text
        assert text == render_prom(reg)  # deterministic
        out = write_prom(reg, tmp_path / "m.prom")
        assert out.read_text(encoding="utf-8") == text
        assert not list(tmp_path.glob("*.tmp*"))  # atomic write left no turds


class TestActiveRegistry:
    def test_phase_hooks_are_inert_without_registry(self):
        assert active_registry() is None
        record_phase("simulate", 0.1)  # must not raise
        with phase("reduce"):
            pass

    def test_phase_records_into_active_registry(self):
        reg = MetricsRegistry()
        prev = set_active_registry(reg)
        try:
            record_phase("simulate", 0.25)
            with phase("reduce"):
                pass
        finally:
            set_active_registry(prev)
        fam = reg.snapshot()["families"]["repro_phase_seconds"]
        phases = {dict(k)["phase"] for k, _ in fam["series"]}
        assert phases == {"simulate", "reduce"}

    def test_set_active_registry_returns_previous(self):
        reg = MetricsRegistry()
        prev = set_active_registry(reg)
        assert set_active_registry(prev) is reg


class TestWarnForwarding:
    def test_capture_buffers_instead_of_logging(self, monkeypatch):
        monkeypatch.setattr(obs_log, "_CAPTURE", [])
        logger = obs_log.get_logger("sweep")
        assert obs_log.warn_once(logger, ("k", 1), "bad point %d", 7)
        assert not obs_log.warn_once(logger, ("k", 1), "bad point %d", 7)
        drained = obs_log.drain_captured_warnings()
        assert drained == [
            {"logger": "repro.sweep", "key": repr(("k", 1)), "message": "bad point 7"}
        ]
        assert obs_log.drain_captured_warnings() == []

    def test_forward_dedups_across_workers(self):
        # two workers (separate processes, separate _WARNED sets) both
        # report the same data-quality problem; the parent prints it once
        worker_a = [{"logger": "repro.stats", "key": "('dropped', 3)", "message": "m"}]
        worker_b = [{"logger": "repro.stats", "key": "('dropped', 3)", "message": "m"}]
        assert obs_log.forward_warnings(worker_a) == 1
        assert obs_log.forward_warnings(worker_b) == 0
        other = [{"logger": "repro.stats", "key": "('dropped', 4)", "message": "m2"}]
        assert obs_log.forward_warnings(other) == 1


class TestHeartbeat:
    def test_heartbeat_file_lifecycle(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "h").inc(1)
        hb = HeartbeatWriter(
            tmp_path, tag="jobX", attempt=2, registry=reg, interval_s=0.05
        ).start()
        path = tmp_path / f"hb-{os.getpid()}.json"
        deadline = time.time() + 5.0
        while not path.is_file() and time.time() < deadline:
            time.sleep(0.02)
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert doc["tag"] == "jobX"
        assert doc["attempt"] == 2
        assert doc["elapsed_s"] >= 0
        assert doc["metrics"]["families"]["c"]["series"] == [[[], 1.0]]
        hb.stop()
        assert not path.exists()

    def test_scan_inflight_ignores_stale_files(self, tmp_path):
        tele = CampaignTelemetry(stream=io.StringIO())
        from pathlib import Path

        spool = Path(tele.spool_dir)
        fresh = spool / "hb-1.json"
        stale = spool / "hb-2.json"
        fresh.write_text(json.dumps({"tag": "a", "pid": 1}), encoding="utf-8")
        stale.write_text(json.dumps({"tag": "b", "pid": 2}), encoding="utf-8")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        tags = [d["tag"] for d in tele.scan_inflight()]
        assert tags == ["a"]
        tele.close()


class TestCampaignTelemetry:
    def _run(self, tmp_path, telemetry, cache_sub, n=3):
        runner = SweepRunner(
            processes=1, cache_dir=tmp_path / cache_sub, telemetry=telemetry
        )
        return runner.run(jobs(n), label="tele-test")

    def test_event_stream_monotone_with_terminal_event(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        tele = CampaignTelemetry(
            events_out=events_path, progress_every=1, stream=io.StringIO()
        )
        self._run(tmp_path, tele, "cache")
        tele.close()
        events = [
            json.loads(line)
            for line in events_path.read_text(encoding="utf-8").splitlines()
        ]
        assert events[0]["event"] == "campaign.start"
        assert events[0]["total"] == 3
        assert events[-1]["event"] == "campaign.end"
        assert events[-1]["simulated"] == 3
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        progress = [e for e in events if e["event"] == "campaign.progress"]
        done = [e["done"] for e in progress]
        assert done == sorted(done)

    def test_metrics_snapshot_written(self, tmp_path):
        metrics_path = tmp_path / "m.prom"
        tele = CampaignTelemetry(metrics_out=metrics_path, stream=io.StringIO())
        self._run(tmp_path, tele, "cache")
        tele.close()
        text = metrics_path.read_text(encoding="utf-8")
        assert 'repro_campaign_jobs_total{status="simulated"} 3.0' in text
        assert "repro_campaign_throughput_jobs_per_s" in text
        assert "repro_campaign_cache_hit_rate" in text
        for ph in ("cache_probe", "simulate", "workload_build"):
            assert f'phase="{ph}"' in text

    def test_live_line_silent_on_non_tty(self, tmp_path):
        stream = io.StringIO()
        tele = CampaignTelemetry(live=True, stream=stream)
        self._run(tmp_path, tele, "cache")
        tele.close()
        assert stream.getvalue() == ""

    def test_cache_hits_reported_on_replay(self, tmp_path):
        self._run(tmp_path, None, "cache")
        events_path = tmp_path / "events.jsonl"
        tele = CampaignTelemetry(events_out=events_path, stream=io.StringIO())
        self._run(tmp_path, tele, "cache")
        tele.close()
        events = [
            json.loads(line)
            for line in events_path.read_text(encoding="utf-8").splitlines()
        ]
        assert events[0]["cache_hits"] == 3
        assert events[0]["pending"] == 0


def _comparable_rows(records):
    rows = []
    for record in records:
        row = record.row()
        row.pop("wall_time_s")  # timing noise, differs run to run
        rows.append(row)
    return rows


def _cache_entries(cache_dir):
    """Result-cache entries as {filename: parsed json}.

    Wall-clock fields differ between *any* two runs (telemetry or not),
    so they are reduced to their key structure: values dropped, key
    sets kept — a telemetry leak would still show up as an extra key.
    """
    entries = {}
    for path in sorted((cache_dir / "results").rglob("*.json")):
        doc = json.loads(path.read_text(encoding="utf-8"))
        doc["wall_time_s"] = "<wall>"
        timings = doc.get("manifest", {}).get("timings")
        if timings is not None:
            doc["manifest"]["timings"] = sorted(timings)
        entries[path.name] = doc
    return entries


class TestTelemetryIsInert:
    """Telemetry may observe a campaign but never change its outputs."""

    def test_records_and_cache_identical_with_and_without(self, tmp_path):
        tele = CampaignTelemetry(
            metrics_out=tmp_path / "m.prom",
            events_out=tmp_path / "e.jsonl",
            stream=io.StringIO(),
        )
        on = SweepRunner(
            processes=1, cache_dir=tmp_path / "on", telemetry=tele
        ).run(jobs())
        tele.close()
        off = SweepRunner(processes=1, cache_dir=tmp_path / "off").run(jobs())

        assert _comparable_rows(on) == _comparable_rows(off)
        entries_on = _cache_entries(tmp_path / "on")
        entries_off = _cache_entries(tmp_path / "off")
        assert entries_on.keys() == entries_off.keys()  # same cache keys
        assert entries_on == entries_off
        # no telemetry leaked into the cached documents
        for doc in entries_on.values():
            assert "metrics" not in doc
            assert "warnings" not in doc

    def test_pool_piggyback_matches_sequential(self, tmp_path):
        tele = CampaignTelemetry(metrics_out=tmp_path / "m.prom", stream=io.StringIO())
        pooled = SweepRunner(
            processes=2, cache_dir=tmp_path / "pool", telemetry=tele
        ).run(jobs())
        snapshot = tele.registry.snapshot()
        tele.close()
        solo = SweepRunner(processes=1, cache_dir=tmp_path / "solo").run(jobs())
        assert _comparable_rows(pooled) == _comparable_rows(solo)
        assert _cache_entries(tmp_path / "pool") == _cache_entries(tmp_path / "solo")
        # worker-side phases crossed the process boundary via piggyback
        fam = snapshot["families"]["repro_phase_seconds"]
        phases = {dict(k)["phase"] for k, _ in fam["series"]}
        assert {"workload_build", "simulate"} <= phases
        jobs_fam = snapshot["families"]["repro_campaign_jobs_total"]
        assert [[[["status", "simulated"]], 3.0]] == jobs_fam["series"]

    def test_replay_without_telemetry_reads_telemetry_written_cache(self, tmp_path):
        tele = CampaignTelemetry(metrics_out=tmp_path / "m.prom", stream=io.StringIO())
        cold = SweepRunner(
            processes=1, cache_dir=tmp_path / "c", telemetry=tele
        ).run(jobs())
        tele.close()
        warm = SweepRunner(processes=1, cache_dir=tmp_path / "c").run(jobs())
        assert all(r.cached for r in warm)
        assert all(not r.batched for r in warm)  # replays never claim lockstep
        cold_rows = _comparable_rows(cold)
        warm_rows = _comparable_rows(warm)
        for row in cold_rows + warm_rows:
            row.pop("cached")
            row.pop("batched")
        assert cold_rows == warm_rows


class TestTelemetryDefaults:
    def test_defaults_roundtrip_and_global_sink(self, tmp_path):
        assert default_telemetry() is None
        prev = set_telemetry_defaults(
            metrics_out=tmp_path / "m.prom", progress_every=3
        )
        try:
            tele = default_telemetry()
            assert tele is not None
            assert tele.progress_every == 3
            assert default_telemetry() is tele  # cached global sink
        finally:
            set_telemetry_defaults(**prev)
        assert default_telemetry() is None

    def test_progress_every_validated(self):
        with pytest.raises(ValueError):
            set_telemetry_defaults(progress_every=0)


def _mini_trace(tmp_path, name, source, value):
    doc = {
        "traceEvents": [
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "hbm-model"}},
            {"ph": "C", "pid": 0, "tid": 0, "ts": 0, "name": "HBM occupancy",
             "args": {"value": value}},
            {"ph": "X", "pid": 1, "tid": 2, "ts": 5, "dur": 3,
             "name": "DRAM stall", "cat": "stall", "args": {"ticks": 3}},
        ],
        "displayTimeUnit": "ms",
        "otherData": {"source": source, "samples": 1},
    }
    path = tmp_path / name / "trace.json"
    path.parent.mkdir()
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


class TestTraceMerge:
    def test_merge_remaps_pids_and_names_tracks(self, tmp_path):
        a = _mini_trace(tmp_path, "a", "job-alpha", 1)
        b = _mini_trace(tmp_path, "b", "job-beta", 2)
        out = merge_chrome_traces([a, (b, "tagged")], tmp_path / "merged.json")
        doc = json.loads(out.read_text(encoding="utf-8"))
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) == 4  # two pids per input, all disjoint
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "process_name"
        ]
        assert names == ["job-alpha: hbm-model", "tagged: hbm-model"]
        tracks = [s["track"] for s in doc["otherData"]["merged"]]
        assert tracks == ["job-alpha", "tagged"]

    def test_merge_prefers_sibling_manifest_name(self, tmp_path):
        a = _mini_trace(tmp_path, "a", "fallback-source", 1)
        (a.parent / "manifest.json").write_text(
            json.dumps({"workload": {"name": "spgemm-x16"}}), encoding="utf-8"
        )
        out = merge_chrome_traces([a], tmp_path / "merged.json")
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["otherData"]["merged"][0]["track"] == "spgemm-x16"

    def test_merge_requires_inputs(self, tmp_path):
        with pytest.raises(ValueError):
            merge_chrome_traces([], tmp_path / "merged.json")


BASELINE = {
    "schema": benchtrend.BASELINE_SCHEMA,
    "updated": "",
    "suites": {
        "engine": {
            "miss_bound.ff_speedup": 8.0,
            "miss_bound.ff_on_s": 0.05,
            "hit_heavy.ff_speedup": 10.0,
        },
        "obs": {"fast.overhead_fraction": 0.01},
        "sweep": {"cache_speedup": 1000.0, "dispatch_speedup": 1.2},
    },
}


class TestBenchTrend:
    def test_flatten_drops_non_numeric_and_bools(self):
        flat = benchtrend.flatten_metrics(
            {"a": 1, "b": {"c": 2.5, "d": "text"}, "e": True}
        )
        assert flat == {"a": 1.0, "b.c": 2.5}

    def test_within_tolerance_is_ok(self):
        current = {
            "engine": {
                "miss_bound.ff_speedup": 6.5,
                "miss_bound.ff_on_s": 0.06,
                "hit_heavy.ff_speedup": 8.5,
            }
        }
        diff = benchtrend.compare(current, BASELINE, tolerance=0.25)
        by_metric = {(e.suite, e.metric): e.status for e in diff.entries}
        assert by_metric[("engine", "miss_bound.ff_speedup")] == "ok"
        assert by_metric[("engine", "hit_heavy.ff_speedup")] == "ok"
        assert by_metric[("engine", "miss_bound.ff_on_s")] == "info"  # times never gate
        assert diff.ok

    def test_synthetic_slowdown_is_a_regression(self):
        # the acceptance scenario: a 2x slowdown halves the speedup
        current = {"engine": {"miss_bound.ff_speedup": 4.0}}
        diff = benchtrend.compare(current, BASELINE, tolerance=0.25)
        assert [e.metric for e in diff.regressions] == ["miss_bound.ff_speedup"]
        assert not diff.ok

    def test_improvement_and_ceiling_modes(self):
        current = {
            "engine": {"miss_bound.ff_speedup": 12.0},
            "obs": {"fast.overhead_fraction": 0.2},
        }
        diff = benchtrend.compare(current, BASELINE, tolerance=0.25)
        by_metric = {(e.suite, e.metric): e.status for e in diff.entries}
        assert by_metric[("engine", "miss_bound.ff_speedup")] == "improved"
        assert by_metric[("obs", "fast.overhead_fraction")] == "regression"

    def test_missing_suite_never_fails_the_gate(self):
        diff = benchtrend.compare({}, BASELINE, tolerance=0.25)
        assert diff.ok
        assert {e.status for e in diff.entries} == {"not-measured"}

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            benchtrend.compare({}, BASELINE, tolerance=1.5)

    def test_record_preserves_unmeasured_suites(self, tmp_path):
        path = tmp_path / "baseline.json"
        benchtrend.record({"engine": {"ff_speedup": 7.0}}, path, updated="t0")
        benchtrend.record({"sweep": {"cache_speedup": 900.0}}, path, updated="t1")
        doc = benchtrend.load_baseline(path)
        assert doc["suites"]["engine"]["ff_speedup"] == 7.0
        assert doc["suites"]["sweep"]["cache_speedup"] == 900.0
        assert doc["updated"] == "t1"

    def test_load_baseline_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "bogus/v9"}), encoding="utf-8")
        with pytest.raises(ValueError):
            benchtrend.load_baseline(path)

    def test_load_bench_files_first_dir_wins(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        (tmp_path / "a" / "BENCH_engine.json").write_text(
            json.dumps({"ff_speedup": 5.0}), encoding="utf-8"
        )
        (tmp_path / "b" / "BENCH_engine.json").write_text(
            json.dumps({"ff_speedup": 9.0}), encoding="utf-8"
        )
        current = benchtrend.load_bench_files([tmp_path / "a", tmp_path / "b"])
        assert current == {"engine": {"ff_speedup": 5.0}}


class TestEventSchemaV2:
    """v2 events carry the campaign-durability fields; v1 streams stay
    readable through :func:`iter_campaign_events`."""

    def _events(self, path):
        from repro.analysis.telemetry import iter_campaign_events

        return list(iter_campaign_events(path))

    def test_start_and_end_carry_durability_fields(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        tele = CampaignTelemetry(events_out=events_path, stream=io.StringIO())
        runner = SweepRunner(
            processes=1, cache_dir=tmp_path / "cache", telemetry=tele
        )
        runner.run(jobs(), label="v2-demo")
        tele.close()
        events = self._events(events_path)
        start, end = events[0], events[-1]
        assert start["schema"] == "repro.campaign.events/v2"
        assert start["event"] == "campaign.start"
        assert start["resumed"] == 0
        assert start["shard"] == ""
        assert end["event"] == "campaign.end"
        assert end["campaign_id"] == runner.last_campaign.campaign_id
        assert end["store"] == f"dir:{tmp_path / 'cache' / 'results'}"

    def test_v1_stream_upgraded_with_quiet_defaults(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        lines = [
            {
                "schema": "repro.campaign.events/v1",
                "event": "campaign.start",
                "seq": 0,
                "campaign": "old",
                "total": 3,
            },
            {
                "schema": "repro.campaign.events/v1",
                "event": "campaign.end",
                "seq": 1,
                "campaign": "old",
                "simulated": 3,
            },
        ]
        path.write_text(
            "\n".join(json.dumps(line) for line in lines)
            + "\n"
            + '{"torn": '  # live stream cut mid-write
        )
        start, end = self._events(path)
        assert start["resumed"] == 0 and start["shard"] == ""
        assert end["campaign_id"] == "" and end["store"] == ""

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "alien.jsonl"
        path.write_text(json.dumps({"schema": "alien/v9", "event": "x"}) + "\n")
        with pytest.raises(ValueError):
            self._events(path)
