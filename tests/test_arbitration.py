"""Tests for repro.core.arbitration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbitration import (
    _ARBITRATION_CLASSES,
    ArbitrationPolicy,
    BlacklistingArbitration,
    CyclePriorityArbitration,
    CycleReversePriorityArbitration,
    DynamicPriorityArbitration,
    DynamicPriorityQueueArbitration,
    FIFOArbitration,
    InterleavePriorityArbitration,
    PriorityArbitration,
    RandomArbitration,
    RoundRobinArbitration,
    make_arbitration_policy,
    register_arbitration_policy,
    riffle_permutation,
)

ALL_NAMES = [
    "fifo",
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
    "random",
    "round_robin",
    "blacklist",
    "dpq",
]


def make(name, p=8, T=16, seed=0):
    return make_arbitration_policy(
        name, p, remap_period=T, rng=np.random.default_rng(seed)
    )


class TestFactory:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_builds_each_policy(self, name):
        policy = make(name)
        assert policy.name == name
        assert policy.num_threads == 8

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown arbitration"):
            make_arbitration_policy("nope", 4)

    @pytest.mark.parametrize(
        "name", ["dynamic_priority", "cycle_priority", "interleave_priority"]
    )
    def test_remapping_policies_require_period(self, name):
        with pytest.raises(ValueError, match="remap_period"):
            make_arbitration_policy(name, 4)

    def test_bad_thread_count(self):
        with pytest.raises(ValueError, match="num_threads"):
            FIFOArbitration(0)

    def test_custom_policy_honors_requires_remap_period(self):
        # Regression: the factory used to gate the "requires
        # remap_period" error on a hardcoded name set, so a custom
        # remapping policy silently received remap_period=None and
        # failed deep in its constructor instead.
        @register_arbitration_policy
        class _CustomRemapper(FIFOArbitration):
            name = "test_custom_remapper"
            requires_remap_period = True

            def __init__(self, num_threads, remap_period):
                super().__init__(num_threads)
                self.remap_period = remap_period

        try:
            with pytest.raises(ValueError, match="remap_period"):
                make_arbitration_policy("test_custom_remapper", 4)
            policy = make_arbitration_policy(
                "test_custom_remapper", 4, remap_period=12
            )
            assert policy.remap_period == 12
        finally:
            _ARBITRATION_CLASSES.pop("test_custom_remapper", None)

    def test_blacklist_knobs_forwarded(self):
        policy = make_arbitration_policy(
            "blacklist", 4, blacklist_threshold=2, blacklist_clear_interval=9
        )
        assert policy.blacklist_threshold == 2
        assert policy.blacklist_clear_interval == 9

    def test_blacklist_knobs_none_keeps_defaults(self):
        policy = make_arbitration_policy(
            "blacklist", 4, blacklist_threshold=None,
            blacklist_clear_interval=None,
        )
        assert policy.blacklist_threshold == 4
        assert policy.blacklist_clear_interval == 1000


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_enqueue_select_drains(self, name):
        policy = make(name)
        for thread in range(5):
            policy.enqueue(thread)
        assert len(policy) == 5
        granted = policy.select(3)
        assert len(granted) == 3
        assert len(policy) == 2
        granted += policy.select(10)
        assert len(policy) == 0
        assert sorted(granted) == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_select_on_empty_returns_nothing(self, name):
        assert make(name).select(4) == []

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_no_duplicates_across_selects(self, name):
        policy = make(name)
        for thread in range(8):
            policy.enqueue(thread)
        seen = []
        while len(policy):
            seen += policy.select(2)
        assert sorted(seen) == list(range(8))


class TestFIFO:
    def test_arrival_order(self):
        fifo = FIFOArbitration(8)
        for thread in (3, 1, 7, 2):
            fifo.enqueue(thread)
        assert fifo.select(2) == [3, 1]
        fifo.enqueue(5)
        assert fifo.select(3) == [7, 2, 5]


class TestStaticPriority:
    def test_lowest_rank_first(self):
        prio = PriorityArbitration(8)
        for thread in (5, 2, 7, 0):
            prio.enqueue(thread)
        assert prio.select(2) == [0, 2]
        assert prio.select(2) == [5, 7]

    def test_priorities_identity(self):
        prio = PriorityArbitration(4)
        assert list(prio.priorities()) == [0, 1, 2, 3]

    def test_new_high_priority_arrival_preempts(self):
        prio = PriorityArbitration(8)
        prio.enqueue(6)
        prio.enqueue(4)
        prio.enqueue(1)
        assert prio.select(1) == [1]
        prio.enqueue(0)
        assert prio.select(1) == [0]

    def test_begin_tick_without_period_never_remaps(self):
        prio = PriorityArbitration(4)
        for t in range(100):
            prio.begin_tick(t)
        assert prio.remap_count == 0


class TestCyclePriority:
    def test_definition_1_increment_mod_p(self):
        cyc = CyclePriorityArbitration(4, remap_period=10)
        assert list(cyc.priorities()) == [0, 1, 2, 3]
        cyc.remap()
        assert list(cyc.priorities()) == [1, 2, 3, 0]
        cyc.remap()
        assert list(cyc.priorities()) == [2, 3, 0, 1]

    def test_remap_happens_on_period_boundaries(self):
        cyc = CyclePriorityArbitration(4, remap_period=5)
        for t in range(11):
            cyc.begin_tick(t)
        # boundaries at t = 0, 5, 10
        assert cyc.remap_count == 3

    def test_remap_reorders_waiting_threads(self):
        cyc = CyclePriorityArbitration(2, remap_period=100)
        cyc.enqueue(0)
        cyc.enqueue(1)
        cyc.remap()  # thread 1 now rank 0
        assert cyc.select(2) == [1, 0]

    def test_every_thread_reaches_top_within_p_remaps(self):
        p = 6
        cyc = CyclePriorityArbitration(p, remap_period=1)
        tops = set()
        for _ in range(p):
            ranks = cyc.priorities()
            tops.add(int(np.argmin(ranks)))
            cyc.remap()
        assert tops == set(range(p))


class TestCycleReverse:
    def test_decrement_mod_p(self):
        cyc = CycleReversePriorityArbitration(4, remap_period=10)
        cyc.remap()
        assert list(cyc.priorities()) == [3, 0, 1, 2]

    def test_inverse_of_cycle(self):
        fwd = CyclePriorityArbitration(5, remap_period=10)
        rev = CycleReversePriorityArbitration(5, remap_period=10)
        fwd.remap()
        rev.remap()
        combined = rev.priorities()[np.argsort(fwd.priorities())]
        # applying forward then reverse restores identity ranks
        fwd2 = CyclePriorityArbitration(5, remap_period=10)
        fwd2.remap()
        back = (fwd2.priorities() + 4) % 5
        assert list(back) == [0, 1, 2, 3, 4]


class TestDynamicPriority:
    def test_remap_is_a_permutation(self):
        dyn = DynamicPriorityArbitration(16, remap_period=4, rng=np.random.default_rng(3))
        for _ in range(5):
            dyn.remap()
            assert sorted(dyn.priorities()) == list(range(16))

    def test_deterministic_under_seed(self):
        a = DynamicPriorityArbitration(8, remap_period=4, rng=np.random.default_rng(9))
        b = DynamicPriorityArbitration(8, remap_period=4, rng=np.random.default_rng(9))
        for _ in range(4):
            a.remap()
            b.remap()
        assert list(a.priorities()) == list(b.priorities())

    def test_remap_changes_selection_order(self):
        rng = np.random.default_rng(1)
        dyn = DynamicPriorityArbitration(64, remap_period=4, rng=rng)
        for thread in range(64):
            dyn.enqueue(thread)
        dyn.remap()
        order = dyn.select(64)
        assert order != list(range(64))  # astronomically unlikely to be identity
        assert sorted(order) == list(range(64))


class TestInterleave:
    def test_riffle_permutation_even(self):
        ranks = np.arange(6)
        assert list(riffle_permutation(ranks)) == [0, 2, 4, 1, 3, 5]

    def test_riffle_permutation_odd(self):
        ranks = np.arange(5)
        # top half (ranks 0,1,2) -> 0,2,4; bottom half (3,4) -> 1,3
        assert list(riffle_permutation(ranks)) == [0, 2, 4, 1, 3]

    def test_riffle_is_a_permutation(self):
        for p in (1, 2, 3, 7, 16, 33):
            ranks = riffle_permutation(np.arange(p))
            assert sorted(ranks) == list(range(p))

    def test_interleave_remap(self):
        pol = InterleavePriorityArbitration(4, remap_period=10)
        pol.remap()
        assert sorted(pol.priorities()) == [0, 1, 2, 3]
        assert list(pol.priorities()) == [0, 2, 1, 3]


class TestRandomArbitration:
    def test_deterministic_under_seed(self):
        a = make("random", seed=5)
        b = make("random", seed=5)
        for thread in range(8):
            a.enqueue(thread)
            b.enqueue(thread)
        assert a.select(8) == b.select(8)

    def test_uniformity_rough(self):
        """Each thread should be picked first a fair share of the time."""
        rng = np.random.default_rng(0)
        firsts = []
        for _ in range(600):
            pol = RandomArbitration(4, rng=rng)
            for thread in range(4):
                pol.enqueue(thread)
            firsts.append(pol.select(1)[0])
        counts = np.bincount(firsts, minlength=4)
        assert counts.min() > 80  # expected 150 each

    def test_missing_rng_falls_back_deterministically(self):
        # Regression: the rng=None fallback used to be an *unseeded*
        # default_rng(), so direct construction gave irreproducible
        # runs. It must now be deterministic (and warn once).
        import logging

        from repro.obs.log import get_logger, reset_warn_once

        reset_warn_once()
        captured: list[str] = []
        handler = logging.Handler()
        handler.emit = lambda rec: captured.append(rec.getMessage())
        logger = get_logger("core")
        logger.addHandler(handler)
        try:
            a = RandomArbitration(8)
            b = RandomArbitration(8)
        finally:
            logger.removeHandler(handler)
        for policy in (a, b):
            for thread in range(8):
                policy.enqueue(thread)
        grants_a = [a.select(3) for _ in range(3)]
        grants_b = [b.select(3) for _ in range(3)]
        assert grants_a == grants_b
        assert len(captured) == 1
        assert "rng" in captured[0]


class TestRoundRobin:
    def test_cycles_after_last_grant(self):
        rr = RoundRobinArbitration(4)
        for thread in range(4):
            rr.enqueue(thread)
        assert rr.select(2) == [0, 1]
        rr.enqueue(0)
        rr.enqueue(1)
        # pointer sits after 1 -> grants 2, 3 before wrapping to 0, 1
        assert rr.select(4) == [2, 3, 0, 1]

    def test_duplicate_enqueue_ignored(self):
        rr = RoundRobinArbitration(4)
        rr.enqueue(2)
        rr.enqueue(2)
        assert len(rr) == 1
        assert rr.select(4) == [2]


class TestBlacklist:
    def test_streak_reaches_threshold_blacklists(self):
        bl = BlacklistingArbitration(4, blacklist_threshold=2)
        bl.enqueue(0)
        bl.enqueue(0)
        assert bl.select(1) == [0]
        assert bl.select(1) == [0]  # streak hits 2 -> blacklisted
        assert bool(bl._blacklisted[0])
        bl.enqueue(0)
        bl.enqueue(3)
        # thread 3 arrived later but jumps the blacklisted thread 0
        assert bl.select(2) == [3, 0]

    def test_interleaved_grants_never_blacklist(self):
        bl = BlacklistingArbitration(4, blacklist_threshold=2)
        for thread in (0, 1, 0, 1, 0, 1):
            bl.enqueue(thread)
        assert bl.select(6) == [0, 1, 0, 1, 0, 1]
        assert not bl._blacklisted.any()

    def test_begin_tick_clears_on_interval(self):
        bl = BlacklistingArbitration(4, blacklist_threshold=1,
                                     blacklist_clear_interval=10)
        bl.enqueue(2)
        assert bl.select(1) == [2]  # threshold 1: instant blacklist
        assert bool(bl._blacklisted[2])
        bl.begin_tick(9)
        assert bool(bl._blacklisted[2])  # not a boundary
        bl.begin_tick(10)
        assert not bl._blacklisted.any()

    def test_skip_idle_ticks_applies_interior_boundary(self):
        bl = BlacklistingArbitration(4, blacklist_threshold=1,
                                     blacklist_clear_interval=10)
        bl.enqueue(2)
        bl.select(1)
        assert bl.skip_idle_ticks(3, 8)  # no boundary in (3, 8)
        assert bool(bl._blacklisted[2])
        assert bl.skip_idle_ticks(3, 25)  # 10 and 20 inside
        assert not bl._blacklisted.any()

    def test_fcfs_within_each_class(self):
        bl = BlacklistingArbitration(6, blacklist_threshold=1)
        bl.enqueue(5)
        bl.select(1)  # blacklists 5
        bl.enqueue(4)
        bl.select(1)  # blacklists 4
        for thread in (5, 2, 4, 0):
            bl.enqueue(thread)
        # non-blacklisted in arrival order, then blacklisted in
        # arrival order
        assert bl.select(6) == [2, 0, 5, 4]

    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError, match="blacklist_threshold"):
            BlacklistingArbitration(4, blacklist_threshold=0)
        with pytest.raises(ValueError, match="blacklist_clear_interval"):
            BlacklistingArbitration(4, blacklist_clear_interval=0)


class TestDpq:
    def test_initial_order_is_thread_id(self):
        dpq = DynamicPriorityQueueArbitration(4)
        assert list(dpq.priorities()) == [0, 1, 2, 3]
        for thread in (3, 1, 2):
            dpq.enqueue(thread)
        assert dpq.select(2) == [1, 2]  # slot order, not arrival order

    def test_granted_thread_drops_to_lowest_slot(self):
        dpq = DynamicPriorityQueueArbitration(4)
        dpq.enqueue(0)
        assert dpq.select(1) == [0]
        assert list(dpq.priorities()) == [3, 0, 1, 2]  # 0 now last
        dpq.enqueue(0)
        dpq.enqueue(3)
        # thread 3 (slot 2) outranks demoted thread 0 (slot 3)
        assert dpq.select(2) == [3, 0]

    def test_waiting_thread_promotes_past_granted(self):
        # the bound's core invariant: once a granted thread drops
        # behind a waiting one, it cannot get ahead again unserved —
        # with p=3, q=2 a request is denied at most floor((p-1)/q)=1
        # selections before reaching the top slots
        dpq = DynamicPriorityQueueArbitration(3)
        dpq.enqueue(2)
        dpq.enqueue(0)
        dpq.enqueue(1)
        assert dpq.select(2) == [0, 1]  # the one allowed denial
        dpq.enqueue(0)
        dpq.enqueue(1)
        assert dpq.select(2) == [2, 0]  # promoted past both grantees

    def test_duplicate_enqueue_ignored(self):
        dpq = DynamicPriorityQueueArbitration(4)
        dpq.enqueue(2)
        dpq.enqueue(2)
        assert len(dpq) == 1
        assert dpq.select(4) == [2]


# -- property-based invariants -------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(ALL_NAMES),
    st.integers(min_value=1, max_value=16),
    st.data(),
)
def test_arbitration_conserves_requests(name, p, data):
    """Enqueued thread ids come out exactly once, regardless of policy."""
    policy = make(name, p=p, T=8, seed=1)
    pending: set[int] = set()
    enqueued: list[int] = []
    out: list[int] = []
    available = list(range(p))
    for step in range(30):
        policy.begin_tick(step)
        if available and data.draw(st.booleans(), label=f"enqueue@{step}"):
            thread = available.pop()
            policy.enqueue(thread)
            pending.add(thread)
            enqueued.append(thread)
        granted = policy.select(data.draw(st.integers(0, 4), label=f"q@{step}"))
        for g in granted:
            assert g in pending
            pending.discard(g)
            out.append(g)
        assert len(policy) == len(pending)
    out += policy.select(p)
    assert sorted(out) == sorted(enqueued)


# -- tie-breaking determinism (the drain-plan oracle) ---------------------
#
# The quiescent-interval fast-forward (repro.core.drain) replays grant
# decisions outside the tick loop via ArbitrationPolicy.drain_plan, so
# every policy's select() order under ties, short queues, and oversized
# limits is pinned semantics: changing any of these is an
# ENGINE_SEMANTICS_VERSION bump, not a refactor detail.

PRIORITY_NAMES = [
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
]

ELEVEN_NAMES = ALL_NAMES + ["fr_fcfs"]


def make_any(name, p=8, T=16, seed=0):
    """Like make() but also covers fr_fcfs (needs a DRAM geometry)."""
    from repro.core.dram import DramGeometry

    return make_arbitration_policy(
        name,
        p,
        remap_period=T,
        rng=np.random.default_rng(seed),
        dram_geometry=DramGeometry(banks=4, row_pages=4),
    )


def enqueue_any(policy, thread, page=None):
    """Enqueue with a page (fr_fcfs requires one; others ignore it)."""
    policy.enqueue(thread, page if page is not None else thread)


class TestTieBreaking:
    @pytest.mark.parametrize("name", ELEVEN_NAMES)
    def test_empty_queue_selects_nothing(self, name):
        policy = make_any(name)
        policy.begin_tick(1)
        assert policy.select(4) == []
        assert policy.select(0) == []

    @pytest.mark.parametrize("name", ELEVEN_NAMES)
    def test_limit_beyond_queue_returns_whole_queue(self, name):
        policy = make_any(name)
        policy.begin_tick(1)
        for thread in (3, 1, 6):
            enqueue_any(policy, thread)
        granted = policy.select(100)
        assert sorted(granted) == [1, 3, 6]
        assert policy.select(100) == []
        assert len(policy) == 0

    def test_fifo_preserves_arrival_order(self):
        policy = make("fifo")
        for thread in (5, 2, 7, 0):
            policy.enqueue(thread)
        assert policy.select(10) == [5, 2, 7, 0]

    @pytest.mark.parametrize("name", PRIORITY_NAMES)
    def test_priority_family_grants_in_rank_order(self, name):
        policy = make(name, seed=3)
        policy.begin_tick(1)  # avoid the remap at tick 0 mid-test
        for thread in range(8):
            policy.enqueue(thread)
        ranks = policy.priorities()
        expected = sorted(range(8), key=lambda t: (int(ranks[t]), t))
        assert policy.select(8) == expected

    @pytest.mark.parametrize("name", PRIORITY_NAMES)
    def test_priority_equal_ranks_fall_back_to_thread_id(self, name):
        # Built-in permutations never produce ties, but the pinned heap
        # order is (rank, thread): under equal ranks, ascending thread
        # id. Force ties to pin that contract for subclasses/plans.
        policy = make(name, seed=3)
        policy._ranks = np.zeros(8, dtype=np.int64)
        for thread in (6, 2, 7, 1):
            policy.enqueue(thread)
        assert policy.select(8) == [1, 2, 6, 7]

    def test_random_is_deterministic_under_seed(self):
        a = make("random", seed=11)
        b = make("random", seed=11)
        for policy in (a, b):
            for thread in range(8):
                policy.enqueue(thread)
        grants_a = [a.select(3) for _ in range(3)]
        grants_b = [b.select(3) for _ in range(3)]
        assert grants_a == grants_b

    def test_round_robin_pointer_survives_oversized_limit(self):
        rr = RoundRobinArbitration(4)
        for thread in range(4):
            rr.enqueue(thread)
        assert rr.select(99) == [0, 1, 2, 3]
        rr.enqueue(3)
        rr.enqueue(0)
        # pointer sits after 3 -> wraps to 0 before revisiting 3
        assert rr.select(99) == [0, 3]

    def test_blacklist_tie_break_is_fcfs_per_class(self):
        bl = BlacklistingArbitration(8, blacklist_threshold=1)
        bl.enqueue(6)
        bl.select(1)  # blacklist 6
        for thread in (6, 3, 1, 7):
            bl.enqueue(thread)
        # pinned semantics: FCFS among non-blacklisted (3, 1, 7), then
        # the blacklisted 6 — deterministic under ties
        assert bl.select(8) == [3, 1, 7, 6]

    def test_dpq_tie_break_is_slot_order(self):
        dpq = DynamicPriorityQueueArbitration(8)
        for thread in (6, 3, 1, 7):
            dpq.enqueue(thread)
        # pinned semantics: same-tick arrivals grant in slot order
        # (initially thread id), never arrival order
        assert dpq.select(8) == [1, 3, 6, 7]
        dpq.enqueue(3)
        dpq.enqueue(0)
        # 0 kept its original slot; 3 was demoted below it
        assert dpq.select(8) == [0, 3]

    def test_fr_fcfs_row_hits_first_then_fcfs(self):
        from repro.core.dram import DramGeometry

        policy = make_arbitration_policy(
            "fr_fcfs", 8, dram_geometry=DramGeometry(banks=1, row_pages=2)
        )
        # one bank: pages 0,1 share row 0; pages 2,3 share row 1.
        policy.enqueue(0, page=0)
        policy.enqueue(1, page=2)
        policy.enqueue(2, page=1)
        first = policy.select(1)  # no open row yet: oldest wins, opens row 0
        assert first == [0]
        # thread 2 (page 1, row 0) is now a row hit and jumps thread 1
        assert policy.select(2) == [2, 1]


class TestDrainPlan:
    """drain_plan() must predict select() exactly — plan vs live oracle."""

    def test_random_opts_out(self):
        # select() draws from the RNG per grant: inherently unplannable
        policy = make_any("random")
        assert policy.drain_plan(2, 1000) is None

    @pytest.mark.parametrize(
        "name", ["round_robin", "fr_fcfs", "blacklist", "dpq"]
    )
    def test_stateful_policies_opt_in(self, name):
        # deterministic state recurrences: both plan from copied state
        # (the pop-vs-select oracles live in tests/test_drain.py)
        policy = make_any(name)
        plan = policy.drain_plan(2, 1000)
        assert plan is not None
        assert plan.horizon == 1000

    @pytest.mark.parametrize("name", ["fifo"] + PRIORITY_NAMES)
    def test_plan_pops_match_live_selects(self, name):
        live = make(name, p=8, T=1000, seed=5)
        live.begin_tick(1)
        for thread in (4, 1, 6):
            live.enqueue(thread)
        plan = make(name, p=8, T=1000, seed=5)
        plan.begin_tick(1)
        for thread in (4, 1, 6):
            plan.enqueue(thread)
        plan = plan.drain_plan(2, 1000)
        assert plan is not None
        # interleave pops with arrival batches, exactly as plan_drain does
        script = [(2, [0, 3]), (2, [5]), (1, []), (3, []), (8, [])]
        for limit, arrivals in script:
            got = plan.pop(limit)
            want = live.select(limit)
            assert got == want
            plan.push(arrivals)
            for thread in arrivals:
                live.enqueue(thread)
        assert len(plan) == len(live)

    @pytest.mark.parametrize("name", ["fifo"] + PRIORITY_NAMES)
    def test_plan_is_a_copy_until_commit(self, name):
        policy = make(name, p=8, T=1000, seed=5)
        policy.begin_tick(1)
        for thread in (4, 1, 6):
            policy.enqueue(thread)
        plan = policy.drain_plan(2, 1000)
        plan.pop(2)
        plan.push([7])
        assert sorted(policy.select(8)) == [1, 4, 6]  # live untouched

    @pytest.mark.parametrize("name", ["fifo"] + PRIORITY_NAMES)
    def test_commit_installs_plan_state(self, name):
        policy = make(name, p=8, T=1000, seed=5)
        policy.begin_tick(1)
        for thread in (4, 1, 6):
            policy.enqueue(thread)
        oracle = make(name, p=8, T=1000, seed=5)
        oracle.begin_tick(1)
        for thread in (4, 1, 6):
            oracle.enqueue(thread)
        plan = policy.drain_plan(2, 1000)
        dropped = plan.pop(2)
        plan.push([0, 7])
        plan.commit()
        oracle.select(2)
        oracle.enqueue(0)
        oracle.enqueue(7)
        assert len(dropped) == 2
        assert policy.select(8) == oracle.select(8)

    @pytest.mark.parametrize("name", PRIORITY_NAMES)
    def test_priority_horizon_crosses_remap_boundaries(self, name):
        # horizons are no longer capped at the next boundary: the plan
        # replays the pure rank permutation itself (via tick_hook)
        policy = make(name, p=8, T=10, seed=2)
        policy.begin_tick(13)
        plan = policy.drain_plan(2, 10_000)
        assert plan.horizon == 10_000
        assert plan.tick_hook is not None
        plan = policy.drain_plan(2, 15)
        assert plan.horizon == 15

    @pytest.mark.parametrize("name", PRIORITY_NAMES)
    def test_cross_remap_plan_matches_live_policy(self, name):
        # drive the plan through several boundaries exactly as
        # plan_drain does (hook, then pop) against a live twin that
        # runs begin_tick per tick; grant order must never diverge
        live = make(name, p=8, T=10, seed=2)
        planned = make(name, p=8, T=10, seed=2)
        for policy in (live, planned):
            policy.begin_tick(13)
            for thread in (4, 1, 6, 3, 0, 7):
                policy.enqueue(thread)
        plan = planned.drain_plan(2, 1000)
        got, want = [], []
        for tau in range(14, 44):
            plan.tick_hook(tau)
            live.begin_tick(tau)
            got.extend(plan.pop(1))
            want.extend(live.select(1))
            if got and tau % 3 == 0:  # keep the queue busy across remaps
                plan.push([got[-1]])
                live.enqueue(want[-1])
        assert got == want
        # commit installs the final ranks and advances remap_count and
        # the RNG stream in bulk: future remaps stay in lockstep
        plan.commit()
        assert planned.remap_count == live.remap_count
        for policy in (live, planned):
            policy.begin_tick(50)
            for thread in (2, 5, 1):
                policy.enqueue(thread)
        assert planned.select(8) == live.select(8)

    def test_fifo_horizon_is_unbounded_by_remap(self):
        policy = make("fifo")
        plan = policy.drain_plan(2, 12345)
        assert plan.horizon == 12345

    def test_bulk_capability_flags(self):
        fifo_plan = make("fifo").drain_plan(2, 100)
        assert fifo_plan.supports_bulk
        for name in PRIORITY_NAMES:
            policy = make(name, T=1000)
            policy.begin_tick(1)
            assert not policy.drain_plan(2, 100).supports_bulk

    def test_fifo_snapshot_replace_roundtrip(self):
        policy = make("fifo")
        for thread in (4, 1, 6, 2):
            policy.enqueue(thread)
        plan = policy.drain_plan(2, 100)
        assert plan.snapshot() == [4, 1, 6, 2]
        plan.replace([6, 2, 9])
        assert plan.snapshot() == [6, 2, 9]
        assert plan.pop(2) == [6, 2]
        plan.commit()
        assert policy.select(8) == [9]

    @pytest.mark.parametrize("name", PRIORITY_NAMES)
    def test_priority_plans_decline_bulk_interface(self, name):
        policy = make(name, T=1000)
        policy.begin_tick(1)
        policy.enqueue(3)
        plan = policy.drain_plan(2, 100)
        assert plan.snapshot() is None
        with pytest.raises(NotImplementedError):
            plan.replace([3])

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["fifo"] + PRIORITY_NAMES),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.data(),
    )
    def test_plan_oracle_property(self, name, seed, data):
        """Random interleavings of pops and pushes never diverge."""
        rng = np.random.default_rng(seed)
        live = make(name, p=6, T=1000, seed=7)
        live.begin_tick(1)
        planned = make(name, p=6, T=1000, seed=7)
        planned.begin_tick(1)
        start = list(rng.permutation(6)[: int(rng.integers(0, 7))])
        for thread in start:
            live.enqueue(int(thread))
            planned.enqueue(int(thread))
        plan = planned.drain_plan(2, 1000)
        outside = sorted(set(range(6)) - set(start))
        for step in range(10):
            limit = data.draw(st.integers(0, 3), label=f"limit@{step}")
            got = plan.pop(limit)
            assert got == live.select(limit)
            outside.extend(got)
            outside.sort()
            k = data.draw(
                st.integers(0, len(outside)), label=f"arrivals@{step}"
            )
            batch = outside[:k]
            del outside[:k]
            plan.push(batch)
            for thread in batch:
                live.enqueue(thread)
        assert len(plan) == len(live)
