"""Quiescent-interval fast-forward: FF-on runs are bit-identical to FF-off.

The contract under test (repro.core.drain + the engine hooks): with
fast-forward enabled, both engines must produce *exactly* the results
of per-tick execution — makespan, tick count, response histograms and
logs, eviction/fetch counts, completion ticks, and every probe sample —
while eliding most of the miss-bound ticks. ``ENGINE_SEMANTICS_VERSION``
does not change when FF ships; these tests are the enforcement.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationConfig, Simulator
from repro.core import drain
from repro.core.drain import (
    MIN_FF_TICKS,
    plan_drain,
    response_times,
    set_fast_forward,
    traces_disjoint,
)
from repro.core.engine import SimulationLimitError
from repro.core.fastengine import FastSimulator
from repro.obs import TimelineProbe
from repro.traces import make_workload

ENGINES = [Simulator, FastSimulator]


@pytest.fixture(autouse=True)
def _restore_ff_override():
    previous = set_fast_forward(None)
    yield
    set_fast_forward(previous)


def run_with_ff(engine_cls, traces, cfg, enabled):
    set_fast_forward(enabled)
    try:
        return engine_cls(traces, cfg).run()
    finally:
        set_fast_forward(None)


def assert_results_equal(a, b):
    assert a.makespan == b.makespan
    assert a.ticks == b.ticks
    assert a.total_requests == b.total_requests
    assert a.hits == b.hits
    assert a.fetches == b.fetches
    assert a.evictions == b.evictions
    assert a.remap_count == b.remap_count
    assert a.response_histogram == b.response_histogram
    assert list(a.completion_ticks) == list(b.completion_ticks)
    for sa, sb in zip(a.thread_stats, b.thread_stats):
        assert sa.response == sb.response
        assert sa.hits == sb.hits
        assert sa.misses == sb.misses
    if a.response_log is not None or b.response_log is not None:
        assert len(a.response_log) == len(b.response_log)
        for la, lb in zip(a.response_log, b.response_log):
            assert list(la) == list(lb)


def assert_ff_identical(traces, cfg, expect_ff=True):
    """Run both engines with FF off and on; everything must match."""
    baseline = run_with_ff(Simulator, traces, cfg, False)
    assert baseline.ff_intervals == 0
    assert baseline.ff_elided_ticks == 0
    for engine_cls in ENGINES:
        result = run_with_ff(engine_cls, traces, cfg, True)
        assert_results_equal(result, baseline)
        if expect_ff and engine_cls is FastSimulator:
            assert result.ff_intervals > 0
            assert 0 < result.ff_elided_fraction <= 1.0
            assert result.ff_elided_ticks <= result.ticks
    return baseline


def miss_bound_traces(threads=8, pages=12, repeats=8):
    wl = make_workload(
        "adversarial_cycle", threads=threads, pages=pages, repeats=repeats
    )
    return wl.traces


# -- bit-identical differential matrix ------------------------------------


class TestBitIdentical:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_fifo_channels(self, q):
        cfg = SimulationConfig(hbm_slots=24, channels=q, arbitration="fifo")
        assert_ff_identical(miss_bound_traces(), cfg)

    @pytest.mark.parametrize(
        "arb", ["priority", "dynamic_priority", "cycle_priority",
                "cycle_reverse_priority", "interleave_priority"]
    )
    def test_priority_family_with_remap_inside_drains(self, arb):
        # remap_period=37 forces remap boundaries to land mid-drain, so
        # the horizon cap (and interval re-entry after it) is exercised.
        cfg = SimulationConfig(
            hbm_slots=24,
            channels=2,
            arbitration=arb,
            remap_period=37,
            seed=9,
        )
        assert_ff_identical(miss_bound_traces(), cfg)

    @pytest.mark.parametrize("k", [5, 8, 9, 12, 16])
    def test_tight_hbm_slots_exercise_eviction_feasibility(self, k):
        cfg = SimulationConfig(hbm_slots=k, channels=2, arbitration="fifo")
        assert_ff_identical(miss_bound_traces(threads=4, pages=6), cfg)

    def test_staggered_trace_lengths_complete_inside_drains(self):
        traces = [
            list(range(100 * i, 100 * i + 5 * (i + 1))) * 3 for i in range(6)
        ]
        cfg = SimulationConfig(hbm_slots=10, channels=2, arbitration="fifo")
        assert_ff_identical(traces, cfg)

    def test_single_thread(self):
        traces = [list(range(50)) * 4]
        cfg = SimulationConfig(hbm_slots=8)
        assert_ff_identical(traces, cfg)

    def test_wide_channels(self):
        cfg = SimulationConfig(hbm_slots=64, channels=16, arbitration="fifo")
        assert_ff_identical(miss_bound_traces(threads=16, pages=8), cfg)

    def test_vector_path_wide_workload(self):
        from repro.core.fastengine import set_vector_threshold

        previous = set_vector_threshold(4)
        try:
            cfg = SimulationConfig(hbm_slots=96, channels=4)
            assert_ff_identical(miss_bound_traces(threads=32, pages=6), cfg)
        finally:
            set_vector_threshold(previous)

    def test_hit_bound_workload_disengages_gracefully(self):
        wl = make_workload("zipf", threads=6, seed=0, length=300, pages=16)
        cfg = SimulationConfig(hbm_slots=2048)
        assert_ff_identical(wl.traces, cfg, expect_ff=False)


class TestProbeSeries:
    """Probe samples inside elided intervals must be materialized."""

    @pytest.mark.parametrize("stride", [1, 7])
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_probe_series_identical(self, stride, engine_cls):
        traces = miss_bound_traces(threads=6, pages=8)
        series = {}
        for enabled in (False, True):
            probe = TimelineProbe()
            cfg = SimulationConfig(
                hbm_slots=18,
                channels=2,
                probes=(probe,),
                probe_stride=stride,
            )
            run_with_ff(engine_cls, traces, cfg, enabled)
            series[enabled] = probe.as_arrays()
        assert series[False].keys() == series[True].keys()
        for key in series[False]:
            np.testing.assert_array_equal(
                series[False][key], series[True][key], err_msg=key
            )

    def test_probe_run_does_not_suppress_ff(self):
        probe = TimelineProbe()
        cfg = SimulationConfig(
            hbm_slots=18, channels=2, probes=(probe,), probe_stride=7
        )
        result = run_with_ff(
            FastSimulator, miss_bound_traces(threads=6, pages=8), cfg, True
        )
        assert result.ff_intervals > 0
        assert len(probe.samples) > 0


class TestMaxTicks:
    def _message(self, engine_cls, cfg, enabled):
        with pytest.raises(SimulationLimitError) as excinfo:
            run_with_ff(engine_cls, miss_bound_traces(), cfg, enabled)
        return str(excinfo.value)

    def test_raise_message_identical_under_ff(self):
        full = run_with_ff(
            Simulator,
            miss_bound_traces(),
            SimulationConfig(hbm_slots=24, channels=2),
            False,
        )
        cfg = SimulationConfig(
            hbm_slots=24, channels=2, max_ticks=full.ticks // 2
        )
        baseline = self._message(Simulator, cfg, False)
        for engine_cls in ENGINES:
            assert self._message(engine_cls, cfg, True) == baseline

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_boundary_budgets(self, engine_cls):
        traces = miss_bound_traces(threads=4, pages=6)
        cfg = SimulationConfig(hbm_slots=12, channels=2)
        ticks = run_with_ff(Simulator, traces, cfg, False).ticks
        for budget, should_raise in [
            (ticks - 1, True),
            (ticks, False),
            (ticks + 1, False),
        ]:
            bounded = dataclasses.replace(cfg, max_ticks=budget)
            if should_raise:
                with pytest.raises(SimulationLimitError):
                    run_with_ff(engine_cls, traces, bounded, True)
            else:
                result = run_with_ff(engine_cls, traces, bounded, True)
                assert result.ticks == ticks


class TestRecordResponses:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_response_logs_identical(self, engine_cls):
        traces = miss_bound_traces(threads=6, pages=8)
        cfg = SimulationConfig(
            hbm_slots=18, channels=2, record_responses=True
        )
        baseline = run_with_ff(Simulator, traces, cfg, False)
        result = run_with_ff(engine_cls, traces, cfg, True)
        assert baseline.response_log is not None
        for la, lb in zip(result.response_log, baseline.response_log):
            assert list(la) == list(lb)


class TestGatesAndFallbacks:
    @pytest.mark.parametrize("arb", ["random", "round_robin", "fr_fcfs"])
    def test_non_plannable_policies_never_fast_forward(self, arb):
        cfg = SimulationConfig(hbm_slots=24, channels=2, arbitration=arb, seed=3)
        baseline = run_with_ff(Simulator, miss_bound_traces(), cfg, False)
        result = run_with_ff(Simulator, miss_bound_traces(), cfg, True)
        assert result.ff_intervals == 0
        assert_results_equal(result, baseline)

    def test_shared_pages_gate_reference_engine(self):
        # Two threads share page 0: guaranteed-miss windows are invalid,
        # so the reference engine must refuse to fast-forward.
        traces = [[0, 1, 2, 3] * 6, [0, 10, 11, 12] * 6]
        cfg = SimulationConfig(hbm_slots=3, channels=1)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        result = run_with_ff(Simulator, traces, cfg, True)
        assert result.ff_intervals == 0
        assert_results_equal(result, baseline)

    def test_non_lru_replacement_gates_reference_engine(self):
        traces = miss_bound_traces(threads=4, pages=6)
        cfg = SimulationConfig(hbm_slots=12, replacement="clock", seed=1)
        result = run_with_ff(Simulator, traces, cfg, True)
        assert result.ff_intervals == 0


class TestKnobs:
    def test_set_fast_forward_round_trip(self):
        assert set_fast_forward(False) is None
        assert drain.fast_forward_enabled() is False
        assert set_fast_forward(True) is False
        assert drain.fast_forward_enabled() is True
        assert set_fast_forward(None) is True
        assert set_fast_forward(None) is None

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("0", False),
            ("false", False),
            ("off", False),
            ("no", False),
            ("", False),
            ("1", True),
            ("on", True),
            ("anything", True),
        ],
    )
    def test_env_variable(self, monkeypatch, value, expected):
        set_fast_forward(None)
        monkeypatch.setenv("REPRO_FAST_FORWARD", value)
        assert drain.fast_forward_enabled() is expected

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_FORWARD", "0")
        set_fast_forward(True)
        assert drain.fast_forward_enabled() is True

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_FORWARD", raising=False)
        set_fast_forward(None)
        assert drain.fast_forward_enabled() is True


class TestStats:
    def test_ff_stats_populated_and_bounded(self):
        cfg = SimulationConfig(hbm_slots=24, channels=2)
        result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
        assert result.ff_intervals > 0
        assert result.ff_elided_ticks > 0
        assert result.ff_elided_ticks <= result.ticks
        assert 0.0 < result.ff_elided_fraction <= 1.0
        # a miss-bound adversarial run should elide nearly everything
        assert result.ff_elided_fraction > 0.9

    def test_ff_stats_zero_when_disabled(self):
        cfg = SimulationConfig(hbm_slots=24, channels=2)
        result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, False)
        assert result.ff_intervals == 0
        assert result.ff_elided_ticks == 0
        assert result.ff_elided_fraction == 0.0

    def test_manifest_carries_ff_fields(self):
        from repro.obs import RunManifest

        cfg = SimulationConfig(hbm_slots=24, channels=2)
        result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
        manifest = RunManifest.build(cfg, "fast", result=result)
        assert manifest.result["ff_intervals"] == result.ff_intervals
        assert manifest.result["ff_elided_ticks"] == result.ff_elided_ticks
        assert (
            manifest.result["ff_elided_fraction"] == result.ff_elided_fraction
        )


# -- unit tests for the planner helpers -----------------------------------


class TestTracesDisjoint:
    def test_disjoint(self):
        assert traces_disjoint([np.array([0, 1]), np.array([2, 3])])

    def test_shared(self):
        assert not traces_disjoint([np.array([0, 1]), np.array([1, 2])])

    def test_empty_and_single(self):
        assert traces_disjoint([])
        assert traces_disjoint([np.array([5, 5, 5])])
        assert traces_disjoint([np.array([0, 1]), np.array([], dtype=np.int64)])


class TestResponseTimes:
    def test_first_serve_uses_entry_request_tick(self):
        # core 1 entered waiting since tick 3; served at ticks 10 and 12.
        order, th, tk, w = response_times(
            np.array([1, 1]), np.array([10, 12]), np.array([0, 3])
        )
        assert th.tolist() == [1, 1]
        assert w.tolist() == [10 - 3 + 1, 12 - 10]

    def test_thread_major_stable_order(self):
        serve_threads = np.array([2, 0, 2, 0])
        serve_ticks = np.array([5, 6, 8, 9])
        order, th, tk, w = response_times(
            serve_threads, serve_ticks, np.array([4, 0, 4])
        )
        assert th.tolist() == [0, 0, 2, 2]
        assert tk.tolist() == [6, 9, 5, 8]
        # first serve per core answers the entry request (w = tk-4+1);
        # later serves answer consecutive requests (w = tick diff).
        assert w.tolist() == [3, 3, 2, 3]
        # the permutation recovers chronological order by scatter
        chrono = np.empty(4, dtype=np.int64)
        chrono[order] = w
        assert chrono.tolist() == [2, 3, 3, 3]

    def test_empty(self):
        order, th, tk, w = response_times(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([0, 0]),
        )
        assert len(order) == len(th) == len(tk) == len(w) == 0


class TestPlanDrain:
    def _plan(self, threads=(), horizon=1000):
        from repro.core.arbitration import FIFOArbitration

        policy = FIFOArbitration(8)
        for thread in threads:
            policy.enqueue(thread)
        return policy.drain_plan(2, horizon)

    def test_short_interval_rejected(self):
        sched = plan_drain(
            self._plan(horizon=MIN_FF_TICKS - 1),
            start=0,
            channels=2,
            capacity=8,
            resident0=0,
            queue0=0,
            h_threads=[],
            b_threads=[0, 1],
            grant_avail={0: 5, 1: 5},
            completes={0: True, 1: True},
        )
        assert sched is None

    def test_simple_two_core_drain(self):
        # Two cores, one channel, plenty of window: strict alternation.
        sched = plan_drain(
            self._plan(),
            start=0,
            channels=1,
            capacity=8,
            resident0=0,
            queue0=0,
            h_threads=[],
            b_threads=[0, 1],
            grant_avail={0: 4, 1: 4},
            completes={0: False, 1: False},
        )
        assert sched is not None
        assert sched.start == 0
        grants = list(zip(sched.grant_ticks, sched.grant_threads))
        # entry tick grants the first queued core; alternation follows
        assert grants[0] == (0, 0)
        assert grants[1] == (1, 1)
        # each grant at t is served at t+1
        serves = dict(zip(sched.serve_ticks, sched.serve_threads))
        for tick, thread in grants:
            if tick + 1 < sched.end:
                assert serves[tick + 1] == thread
        assert sched.total_evictions == 0  # capacity 8 never exceeded

    def test_window_exhaustion_bounds_grants(self):
        sched = plan_drain(
            self._plan(),
            start=0,
            channels=1,
            capacity=64,
            resident0=0,
            queue0=0,
            h_threads=[],
            b_threads=[0, 1],
            grant_avail={0: 2, 1: 2},
            completes={0: False, 1: False},
        )
        if sched is not None:
            counts = np.bincount(
                np.asarray(sched.grant_threads, dtype=np.int64), minlength=2
            )
            assert counts[0] <= 2 and counts[1] <= 2


# -- property-based: FF differential on random disjoint workloads ----------


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=24),
    st.sampled_from(["fifo", "priority", "dynamic_priority"]),
    st.integers(0, 2**31 - 1),
)
def test_ff_differential_random(p, pages, q, k, arb, seed):
    rng = np.random.default_rng(seed)
    traces = [
        (1000 * i + rng.integers(0, pages, size=int(rng.integers(5, 60))))
        .tolist()
        for i in range(p)
    ]
    cfg = SimulationConfig(
        hbm_slots=max(k, q + 1),
        channels=q,
        arbitration=arb,
        remap_period=37,
        seed=5,
    )
    baseline = run_with_ff(Simulator, traces, cfg, False)
    for engine_cls in ENGINES:
        assert_results_equal(
            run_with_ff(engine_cls, traces, cfg, True), baseline
        )
