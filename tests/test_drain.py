"""Quiescent-interval fast-forward: FF-on runs are bit-identical to FF-off.

The contract under test (repro.core.drain + the engine hooks): with
fast-forward enabled, both engines must produce *exactly* the results
of per-tick execution — makespan, tick count, response histograms and
logs, eviction/fetch counts, completion ticks, and every probe sample —
while eliding most of the miss-bound ticks. ``ENGINE_SEMANTICS_VERSION``
does not change when FF ships; these tests are the enforcement.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationConfig, Simulator
from repro.core import drain
from repro.core.drain import (
    MIN_FF_TICKS,
    plan_drain,
    response_times,
    set_fast_forward,
    traces_disjoint,
)
from repro.core.engine import SimulationLimitError
from repro.core.fastengine import FastSimulator
from repro.obs import TimelineProbe
from repro.traces import make_workload

ENGINES = [Simulator, FastSimulator]

ALL_POLICIES = [
    "fifo",
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
    "random",
    "round_robin",
    "fr_fcfs",
    "blacklist",
    "dpq",
]

REMAPPING_POLICIES = [
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
]


@pytest.fixture(autouse=True)
def _restore_ff_override():
    previous = set_fast_forward(None)
    yield
    set_fast_forward(previous)


def run_with_ff(engine_cls, traces, cfg, enabled):
    set_fast_forward(enabled)
    try:
        return engine_cls(traces, cfg).run()
    finally:
        set_fast_forward(None)


def assert_results_equal(a, b):
    assert a.makespan == b.makespan
    assert a.ticks == b.ticks
    assert a.total_requests == b.total_requests
    assert a.hits == b.hits
    assert a.fetches == b.fetches
    assert a.evictions == b.evictions
    assert a.remap_count == b.remap_count
    assert a.response_histogram == b.response_histogram
    assert list(a.completion_ticks) == list(b.completion_ticks)
    for sa, sb in zip(a.thread_stats, b.thread_stats):
        assert sa.response == sb.response
        assert sa.hits == sb.hits
        assert sa.misses == sb.misses
    if a.response_log is not None or b.response_log is not None:
        assert len(a.response_log) == len(b.response_log)
        for la, lb in zip(a.response_log, b.response_log):
            assert list(la) == list(lb)


def assert_ff_identical(traces, cfg, expect_ff=True):
    """Run both engines with FF off and on; everything must match."""
    baseline = run_with_ff(Simulator, traces, cfg, False)
    assert baseline.ff_intervals == 0
    assert baseline.ff_elided_ticks == 0
    for engine_cls in ENGINES:
        result = run_with_ff(engine_cls, traces, cfg, True)
        assert_results_equal(result, baseline)
        if expect_ff and engine_cls is FastSimulator:
            assert result.ff_intervals > 0
            assert 0 < result.ff_elided_fraction <= 1.0
            assert result.ff_elided_ticks <= result.ticks
    return baseline


def miss_bound_traces(threads=8, pages=12, repeats=8):
    wl = make_workload(
        "adversarial_cycle", threads=threads, pages=pages, repeats=repeats
    )
    return wl.traces


def hit_heavy_traces(threads=6, pages=20, repeats=100):
    """Cache-fitting per-core loops: one cold pass, then pure hits."""
    return [
        list(range(50 * i, 50 * i + pages)) * repeats for i in range(threads)
    ]


def policy_config(arb, **overrides):
    """A config for ``arb``; remapping policies get a remap period."""
    kwargs = dict(hbm_slots=256, channels=2, arbitration=arb, seed=7)
    if arb in REMAPPING_POLICIES and arb != "priority":
        kwargs["remap_period"] = 37
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


# -- bit-identical differential matrix ------------------------------------


class TestBitIdentical:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_fifo_channels(self, q):
        cfg = SimulationConfig(hbm_slots=24, channels=q, arbitration="fifo")
        assert_ff_identical(miss_bound_traces(), cfg)

    @pytest.mark.parametrize(
        "arb", ["priority", "dynamic_priority", "cycle_priority",
                "cycle_reverse_priority", "interleave_priority"]
    )
    def test_priority_family_with_remap_inside_drains(self, arb):
        # remap_period=37 forces remap boundaries to land mid-drain, so
        # the horizon cap (and interval re-entry after it) is exercised.
        cfg = SimulationConfig(
            hbm_slots=24,
            channels=2,
            arbitration=arb,
            remap_period=37,
            seed=9,
        )
        assert_ff_identical(miss_bound_traces(), cfg)

    @pytest.mark.parametrize("k", [5, 8, 9, 12, 16])
    def test_tight_hbm_slots_exercise_eviction_feasibility(self, k):
        cfg = SimulationConfig(hbm_slots=k, channels=2, arbitration="fifo")
        assert_ff_identical(miss_bound_traces(threads=4, pages=6), cfg)

    def test_staggered_trace_lengths_complete_inside_drains(self):
        traces = [
            list(range(100 * i, 100 * i + 5 * (i + 1))) * 3 for i in range(6)
        ]
        cfg = SimulationConfig(hbm_slots=10, channels=2, arbitration="fifo")
        assert_ff_identical(traces, cfg)

    def test_single_thread(self):
        traces = [list(range(50)) * 4]
        cfg = SimulationConfig(hbm_slots=8)
        assert_ff_identical(traces, cfg)

    def test_wide_channels(self):
        cfg = SimulationConfig(hbm_slots=64, channels=16, arbitration="fifo")
        assert_ff_identical(miss_bound_traces(threads=16, pages=8), cfg)

    def test_vector_path_wide_workload(self):
        from repro.core.fastengine import set_vector_threshold

        previous = set_vector_threshold(4)
        try:
            cfg = SimulationConfig(hbm_slots=96, channels=4)
            assert_ff_identical(miss_bound_traces(threads=32, pages=6), cfg)
        finally:
            set_vector_threshold(previous)

    def test_hit_bound_workload_elides_hit_stretches(self):
        # Everything fits in HBM, so after the cold pass the run is pure
        # hits: the guaranteed-hit prover must engage (the miss prover
        # alone used to leave this workload at ff_elided_fraction == 0).
        wl = make_workload("zipf", threads=6, seed=0, length=300, pages=16)
        cfg = SimulationConfig(hbm_slots=2048)
        assert_ff_identical(wl.traces, cfg)


class TestCrossRemap:
    """Plans chain across remap boundaries by replaying the permutation.

    ``remap_period=5 < MIN_FF_TICKS=8`` means every plannable window
    spans at least one boundary — before cross-remap planning these
    configs could never fast-forward at all.
    """

    @pytest.mark.parametrize("arb", REMAPPING_POLICIES)
    def test_remap_period_shorter_than_min_window(self, arb):
        assert 5 < MIN_FF_TICKS
        cfg = SimulationConfig(
            hbm_slots=24, channels=2, arbitration=arb, remap_period=5, seed=9
        )
        baseline = assert_ff_identical(miss_bound_traces(), cfg)
        assert baseline.remap_count > 0

    @pytest.mark.parametrize("arb", REMAPPING_POLICIES)
    @pytest.mark.parametrize("period", [7, 13, 37])
    def test_remap_count_and_rng_stream_advance_in_bulk(self, arb, period):
        # remap_count and the policy's RNG stream must end up exactly
        # where per-tick execution leaves them, or later remaps diverge.
        cfg = SimulationConfig(
            hbm_slots=20,
            channels=2,
            arbitration=arb,
            remap_period=period,
            seed=11,
        )
        traces = miss_bound_traces(threads=6, pages=10)
        assert_ff_identical(traces, cfg)


class TestHitHeavy:
    """Guaranteed-hit windows are elided for every policy."""

    @pytest.mark.parametrize("arb", ALL_POLICIES)
    def test_hit_heavy_bit_identical_and_mostly_elided(self, arb):
        traces = hit_heavy_traces()
        cfg = policy_config(arb)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        for engine_cls in ENGINES:
            result = run_with_ff(engine_cls, traces, cfg, True)
            assert_results_equal(result, baseline)
            assert result.ff_intervals > 0
            assert result.ff_elided_fraction > 0.5

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_completion_inside_hit_window(self, engine_cls):
        # staggered lengths: cores finish mid-window, and the interval
        # must retire them at the same tick the per-tick engine does
        traces = [
            list(range(50 * i, 50 * i + 10)) * (3 + 5 * i) for i in range(4)
        ]
        cfg = SimulationConfig(hbm_slots=128, channels=2)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        result = run_with_ff(engine_cls, traces, cfg, True)
        assert_results_equal(result, baseline)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_hit_runs_update_lru_order(self, engine_cls):
        # capacity is tight enough that post-window evictions depend on
        # the LRU stamps written during the elided hit stretch
        traces = [
            (list(range(10 * i, 10 * i + 4)) * 30) + [100 + i, 10 * i]
            for i in range(4)
        ]
        cfg = SimulationConfig(hbm_slots=17, channels=1)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        result = run_with_ff(engine_cls, traces, cfg, True)
        assert_results_equal(result, baseline)

    @pytest.mark.parametrize("arb", ["dynamic_priority", "cycle_priority"])
    def test_hit_window_replays_elided_remaps(self, arb):
        # remaps land inside elided hit stretches; skip_idle_ticks must
        # replay them or the post-window grant order diverges
        cfg = policy_config(arb, remap_period=5, hbm_slots=160, seed=3)
        traces = hit_heavy_traces(threads=5, pages=16, repeats=40)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        assert baseline.remap_count > 0
        for engine_cls in ENGINES:
            result = run_with_ff(engine_cls, traces, cfg, True)
            assert_results_equal(result, baseline)

    def test_record_responses_identical_on_hit_heavy(self):
        traces = hit_heavy_traces(threads=4)
        cfg = policy_config("fifo", record_responses=True)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        for engine_cls in ENGINES:
            result = run_with_ff(engine_cls, traces, cfg, True)
            assert baseline.response_log is not None
            for la, lb in zip(result.response_log, baseline.response_log):
                assert list(la) == list(lb)


class TestProbeSeries:
    """Probe samples inside elided intervals must be materialized."""

    @pytest.mark.parametrize("stride", [1, 7])
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_probe_series_identical(self, stride, engine_cls):
        traces = miss_bound_traces(threads=6, pages=8)
        series = {}
        for enabled in (False, True):
            probe = TimelineProbe()
            cfg = SimulationConfig(
                hbm_slots=18,
                channels=2,
                probes=(probe,),
                probe_stride=stride,
            )
            run_with_ff(engine_cls, traces, cfg, enabled)
            series[enabled] = probe.as_arrays()
        assert series[False].keys() == series[True].keys()
        for key in series[False]:
            np.testing.assert_array_equal(
                series[False][key], series[True][key], err_msg=key
            )

    @pytest.mark.parametrize("stride", [1, 7])
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_probe_series_identical_inside_hit_windows(self, stride, engine_cls):
        traces = hit_heavy_traces(threads=4, pages=12, repeats=40)
        series = {}
        for enabled in (False, True):
            probe = TimelineProbe()
            cfg = SimulationConfig(
                hbm_slots=128,
                channels=2,
                probes=(probe,),
                probe_stride=stride,
            )
            result = run_with_ff(engine_cls, traces, cfg, enabled)
            if enabled:
                assert result.ff_elided_fraction > 0.5
            series[enabled] = probe.as_arrays()
        assert series[False].keys() == series[True].keys()
        for key in series[False]:
            np.testing.assert_array_equal(
                series[False][key], series[True][key], err_msg=key
            )

    def test_probe_run_does_not_suppress_ff(self):
        probe = TimelineProbe()
        cfg = SimulationConfig(
            hbm_slots=18, channels=2, probes=(probe,), probe_stride=7
        )
        result = run_with_ff(
            FastSimulator, miss_bound_traces(threads=6, pages=8), cfg, True
        )
        assert result.ff_intervals > 0
        assert len(probe.samples) > 0


class TestMaxTicks:
    def _message(self, engine_cls, cfg, enabled):
        with pytest.raises(SimulationLimitError) as excinfo:
            run_with_ff(engine_cls, miss_bound_traces(), cfg, enabled)
        return str(excinfo.value)

    def test_raise_message_identical_under_ff(self):
        full = run_with_ff(
            Simulator,
            miss_bound_traces(),
            SimulationConfig(hbm_slots=24, channels=2),
            False,
        )
        cfg = SimulationConfig(
            hbm_slots=24, channels=2, max_ticks=full.ticks // 2
        )
        baseline = self._message(Simulator, cfg, False)
        for engine_cls in ENGINES:
            assert self._message(engine_cls, cfg, True) == baseline

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_boundary_budgets(self, engine_cls):
        traces = miss_bound_traces(threads=4, pages=6)
        cfg = SimulationConfig(hbm_slots=12, channels=2)
        ticks = run_with_ff(Simulator, traces, cfg, False).ticks
        for budget, should_raise in [
            (ticks - 1, True),
            (ticks, False),
            (ticks + 1, False),
        ]:
            bounded = dataclasses.replace(cfg, max_ticks=budget)
            if should_raise:
                with pytest.raises(SimulationLimitError):
                    run_with_ff(engine_cls, traces, bounded, True)
            else:
                result = run_with_ff(engine_cls, traces, bounded, True)
                assert result.ticks == ticks


class TestRecordResponses:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_response_logs_identical(self, engine_cls):
        traces = miss_bound_traces(threads=6, pages=8)
        cfg = SimulationConfig(
            hbm_slots=18, channels=2, record_responses=True
        )
        baseline = run_with_ff(Simulator, traces, cfg, False)
        result = run_with_ff(engine_cls, traces, cfg, True)
        assert baseline.response_log is not None
        for la, lb in zip(result.response_log, baseline.response_log):
            assert list(la) == list(lb)


class TestGatesAndFallbacks:
    def test_random_declines_miss_planning(self):
        # RandomArbitration draws from its RNG per select, so miss-bound
        # windows stay unplannable; a miss-only run must never FF.
        cfg = SimulationConfig(
            hbm_slots=24, channels=2, arbitration="random", seed=3
        )
        baseline = run_with_ff(Simulator, miss_bound_traces(), cfg, False)
        result = run_with_ff(Simulator, miss_bound_traces(), cfg, True)
        assert result.ff_intervals == 0
        assert_results_equal(result, baseline)

    @pytest.mark.parametrize(
        "arb", ["round_robin", "fr_fcfs", "blacklist", "dpq"]
    )
    def test_stateful_policies_now_plan_miss_windows(self, arb):
        # round-robin, FR-FCFS, blacklist, and DPQ replay their
        # deterministic state recurrences inside the plan: miss-bound
        # runs fast-forward.
        cfg = SimulationConfig(
            hbm_slots=24, channels=2, arbitration=arb, seed=3
        )
        assert_ff_identical(miss_bound_traces(), cfg)

    def test_blacklist_clear_boundary_lands_mid_drain(self):
        # blacklist_clear_interval=37 forces clearing boundaries inside
        # planned intervals: the plan's tick_hook must replay each
        # clear, keeping FF bit-identical to per-tick execution.
        cfg = SimulationConfig(
            hbm_slots=24,
            channels=2,
            arbitration="blacklist",
            blacklist_threshold=2,
            blacklist_clear_interval=37,
            seed=3,
        )
        assert_ff_identical(miss_bound_traces(), cfg)

    def test_shared_pages_gate_reference_engine(self):
        # Two threads share page 0: guaranteed-miss windows are invalid,
        # so the reference engine must refuse to fast-forward.
        traces = [[0, 1, 2, 3] * 6, [0, 10, 11, 12] * 6]
        cfg = SimulationConfig(hbm_slots=3, channels=1)
        baseline = run_with_ff(Simulator, traces, cfg, False)
        result = run_with_ff(Simulator, traces, cfg, True)
        assert result.ff_intervals == 0
        assert_results_equal(result, baseline)

    def test_non_lru_replacement_gates_reference_engine(self):
        traces = miss_bound_traces(threads=4, pages=6)
        cfg = SimulationConfig(hbm_slots=12, replacement="clock", seed=1)
        result = run_with_ff(Simulator, traces, cfg, True)
        assert result.ff_intervals == 0


class TestKnobs:
    def test_set_fast_forward_round_trip(self):
        assert set_fast_forward(False) is None
        assert drain.fast_forward_enabled() is False
        assert set_fast_forward(True) is False
        assert drain.fast_forward_enabled() is True
        assert set_fast_forward(None) is True
        assert set_fast_forward(None) is None

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("0", False),
            ("false", False),
            ("off", False),
            ("no", False),
            ("", False),
            ("1", True),
            ("on", True),
            ("anything", True),
        ],
    )
    def test_env_variable(self, monkeypatch, value, expected):
        set_fast_forward(None)
        monkeypatch.setenv("REPRO_FAST_FORWARD", value)
        assert drain.fast_forward_enabled() is expected

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_FORWARD", "0")
        set_fast_forward(True)
        assert drain.fast_forward_enabled() is True

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_FORWARD", raising=False)
        set_fast_forward(None)
        assert drain.fast_forward_enabled() is True


class TestStats:
    def test_ff_stats_populated_and_bounded(self):
        cfg = SimulationConfig(hbm_slots=24, channels=2)
        result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
        assert result.ff_intervals > 0
        assert result.ff_elided_ticks > 0
        assert result.ff_elided_ticks <= result.ticks
        assert 0.0 < result.ff_elided_fraction <= 1.0
        # a miss-bound adversarial run should elide nearly everything
        assert result.ff_elided_fraction > 0.9

    def test_ff_stats_zero_when_disabled(self):
        cfg = SimulationConfig(hbm_slots=24, channels=2)
        result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, False)
        assert result.ff_intervals == 0
        assert result.ff_elided_ticks == 0
        assert result.ff_elided_fraction == 0.0

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_zero_tick_run_reports_zero_fraction(self, engine_cls):
        # empty workload: ticks == 0 must not divide-by-zero the fraction
        result = run_with_ff(engine_cls, [[]], SimulationConfig(hbm_slots=2), True)
        assert result.ticks == 0
        assert result.ff_intervals == 0
        assert result.ff_elided_ticks == 0
        assert result.ff_elided_fraction == 0.0

    def test_manifest_carries_ff_fields(self):
        from repro.obs import RunManifest

        cfg = SimulationConfig(hbm_slots=24, channels=2)
        result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
        manifest = RunManifest.build(cfg, "fast", result=result)
        assert manifest.result["ff_intervals"] == result.ff_intervals
        assert manifest.result["ff_elided_ticks"] == result.ff_elided_ticks
        assert (
            manifest.result["ff_elided_fraction"] == result.ff_elided_fraction
        )


class TestEngagementCounters:
    """Per-policy FF attempt/decline totals flow into repro.obs.metrics."""

    @pytest.fixture(autouse=True)
    def _registry(self):
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.MetricsRegistry()
        previous = obs_metrics.set_active_registry(registry)
        yield registry
        obs_metrics.set_active_registry(previous)

    @staticmethod
    def _series(registry, name):
        fam = registry.snapshot()["families"].get(name)
        if fam is None:
            return {}
        return {
            frozenset(tuple(pair) for pair in key): value
            for key, value in fam["series"]
        }

    def test_miss_window_attempts_recorded(self, _registry):
        cfg = SimulationConfig(hbm_slots=24, channels=2)
        run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
        attempts = self._series(_registry, "repro_ff_plan_attempts")
        key = frozenset({("policy", "fifo"), ("window", "miss")})
        assert attempts.get(key, 0) > 0

    def test_hit_window_attempts_recorded(self, _registry):
        cfg = policy_config("round_robin")
        run_with_ff(FastSimulator, hit_heavy_traces(), cfg, True)
        attempts = self._series(_registry, "repro_ff_plan_attempts")
        key = frozenset({("policy", "round_robin"), ("window", "hit")})
        assert attempts.get(key, 0) > 0

    def test_declining_policy_shows_up_as_declines(self, _registry):
        # random never plans miss windows: its attempts never commit,
        # so telemetry must show where planning falls through
        cfg = SimulationConfig(
            hbm_slots=24, channels=2, arbitration="random", seed=3
        )
        run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
        key = frozenset({("policy", "random"), ("window", "miss")})
        attempts = self._series(_registry, "repro_ff_plan_attempts")
        declines = self._series(_registry, "repro_ff_plan_declines")
        assert attempts.get(key, 0) >= 1
        assert declines.get(key, 0) == attempts.get(key, 0)

    def test_reference_engine_records_too(self, _registry):
        cfg = SimulationConfig(hbm_slots=24, channels=2)
        run_with_ff(Simulator, miss_bound_traces(), cfg, True)
        attempts = self._series(_registry, "repro_ff_plan_attempts")
        key = frozenset({("policy", "fifo"), ("window", "miss")})
        assert attempts.get(key, 0) > 0

    def test_no_registry_is_a_no_op(self):
        from repro.obs import metrics as obs_metrics

        previous = obs_metrics.set_active_registry(None)
        try:
            cfg = SimulationConfig(hbm_slots=24, channels=2)
            result = run_with_ff(FastSimulator, miss_bound_traces(), cfg, True)
            assert result.ff_intervals > 0
        finally:
            obs_metrics.set_active_registry(previous)


class TestStatefulPlanOracles:
    """Plan pop sequences must equal the live policy's select sequence."""

    def test_round_robin_plan_matches_live_select(self):
        from repro.core.arbitration import RoundRobinArbitration

        live = RoundRobinArbitration(8)
        planned = RoundRobinArbitration(8)
        for policy in (live, planned):
            for thread in (2, 5, 7):
                policy.enqueue(thread)
            policy.select(2)  # leave the scan pointer mid-cycle
            for thread in (0, 1, 4):
                policy.enqueue(thread)
        plan = planned.drain_plan(3, 1000)
        assert len(plan) == len(live)
        pushes = [[3], [], [6, 2], []]
        got, want = [], []
        for arrivals in pushes:
            got.extend(plan.pop(2))
            want.extend(live.select(2))
            plan.push(list(arrivals))
            for thread in arrivals:
                live.enqueue(thread)
        while len(plan) or len(live):
            got.extend(plan.pop(3))
            want.extend(live.select(3))
        assert got == want
        # commit converges the planned policy onto the live state: the
        # same future arrivals must now be granted in the same order
        plan.commit()
        for policy in (live, planned):
            for thread in (5, 0, 3):
                policy.enqueue(thread)
        assert planned.select(8) == live.select(8)

    def test_round_robin_plan_discard_leaves_policy_untouched(self):
        from repro.core.arbitration import RoundRobinArbitration

        policy = RoundRobinArbitration(4)
        for thread in (1, 3):
            policy.enqueue(thread)
        plan = policy.drain_plan(2, 1000)
        plan.push([0, 2])
        # the cyclic scan starts at the pointer (0) and grants in id order
        assert plan.pop(4) == [0, 1, 2, 3]
        # no commit: live state is exactly as before the plan existed
        assert len(policy) == 2
        assert policy.select(4) == [1, 3]

    def test_frfcfs_plan_matches_live_select(self):
        from repro.core.arbitration import FRFCFSArbitration
        from repro.core.dram import DramGeometry

        geometry = DramGeometry(banks=2, row_pages=4)
        live = FRFCFSArbitration(8, geometry=geometry)
        planned = FRFCFSArbitration(8, geometry=geometry)
        # mixed row-hit / row-miss pattern across both banks
        warm = [(0, 0), (1, 8), (2, 1), (3, 17), (4, 2)]
        for policy in (live, planned):
            for thread, page in warm:
                policy.enqueue(thread, page)
            policy.select(2)  # open rows diverge from the reset state
        plan = planned.drain_plan(2, 1000)
        assert plan.needs_pages
        assert len(plan) == len(live)
        pushes = [[(5, 3)], [(6, 9), (7, 16)], []]
        got, want = [], []
        for arrivals in pushes:
            got.extend(plan.pop(2))
            want.extend(live.select(2))
            plan.push(
                [thread for thread, _ in arrivals],
                [page for _, page in arrivals],
            )
            for thread, page in arrivals:
                live.enqueue(thread, page)
        while len(plan) or len(live):
            got.extend(plan.pop(2))
            want.extend(live.select(2))
        assert got == want
        plan.commit()
        for policy in (live, planned):
            policy.enqueue(0, 1)  # row-hit status depends on open rows
            policy.enqueue(1, 5)
        assert planned.select(2) == live.select(2)

    def test_frfcfs_plan_push_requires_pages(self):
        from repro.core.arbitration import FRFCFSArbitration

        plan = FRFCFSArbitration(4).drain_plan(2, 1000)
        with pytest.raises(ValueError):
            plan.push([0])

    def test_frfcfs_plan_discard_leaves_banks_untouched(self):
        from repro.core.arbitration import FRFCFSArbitration
        from repro.core.dram import DramGeometry

        policy = FRFCFSArbitration(4, geometry=DramGeometry(banks=1, row_pages=4))
        policy.enqueue(0, 0)
        policy.select(1)  # bank 0 now has row 0 open
        policy.enqueue(1, 8)   # row 2: a miss...
        policy.enqueue(2, 1)   # row 0: ...that the open row jumps past
        plan = policy.drain_plan(1, 1000)
        assert plan.pop(2) == [2, 1]
        # no commit: the live queue and open-row state are unchanged
        assert policy.select(2) == [2, 1]

    def test_random_has_no_drain_plan(self):
        from repro.core.arbitration import RandomArbitration

        policy = RandomArbitration(4, rng=np.random.default_rng(0))
        policy.enqueue(1)
        assert policy.drain_plan(2, 1000) is None

    def test_blacklist_plan_matches_live_select(self):
        from repro.core.arbitration import BlacklistingArbitration

        live = BlacklistingArbitration(8, blacklist_threshold=2)
        planned = BlacklistingArbitration(8, blacklist_threshold=2)
        for policy in (live, planned):
            for thread in (2, 2, 5, 2):
                policy.enqueue(thread)
            policy.select(2)  # thread 2 streaks to the threshold
            for thread in (0, 2, 4):
                policy.enqueue(thread)
        plan = planned.drain_plan(3, 1000)
        assert len(plan) == len(live)
        pushes = [[3], [], [2, 6], []]
        got, want = [], []
        for arrivals in pushes:
            got.extend(plan.pop(2))
            want.extend(live.select(2))
            plan.push(list(arrivals))
            for thread in arrivals:
                live.enqueue(thread)
        while len(plan) or len(live):
            got.extend(plan.pop(3))
            want.extend(live.select(3))
        assert got == want
        # commit converges the planned policy onto the live state: the
        # same future serves must blacklist the same threads
        plan.commit()
        for policy in (live, planned):
            for thread in (5, 5, 0):
                policy.enqueue(thread)
        assert planned.select(8) == live.select(8)
        assert list(planned._blacklisted) == list(live._blacklisted)

    def test_blacklist_plan_tick_hook_replays_clears(self):
        from repro.core.arbitration import BlacklistingArbitration

        live = BlacklistingArbitration(
            4, blacklist_threshold=1, blacklist_clear_interval=10
        )
        planned = BlacklistingArbitration(
            4, blacklist_threshold=1, blacklist_clear_interval=10
        )
        for policy in (live, planned):
            policy.enqueue(3)
            policy.select(1)  # blacklists 3 immediately
            for thread in (3, 1):
                policy.enqueue(thread)
        plan = planned.drain_plan(1, 1000)
        got, want = [], []
        for tau in range(6, 14):  # crosses the clear boundary at 10
            plan.tick_hook(tau)
            live.begin_tick(tau)
            got.extend(plan.pop(1))
            want.extend(live.select(1))
            if tau == 8:  # keep 3 deprioritized until the clear
                plan.push([3])
                live.enqueue(3)
        assert got == want

    def test_blacklist_plan_discard_leaves_policy_untouched(self):
        from repro.core.arbitration import BlacklistingArbitration

        policy = BlacklistingArbitration(4, blacklist_threshold=1)
        for thread in (1, 3):
            policy.enqueue(thread)
        plan = policy.drain_plan(2, 1000)
        plan.push([0, 2])
        assert plan.pop(4) == [1, 3, 0, 2]
        # plan serves blacklisted threads on its copies only
        assert not policy._blacklisted.any()
        assert len(policy) == 2
        assert policy.select(4) == [1, 3]

    def test_dpq_plan_matches_live_select(self):
        from repro.core.arbitration import DynamicPriorityQueueArbitration

        live = DynamicPriorityQueueArbitration(8)
        planned = DynamicPriorityQueueArbitration(8)
        for policy in (live, planned):
            for thread in (2, 5, 7):
                policy.enqueue(thread)
            policy.select(2)  # slot order diverges from thread-id order
            for thread in (0, 1, 4):
                policy.enqueue(thread)
        plan = planned.drain_plan(3, 1000)
        assert len(plan) == len(live)
        pushes = [[3], [], [6, 2], []]
        got, want = [], []
        for arrivals in pushes:
            got.extend(plan.pop(2))
            want.extend(live.select(2))
            plan.push(list(arrivals))
            for thread in arrivals:
                live.enqueue(thread)
        while len(plan) or len(live):
            got.extend(plan.pop(3))
            want.extend(live.select(3))
        assert got == want
        # commit converges the planned policy onto the live slot order
        plan.commit()
        for policy in (live, planned):
            for thread in (5, 0, 3):
                policy.enqueue(thread)
        assert planned.select(8) == live.select(8)
        assert planned._order == live._order

    def test_dpq_plan_discard_leaves_policy_untouched(self):
        from repro.core.arbitration import DynamicPriorityQueueArbitration

        policy = DynamicPriorityQueueArbitration(4)
        for thread in (1, 3):
            policy.enqueue(thread)
        plan = policy.drain_plan(2, 1000)
        plan.push([0, 2])
        assert plan.pop(4) == [0, 1, 2, 3]
        # no commit: the live slot order and waiting set are unchanged
        assert policy._order == [0, 1, 2, 3]
        assert len(policy) == 2
        assert policy.select(4) == [1, 3]


# -- unit tests for the planner helpers -----------------------------------


class TestTracesDisjoint:
    def test_disjoint(self):
        assert traces_disjoint([np.array([0, 1]), np.array([2, 3])])

    def test_shared(self):
        assert not traces_disjoint([np.array([0, 1]), np.array([1, 2])])

    def test_empty_and_single(self):
        assert traces_disjoint([])
        assert traces_disjoint([np.array([5, 5, 5])])
        assert traces_disjoint([np.array([0, 1]), np.array([], dtype=np.int64)])


class TestResponseTimes:
    def test_first_serve_uses_entry_request_tick(self):
        # core 1 entered waiting since tick 3; served at ticks 10 and 12.
        order, th, tk, w = response_times(
            np.array([1, 1]), np.array([10, 12]), np.array([0, 3])
        )
        assert th.tolist() == [1, 1]
        assert w.tolist() == [10 - 3 + 1, 12 - 10]

    def test_thread_major_stable_order(self):
        serve_threads = np.array([2, 0, 2, 0])
        serve_ticks = np.array([5, 6, 8, 9])
        order, th, tk, w = response_times(
            serve_threads, serve_ticks, np.array([4, 0, 4])
        )
        assert th.tolist() == [0, 0, 2, 2]
        assert tk.tolist() == [6, 9, 5, 8]
        # first serve per core answers the entry request (w = tk-4+1);
        # later serves answer consecutive requests (w = tick diff).
        assert w.tolist() == [3, 3, 2, 3]
        # the permutation recovers chronological order by scatter
        chrono = np.empty(4, dtype=np.int64)
        chrono[order] = w
        assert chrono.tolist() == [2, 3, 3, 3]

    def test_empty(self):
        order, th, tk, w = response_times(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([0, 0]),
        )
        assert len(order) == len(th) == len(tk) == len(w) == 0


class TestPlanDrain:
    def _plan(self, threads=(), horizon=1000):
        from repro.core.arbitration import FIFOArbitration

        policy = FIFOArbitration(8)
        for thread in threads:
            policy.enqueue(thread)
        return policy.drain_plan(2, horizon)

    def test_short_interval_rejected(self):
        sched = plan_drain(
            self._plan(horizon=MIN_FF_TICKS - 1),
            start=0,
            channels=2,
            capacity=8,
            resident0=0,
            queue0=0,
            h_threads=[],
            b_threads=[0, 1],
            grant_avail={0: 5, 1: 5},
            completes={0: True, 1: True},
        )
        assert sched is None

    def test_simple_two_core_drain(self):
        # Two cores, one channel, plenty of window: strict alternation.
        sched = plan_drain(
            self._plan(),
            start=0,
            channels=1,
            capacity=8,
            resident0=0,
            queue0=0,
            h_threads=[],
            b_threads=[0, 1],
            grant_avail={0: 4, 1: 4},
            completes={0: False, 1: False},
        )
        assert sched is not None
        assert sched.start == 0
        grants = list(zip(sched.grant_ticks, sched.grant_threads))
        # entry tick grants the first queued core; alternation follows
        assert grants[0] == (0, 0)
        assert grants[1] == (1, 1)
        # each grant at t is served at t+1
        serves = dict(zip(sched.serve_ticks, sched.serve_threads))
        for tick, thread in grants:
            if tick + 1 < sched.end:
                assert serves[tick + 1] == thread
        assert sched.total_evictions == 0  # capacity 8 never exceeded

    def test_window_exhaustion_bounds_grants(self):
        sched = plan_drain(
            self._plan(),
            start=0,
            channels=1,
            capacity=64,
            resident0=0,
            queue0=0,
            h_threads=[],
            b_threads=[0, 1],
            grant_avail={0: 2, 1: 2},
            completes={0: False, 1: False},
        )
        if sched is not None:
            counts = np.bincount(
                np.asarray(sched.grant_threads, dtype=np.int64), minlength=2
            )
            assert counts[0] <= 2 and counts[1] <= 2


# -- property-based: FF differential on random disjoint workloads ----------


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=24),
    st.sampled_from(["fifo", "priority", "dynamic_priority"]),
    st.integers(0, 2**31 - 1),
)
def test_ff_differential_random(p, pages, q, k, arb, seed):
    rng = np.random.default_rng(seed)
    traces = [
        (1000 * i + rng.integers(0, pages, size=int(rng.integers(5, 60))))
        .tolist()
        for i in range(p)
    ]
    cfg = SimulationConfig(
        hbm_slots=max(k, q + 1),
        channels=q,
        arbitration=arb,
        remap_period=37,
        seed=5,
    )
    baseline = run_with_ff(Simulator, traces, cfg, False)
    for engine_cls in ENGINES:
        assert_results_equal(
            run_with_ff(engine_cls, traces, cfg, True), baseline
        )
