"""Differential battery for the batched lockstep engine.

The batch engine holds the same bit-identical discipline as the
fast-forward machinery (see ``tests/test_drain.py``): for every
batch-eligible configuration, running B jobs in NumPy lockstep must
produce exactly the ``SimulationResult`` (metrics, response logs, probe
samples, fast-forward counters) that ``simulate()`` produces for each
job alone. Ineligible lanes fall back to the single-job dispatcher
mid-batch with no observable difference, and the sweep harness's
batched records and result-cache entries match unbatched runs byte for
byte.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import run_sweep
from repro.analysis.sweep import SweepJob, WorkloadSpec
from repro.core import (
    ARBITRATION_POLICIES,
    ENGINE_SEMANTICS_VERSION,
    BatchSimulator,
    SimulationConfig,
    SimulationLimitError,
    batch_limit,
    batch_supported,
    set_batch_limit,
    simulate,
    simulate_batch,
)
from repro.obs import CallbackProbe, TimelineProbe
from repro.traces import make_workload

#: the nine arbitration policies; remap-driven schemes get a period
POLICIES = (
    "fifo",
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
    "random",
    "round_robin",
    "fr_fcfs",
)

#: three trace families spanning adversarial, skewed, and uniform access
FAMILIES = (
    ("adversarial_cycle", dict(threads=8, pages=12, repeats=8)),
    ("zipf", dict(threads=16, seed=3, length=400, pages=32)),
    ("random", dict(threads=12, seed=3, length=300, pages=20)),
)


def results_equal(a, b):
    """Field-wise SimulationResult equality, ignoring wall_time_s.

    ``response_log`` holds numpy arrays, so dataclass ``==`` is
    ambiguous; compare it element-wise and every other field exactly.
    """
    for f in dataclasses.fields(a):
        if f.name == "wall_time_s":
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if f.name == "response_log":
            if va is None or vb is None:
                if va is not vb:
                    return False
                continue
            if len(va) != len(vb):
                return False
            for xa, xb in zip(va, vb):
                if list(xa) != list(xb):
                    return False
        elif va != vb:
            return False
    return True


def config_for(policy, slots, probes=()):
    return SimulationConfig(
        hbm_slots=slots,
        channels=2,
        arbitration=policy,
        remap_period=37,
        seed=9,
        record_responses=True,
        probes=probes,
        probe_stride=7,
    )


@pytest.fixture(autouse=True)
def _restore_batch_limit():
    previous = set_batch_limit(None)
    yield
    set_batch_limit(previous)


class TestDifferentialBattery:
    """Batch-vs-single bit identity over policies × families."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_bit_identity(self, policy):
        assert policy in ARBITRATION_POLICIES
        items, singles, batch_probes, single_probes = [], [], [], []
        for kind, params in FAMILIES:
            for slots in (6, 24):
                workload = make_workload(kind, **params)
                bp = TimelineProbe()
                sp = TimelineProbe()
                items.append((workload, config_for(policy, slots, (bp,))))
                singles.append((workload, config_for(policy, slots, (sp,))))
                batch_probes.append(bp)
                single_probes.append(sp)
        set_batch_limit(len(items))
        batched = simulate_batch(items)
        for (traces, config), result, bp, sp, (straces, sconfig) in zip(
            items, batched, batch_probes, single_probes, singles
        ):
            expected = simulate(straces, sconfig)
            assert results_equal(result, expected), config
            assert [s.to_dict() for s in bp.samples] == [
                s.to_dict() for s in sp.samples
            ]

    def test_semantics_version_unchanged(self):
        # The batch engine reproduces engine semantics v1 bit for bit;
        # bump this ONLY with a deliberate, documented semantics change.
        assert ENGINE_SEMANTICS_VERSION == 1


class TestEligibilityAndFallback:
    def test_supported_matrix(self):
        assert batch_supported(SimulationConfig(hbm_slots=8))
        assert not batch_supported(
            SimulationConfig(hbm_slots=8, replacement="clock")
        )
        assert not batch_supported(
            SimulationConfig(hbm_slots=8, protect_pending=False)
        )
        assert not batch_supported(
            SimulationConfig(hbm_slots=8, collect_timeline=True)
        )
        assert not batch_supported(
            SimulationConfig(hbm_slots=8, probes=(CallbackProbe(lambda s: None),))
        )
        assert batch_supported(
            SimulationConfig(hbm_slots=8, probes=(TimelineProbe(),))
        )

    def test_heterogeneous_batch_with_fallback_lanes(self):
        w1 = make_workload("zipf", threads=8, seed=1, length=200, pages=24)
        w2 = make_workload("random", threads=6, seed=2, length=150, pages=16)
        items = [
            (w1, SimulationConfig(hbm_slots=12, channels=2, seed=1)),
            (w2, SimulationConfig(hbm_slots=8, seed=2, replacement="clock")),
            (w1, SimulationConfig(hbm_slots=10, seed=3, protect_pending=False)),
            (w2, SimulationConfig(hbm_slots=8, channels=2, seed=4)),
        ]
        set_batch_limit(4)
        batched = simulate_batch(items)
        for (traces, config), result in zip(items, batched):
            assert results_equal(result, simulate(traces, config))

    def test_empty_trace_lanes(self):
        arr = np.array([0, 1, 2, 0, 1], dtype=np.int64)
        empty = np.array([], dtype=np.int64)
        items = [
            ([arr, empty, arr + 3], SimulationConfig(hbm_slots=4)),
            ([arr + 6, empty], SimulationConfig(hbm_slots=4)),
        ]
        set_batch_limit(2)
        batched = simulate_batch(items)
        for (traces, config), result in zip(items, batched):
            assert results_equal(result, simulate(traces, config))

    def test_batch_simulator_rejects_ineligible_lane(self):
        w = make_workload("zipf", threads=4, seed=0, length=100, pages=16)
        bad = SimulationConfig(hbm_slots=8, replacement="clock")
        with pytest.raises(ValueError):
            BatchSimulator(
                [(w.traces, bad), (w.traces, SimulationConfig(hbm_slots=8))]
            )


class TestLimitErrors:
    def test_max_ticks_abort_matches_single(self):
        w = make_workload("adversarial_cycle", threads=8, pages=12, repeats=8)
        ok = SimulationConfig(hbm_slots=24, channels=2, seed=9)
        tight = SimulationConfig(hbm_slots=6, seed=9, max_ticks=10)
        with pytest.raises(SimulationLimitError) as single_err:
            simulate(w, tight)
        set_batch_limit(2)
        with pytest.raises(SimulationLimitError) as batch_err:
            simulate_batch([(w, tight), (w, ok)])
        assert str(batch_err.value) == str(single_err.value)

    def test_return_exceptions_preserves_batchmates(self):
        w = make_workload("adversarial_cycle", threads=8, pages=12, repeats=8)
        ok = SimulationConfig(hbm_slots=24, channels=2, seed=9)
        tight = SimulationConfig(hbm_slots=6, seed=9, max_ticks=10)
        set_batch_limit(3)
        got = simulate_batch(
            [(w, ok), (w, tight), (w, ok)], return_exceptions=True
        )
        assert isinstance(got[1], SimulationLimitError)
        expected = simulate(w, ok)
        assert results_equal(got[0], expected)
        assert results_equal(got[2], expected)


class TestKnobs:
    def test_set_batch_limit_round_trip(self):
        previous = set_batch_limit(5)
        assert batch_limit() == 5
        assert set_batch_limit(previous) == 5
        with pytest.raises(ValueError):
            set_batch_limit(-1)

    def test_env_knob(self, monkeypatch):
        set_batch_limit(None)  # env only applies without an override
        monkeypatch.setenv("REPRO_BATCH", "off")
        assert batch_limit() == 1
        monkeypatch.setenv("REPRO_BATCH", "4")
        assert batch_limit() == 4
        monkeypatch.setenv("REPRO_BATCH", "on")
        assert batch_limit() > 1
        monkeypatch.delenv("REPRO_BATCH")
        assert batch_limit() > 1

    @pytest.mark.parametrize("bad", ["three", "-2", "4.5"])
    def test_invalid_env_warns_and_uses_default(self, monkeypatch, bad):
        # the lane cap is a perf knob: a bad REPRO_BATCH must warn once
        # and fall back to the default, never fail dispatch
        import logging

        from repro.core.batchengine import DEFAULT_BATCH_LANES
        from repro.obs.log import get_logger, reset_warn_once

        set_batch_limit(None)
        monkeypatch.setenv("REPRO_BATCH", bad)
        reset_warn_once()
        captured: list[str] = []
        handler = logging.Handler()
        handler.emit = lambda rec: captured.append(rec.getMessage())
        logger = get_logger("core")
        logger.addHandler(handler)
        try:
            assert batch_limit() == DEFAULT_BATCH_LANES
            assert batch_limit() == DEFAULT_BATCH_LANES  # warn once only
        finally:
            logger.removeHandler(handler)
        assert len(captured) == 1
        assert "REPRO_BATCH" in captured[0]

    def test_limit_one_forces_single_path(self):
        w = make_workload("zipf", threads=8, seed=1, length=200, pages=24)
        config = SimulationConfig(hbm_slots=12, channels=2, seed=1)
        set_batch_limit(1)
        (result,) = simulate_batch([(w, config)])
        assert results_equal(result, simulate(w, config))


class TestSweepIntegration:
    """Batched SweepRunner records and cache writes match unbatched."""

    @staticmethod
    def _jobs():
        jobs = []
        for i in range(6):
            spec = WorkloadSpec.make("zipf", 8, seed=10 + i, length=200, pages=24)
            config = SimulationConfig(
                hbm_slots=12, channels=2, seed=3 + i, record_responses=True
            )
            jobs.append(SweepJob(spec, config, tag=f"j{i}"))
        spec = WorkloadSpec.make("random", 6, seed=99, length=150, pages=16)
        jobs.append(
            SweepJob(
                spec,
                SimulationConfig(hbm_slots=8, seed=7, replacement="clock"),
                tag="fallback",
            )
        )
        return jobs

    @staticmethod
    def _row(record):
        row = dict(record.row())
        # wall time and the batched flag describe the execution path,
        # not the simulation outcome, so they legitimately differ
        # between batch and solo dispatch.
        row.pop("wall_time_s", None)
        row.pop("batched", None)
        return row

    @pytest.mark.parametrize("processes", [1, 2])
    def test_records_identical(self, processes):
        jobs = self._jobs()
        set_batch_limit(1)
        baseline = run_sweep(jobs, processes=1, result_cache=False)
        set_batch_limit(4)
        batched = run_sweep(jobs, processes=processes, result_cache=False)
        for a, b in zip(baseline, batched):
            assert self._row(a) == self._row(b)

    def test_pre_existing_caches_stay_warm(self, tmp_path):
        jobs = self._jobs()
        set_batch_limit(1)
        run_sweep(jobs, processes=1, cache_dir=tmp_path)
        set_batch_limit(4)
        from repro.analysis import SweepRunner

        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        records = runner.run(jobs)
        # every unbatched entry replays: batching changes no cache key
        assert runner.last_campaign.cache_hits == len(jobs)
        assert runner.last_campaign.simulated == 0
        assert all(r.cached for r in records)
