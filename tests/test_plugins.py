"""Tests for the custom-policy plugin registries.

The library's reason to exist downstream is trying out *new*
far-channel arbitration and replacement ideas against the paper's
baselines; these tests exercise that extension path end to end.
"""

from collections import deque

import pytest

from repro.core import (
    ArbitrationPolicy,
    ReplacementPolicy,
    SimulationConfig,
    Simulator,
    arbitration_policy_names,
    make_arbitration_policy,
    make_replacement_policy,
    register_arbitration_policy,
    register_replacement_policy,
    replacement_policy_names,
)
from repro.core.arbitration import _ARBITRATION_CLASSES
from repro.core.replacement import _POLICY_CLASSES


class LIFOArbitration(ArbitrationPolicy):
    """Last-come-first-served — a deliberately odd custom policy."""

    name = "test_lifo"

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        self._stack: deque[int] = deque()

    def __len__(self) -> int:
        return len(self._stack)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._stack.append(thread)

    def select(self, limit: int) -> list[int]:
        return [self._stack.pop() for _ in range(min(limit, len(self._stack)))]


class SecondInsertedPolicy(ReplacementPolicy):
    """FIFO clone used to exercise the replacement registry."""

    name = "test_fifo_clone"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: dict[int, None] = {}
        self.residency = self._order

    def __contains__(self, page):
        return page in self._order

    def __len__(self):
        return len(self._order)

    def pages(self):
        return iter(self._order)

    def insert(self, page):
        self._order[page] = None

    def touch(self, page):
        pass

    def evict(self, protected=frozenset()):
        for page in self._order:
            if page not in protected:
                del self._order[page]
                return page
        return None

    def remove(self, page):
        del self._order[page]


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    _ARBITRATION_CLASSES.pop("test_lifo", None)
    _POLICY_CLASSES.pop("test_fifo_clone", None)


class TestArbitrationRegistry:
    def test_register_and_construct(self):
        register_arbitration_policy(LIFOArbitration)
        assert "test_lifo" in arbitration_policy_names()
        policy = make_arbitration_policy("test_lifo", 4)
        policy.enqueue(1)
        policy.enqueue(2)
        assert policy.select(1) == [2]  # LIFO order

    def test_config_accepts_registered_policy(self):
        register_arbitration_policy(LIFOArbitration)
        cfg = SimulationConfig(hbm_slots=4, arbitration="test_lifo")
        result = Simulator([[0, 1], [10, 11]], cfg).run()
        assert result.total_requests == 4

    def test_duplicate_name_rejected(self):
        register_arbitration_policy(LIFOArbitration)

        class Clash(ArbitrationPolicy):
            name = "test_lifo"

            def __len__(self):
                return 0

            def enqueue(self, thread, page=None):
                pass

            def select(self, limit):
                return []

        with pytest.raises(ValueError, match="already registered"):
            register_arbitration_policy(Clash)

    def test_reregistering_same_class_is_idempotent(self):
        register_arbitration_policy(LIFOArbitration)
        register_arbitration_policy(LIFOArbitration)

    def test_unnamed_class_rejected(self):
        class NoName(ArbitrationPolicy):
            def __len__(self):
                return 0

            def enqueue(self, thread, page=None):
                pass

            def select(self, limit):
                return []

        with pytest.raises(ValueError, match="non-empty"):
            register_arbitration_policy(NoName)


class TestReplacementRegistry:
    def test_register_and_simulate(self):
        register_replacement_policy(SecondInsertedPolicy)
        assert "test_fifo_clone" in replacement_policy_names()
        policy = make_replacement_policy("test_fifo_clone", 4)
        policy.insert(1)
        assert 1 in policy
        cfg = SimulationConfig(hbm_slots=2, replacement="test_fifo_clone")
        result = Simulator([[0, 1, 2, 0]], cfg).run()
        assert result.total_requests == 4

    def test_custom_fifo_clone_matches_builtin_fifo(self):
        register_replacement_policy(SecondInsertedPolicy)
        trace = [list(range(12)) * 3]
        clone = Simulator(
            trace, SimulationConfig(hbm_slots=6, replacement="test_fifo_clone")
        ).run()
        builtin = Simulator(
            trace, SimulationConfig(hbm_slots=6, replacement="fifo")
        ).run()
        assert clone.makespan == builtin.makespan
        assert clone.hits == builtin.hits

    def test_unknown_name_lists_custom_policies(self):
        register_replacement_policy(SecondInsertedPolicy)
        with pytest.raises(ValueError, match="test_fifo_clone"):
            make_replacement_policy("nope", 4)
