"""Shared helpers for the characterization snapshot (capture + assert).

The snapshot pins ``rows`` and ``checks`` of every registry experiment
at smoke scale so refactors of the execution pipeline can prove they
did not change a single number. Values are normalized to plain JSON
types (numpy scalars unwrapped, tuples listed) so a live run compares
exactly against the JSON round-trip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

SNAPSHOT_PATH = Path(__file__).parent / "data" / "characterization_smoke.json"


def jsonify(value: Any) -> Any:
    """Normalize to JSON-native types, preserving numeric exactness."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.generic):
        return jsonify(value.item())
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise TypeError(f"non-JSON value in experiment rows/checks: {value!r}")
