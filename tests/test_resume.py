"""Campaign checkpointing and resume: a SIGKILLed campaign *parent*
loses at most the in-flight work, and ``--resume`` (or simply re-running
the same jobs) finishes the remainder with nothing lost, nothing
duplicated, and metrics bit-identical to a single-life run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro._cli import main
from repro.analysis import (
    DirectoryStore,
    SQLiteStore,
    SweepJob,
    SweepRunner,
    WorkloadSpec,
    open_store,
    set_fault_plan,
    sweep_result_key,
)
from repro.analysis.faults import parse_fault_plan
from repro.core import SimulationConfig

SRC = str(Path(__file__).resolve().parent.parent / "src")

METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "hits",
    "fetches",
    "evictions",
)


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    previous = set_fault_plan(None)
    yield
    set_fault_plan(previous)


def demo_jobs(n=3):
    """``n`` cheap jobs with distinct configs (distinct result keys)."""
    return [
        SweepJob(
            WorkloadSpec.make("adversarial_cycle", threads=2, pages=8, repeats=2),
            SimulationConfig(hbm_slots=8 * (i + 1)),
            tag=f"job-{i}",
        )
        for i in range(n)
    ]


def job_key(job):
    return sweep_result_key(job.workload, job.config, job.payload)


def assert_same_metrics(records_a, records_b):
    by_tag = {r.job.tag: r for r in records_b}
    assert {r.job.tag for r in records_a} == set(by_tag)
    for record in records_a:
        twin = by_tag[record.job.tag]
        for name in METRIC_FIELDS:
            assert getattr(record, name) == getattr(twin, name), name


class TestFaultPlanParsing:
    def test_kill_parent_spec(self):
        (spec,) = parse_fault_plan("kill-parent:*:after=3")
        assert spec.mode == "kill-parent"
        assert spec.after == 3

    def test_worker_injection_ignores_kill_parent(self):
        from repro.analysis.faults import maybe_inject

        set_fault_plan("kill-parent:*")
        maybe_inject("anything", 1)  # must not kill this process


class TestCheckpointLifecycle:
    def test_checkpoint_written_with_meta(self, tmp_path):
        jobs = demo_jobs(2)
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        runner.run(jobs, label="ckpt", meta={"experiment_id": "demo", "seed": 7})
        campaign_id = runner.last_campaign.campaign_id
        assert campaign_id.startswith("ckpt-")
        store = DirectoryStore(tmp_path / "results")
        checkpoint = store.load_checkpoint(campaign_id)
        assert checkpoint is not None
        assert checkpoint.meta == {"experiment_id": "demo", "seed": 7}
        assert checkpoint.job_keys == {job_key(j) for j in jobs}
        assert store.done_keys(campaign_id) == checkpoint.job_keys

    def test_completed_campaign_rerun_is_plain_replay(self, tmp_path):
        jobs = demo_jobs(2)
        SweepRunner(processes=1, cache_dir=tmp_path).run(jobs, label="warm")
        again = SweepRunner(processes=1, cache_dir=tmp_path)
        again.run(jobs, label="warm")
        stats = again.last_campaign
        assert stats.cache_hits == 2
        assert stats.resumed == 0  # nothing was interrupted
        table = stats.summary_table()
        assert "resumed" not in table  # quiet unless it happened

    def test_conflicting_manifest_disables_checkpointing(self, tmp_path):
        jobs = demo_jobs(2)
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        runner.run(jobs, label="clash")
        campaign_id = runner.last_campaign.campaign_id
        manifest = (
            tmp_path / "results" / "campaigns" / campaign_id / "manifest.json"
        )
        doc = json.loads(manifest.read_text())
        doc["jobs"] = [dict(j, key="f" * 32) for j in doc["jobs"]]
        manifest.write_text(json.dumps(doc))
        rerun = SweepRunner(processes=1, cache_dir=tmp_path)
        rerun.run(jobs, label="clash")
        assert rerun.last_campaign.campaign_id == ""  # checkpointing off
        assert rerun.last_campaign.cache_hits == 2  # results still replay


class TestResumeAfterPartialDeath:
    def test_missing_tail_is_resimulated_not_lost(self, tmp_path):
        jobs = demo_jobs(3)
        baseline_runner = SweepRunner(processes=1, cache_dir=tmp_path / "base")
        baseline = baseline_runner.run(jobs, label="single-life")

        first = SweepRunner(processes=1, cache_dir=tmp_path / "killed")
        first.run(jobs, label="single-life")
        campaign_id = first.last_campaign.campaign_id
        store = DirectoryStore(tmp_path / "killed" / "results")

        # Simulate a parent killed before the last record landed: drop
        # one result entry and its frontier line.
        victim = job_key(jobs[-1])
        store.path_for(victim).unlink()
        log = store._campaign_dir(campaign_id) / "done.log"
        survivors = [
            line for line in log.read_text().splitlines() if line != victim
        ]
        log.write_text("\n".join(survivors) + "\n")

        resumed = SweepRunner(processes=1, cache_dir=tmp_path / "killed")
        records = resumed.run(jobs, label="single-life")
        stats = resumed.last_campaign
        assert stats.resumed == 2  # the work the dead parent completed
        assert stats.simulated == 1  # only the lost job re-ran
        assert stats.cache_hits == 2
        assert "2 resumed" in stats.summary_table()
        assert_same_metrics(records, baseline)
        assert store.done_keys(campaign_id) == {job_key(j) for j in jobs}


class TestParentKillAndResume:
    """The real thing: SIGKILL the campaign parent mid-run via the
    ``kill-parent`` injection point, then resume in a fresh process."""

    CHILD = textwrap.dedent(
        """
        import sys
        from repro.analysis import SweepJob, SweepRunner, WorkloadSpec
        from repro.core import SimulationConfig

        jobs = [
            SweepJob(
                WorkloadSpec.make(
                    "adversarial_cycle", threads=2, pages=8, repeats=2
                ),
                SimulationConfig(hbm_slots=8 * (i + 1)),
                tag=f"job-{i}",
            )
            for i in range(3)
        ]
        SweepRunner(processes=1, cache_dir=sys.argv[1]).run(
            jobs, label="kill-demo"
        )
        print("UNREACHABLE")  # the injected SIGKILL must preempt this
        """
    )

    def test_killed_parent_resumes_bit_identical(self, tmp_path):
        jobs = demo_jobs(3)
        baseline_runner = SweepRunner(processes=1, cache_dir=tmp_path / "base")
        baseline = baseline_runner.run(jobs, label="kill-demo")

        script = tmp_path / "child.py"
        script.write_text(self.CHILD)
        env = dict(
            os.environ,
            PYTHONPATH=SRC,
            REPRO_FAULT_INJECT="kill-parent:*:after=2",
        )
        env.pop("REPRO_STORE", None)
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "killed")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "UNREACHABLE" not in proc.stdout

        store = DirectoryStore(tmp_path / "killed" / "results")
        (campaign_id,) = store.list_campaigns()
        done_before = store.done_keys(campaign_id)
        assert len(done_before) == 2  # died after the second record
        # every done key is backed by a stored result: nothing was
        # marked done without being durable first
        for key in done_before:
            assert store.get(key) is not None

        resumed = SweepRunner(processes=1, cache_dir=tmp_path / "killed")
        records = resumed.run(jobs, label="kill-demo")
        stats = resumed.last_campaign
        assert stats.campaign_id == campaign_id
        assert stats.resumed == 2  # the dead parent's completed work
        assert stats.simulated == 1  # zero lost, zero duplicated
        assert_same_metrics(records, baseline)
        assert store.done_keys(campaign_id) == {job_key(j) for j in jobs}
        assert len(store) == len(jobs)


class TestCliResume:
    def test_run_requires_ids_or_resume(self, capsys):
        assert main(["run"]) == 2
        assert "experiment ids" in capsys.readouterr().err

    def test_resume_excludes_ids(self, capsys):
        assert main(["run", "thm4", "--resume", "x"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_bad_shard_rejected_early(self, capsys):
        assert main(["run", "thm4", "--shard", "5/2"]) == 2
        assert "bad --shard" in capsys.readouterr().err

    def test_resume_unknown_campaign_exits_2(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 's.db'}"
        assert main(["run", "--resume", "ghost", "--store", uri]) == 2
        assert "no campaign 'ghost'" in capsys.readouterr().err

    def test_resume_adhoc_campaign_from_manifest(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 's.db'}"
        jobs = demo_jobs(2)
        runner = SweepRunner(processes=1, store=uri)
        runner.run(jobs, label="adhoc")
        campaign_id = runner.last_campaign.campaign_id
        code = main(
            ["run", "--resume", campaign_id, "--store", uri,
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert f"sqlite:{tmp_path / 's.db'}" in out

    def test_cli_shard_drains_without_reduce(self, tmp_path, capsys):
        # A shard run of a registered experiment holds only its
        # partition's records, so reducers must not run: both shards
        # drain cleanly, then the unsharded pass reduces from cache.
        uri = f"sqlite:{tmp_path / 'drain.db'}"
        common = ["run", "thm2", "--scale", "smoke", "--processes", "1",
                  "--store", uri, "--cache-dir", str(tmp_path / "cache")]
        for shard in ("0/2", "1/2"):
            assert main([*common, "--shard", shard]) == 0
            out = capsys.readouterr().out
            assert f"shard {shard}: drained" in out
            assert "shape checks" not in out
        assert main(common) == 0
        assert "shape checks" in capsys.readouterr().out

    def test_cli_store_flag_routes_results(self, tmp_path):
        uri = f"sqlite:{tmp_path / 'cli.db'}"
        code = main(
            ["run", "thm2", "--scale", "smoke", "--store", uri,
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        store = open_store(uri)
        assert len(store) > 0
        assert store.list_campaigns()
        store.close()
        # the --store default was restored after the command
        from repro.store.base import default_store_uri

        assert default_store_uri() != uri


class TestCliCache:
    def test_stats_and_clear(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path / 'c.db'}"
        store = open_store(uri)
        store.put("a" * 32, {"makespan": 1})
        store.close()
        assert main(["cache", "stats", "--store", uri,
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "workloads" in out
        assert main(["cache", "clear", "--store", uri,
                     "--cache-dir", str(tmp_path), "--results-only"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        reopened = open_store(uri)
        assert len(reopened) == 0
        reopened.close()

    def test_scope_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["cache", "stats", "--results-only", "--workloads-only"])


class TestManifestLineage:
    def test_campaign_manifest_records_store_and_resume(self, tmp_path):
        from repro.experiments.base import (
            Campaign,
            Reduction,
            save_experiment_output,
        )

        campaign = Campaign.sweep(
            "lineage-demo",
            "store lineage demo",
            build_jobs=lambda ctx: demo_jobs(2),
            reduce=lambda ctx, records: Reduction(
                rows=[r.row() for r in records], checks={"ran": True}, text="ok"
            ),
        )
        out = campaign.run(scale="smoke", processes=1, cache_dir=tmp_path)
        target = save_experiment_output(out, tmp_path / "save", seed=0)
        manifest = json.loads((target / "manifest.json").read_text())
        section = manifest["campaign"]
        assert section["campaign_id"].startswith("lineage-demo-")
        assert section["store"] == f"dir:{tmp_path / 'results'}"
        assert section["resumed"] == 0
        assert section["shard"] == ""
