"""Result-store backends: URI resolution, format compatibility with the
historical ``ResultCache`` layout, corrupt-entry quarantine, campaign
checkpoints, the done-key frontier, and job leases — exercised against
both the directory and SQLite backends wherever the contract is shared.
"""

import json
import sqlite3
import time

import pytest

from repro.analysis import (
    CampaignCheckpoint,
    DirectoryStore,
    ResultCache,
    SQLiteStore,
    SweepJob,
    SweepRunner,
    WorkloadSpec,
    campaign_id_for,
    open_store,
    set_store_default,
    sweep_job_from_dict,
    sweep_job_to_dict,
    sweep_result_key,
)
from repro.analysis.sweep import PayloadRequest, parse_shard
from repro.core import SimulationConfig
from repro.store import parse_store_uri
from repro.store.base import STORE_ENV, default_store_uri, lease_is_stale

#: engine-produced fields that are deterministic across runs
METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "hits",
    "fetches",
    "evictions",
)


@pytest.fixture(params=["dir", "sqlite"])
def store(request, tmp_path):
    if request.param == "dir":
        s = DirectoryStore(tmp_path / "results")
    else:
        s = SQLiteStore(tmp_path / "store.db")
    yield s
    s.close()


def demo_jobs():
    jobs = []
    for arb in ("fifo", "priority"):
        jobs.append(
            SweepJob(
                WorkloadSpec.make(
                    "adversarial_cycle", threads=2, pages=8, repeats=2
                ),
                SimulationConfig(hbm_slots=16, arbitration=arb),
                tag=f"job-{arb}",
            )
        )
    return jobs


def records_by_tag(records):
    return {r.job.tag: r for r in records}


def assert_same_metrics(records_a, records_b):
    by_tag = records_by_tag(records_b)
    assert set(records_by_tag(records_a)) == set(by_tag)
    for record in records_a:
        twin = by_tag[record.job.tag]
        for name in METRIC_FIELDS:
            assert getattr(record, name) == getattr(twin, name), name


class TestUriResolution:
    def test_parse_schemes(self, tmp_path):
        assert parse_store_uri("dir:/a/b") == ("dir", "/a/b")
        assert parse_store_uri("sqlite:/a/b.db") == ("sqlite", "/a/b.db")
        assert parse_store_uri("/bare/path") == ("dir", "/bare/path")
        # a single-letter "scheme" is a Windows drive, not a scheme
        assert parse_store_uri("C:\\x\\y") == ("dir", "C:\\x\\y")
        with pytest.raises(ValueError):
            parse_store_uri("redis:whatever")

    def test_open_store_dispatch(self, tmp_path):
        d = open_store(f"dir:{tmp_path / 'r'}")
        assert isinstance(d, DirectoryStore)
        s = open_store(f"sqlite:{tmp_path / 'r.db'}")
        assert isinstance(s, SQLiteStore)
        assert open_store(s) is s  # instance passthrough
        bare = open_store(tmp_path / "plain")
        assert isinstance(bare, DirectoryStore)
        s.close()

    def test_set_store_default_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert default_store_uri() is None
        previous = set_store_default(f"sqlite:{tmp_path / 'x.db'}")
        try:
            assert default_store_uri() == f"sqlite:{tmp_path / 'x.db'}"
        finally:
            set_store_default(previous)
        assert default_store_uri() is None
        monkeypatch.setenv(STORE_ENV, "dir:/from/env")
        assert default_store_uri() == "dir:/from/env"

    def test_set_store_default_validates(self):
        with pytest.raises(ValueError):
            set_store_default("redis:nope")

    def test_describe_is_canonical(self, tmp_path):
        assert DirectoryStore(tmp_path / "r").describe() == f"dir:{tmp_path / 'r'}"
        s = SQLiteStore(tmp_path / "r.db")
        assert s.describe() == f"sqlite:{tmp_path / 'r.db'}"
        s.close()


class TestEntryContract:
    def test_put_get_round_trip(self, store):
        payload = {"makespan": 12, "hit_rate": 0.5}
        store.put("a" * 32, payload)
        assert store.get("a" * 32) == payload
        assert store.get("b" * 32) is None
        assert len(store) == 1

    def test_get_many_returns_only_hits(self, store):
        store.put("a" * 32, {"makespan": 1})
        store.put("b" * 32, {"makespan": 2})
        found = store.get_many(["a" * 32, "b" * 32, "c" * 32])
        assert set(found) == {"a" * 32, "b" * 32}
        assert found["b" * 32]["makespan"] == 2

    def test_put_refuses_failed_payloads(self, store):
        with pytest.raises(ValueError):
            store.put("a" * 32, {"makespan": 0, "error": {"kind": "exception"}})

    def test_clear_counts_and_empties(self, store):
        store.put("a" * 32, {"makespan": 1})
        store.put("b" * 32, {"makespan": 2})
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get("a" * 32) is None

    def test_stats_surface(self, store):
        store.put("a" * 32, {"makespan": 1})
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["corrupt"] == 0
        assert stats["backend"] in ("dir", "sqlite")


class TestQuarantine:
    def test_dir_corrupt_entry_renamed_and_counted(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put("a" * 32, {"makespan": 1})
        bad = tmp_path / ("b" * 32 + ".json")
        bad.write_text("{truncated", encoding="utf-8")
        assert store.get("b" * 32) is None
        assert not bad.exists()
        assert bad.with_suffix(".corrupt").exists()
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert stats["entries"] == 1  # the good entry is untouched
        # a warm re-probe misses cleanly instead of re-parsing
        assert store.get("b" * 32) is None

    def test_sqlite_corrupt_row_moved_and_counted(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        store.put("a" * 32, {"makespan": 1})
        with sqlite3.connect(tmp_path / "s.db") as conn:
            conn.execute(
                "INSERT INTO results (key, payload) VALUES (?, ?)",
                ("b" * 32, "{truncated"),
            )
        assert store.get("b" * 32) is None
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert stats["entries"] == 1
        assert store.get_many(["a" * 32, "b" * 32]) == {
            "a" * 32: {"makespan": 1}
        }
        store.close()


class TestLegacyCompat:
    """The directory backend IS the historical ResultCache: same class,
    same ``<key>.json`` layout, same content-addressed keys — every
    cache written before the store abstraction existed stays warm."""

    def test_resultcache_alias(self):
        assert ResultCache is DirectoryStore

    def test_key_format_unchanged(self):
        spec = WorkloadSpec.make("adversarial_cycle", threads=2, pages=8)
        config = SimulationConfig(hbm_slots=16)
        key = sweep_result_key(spec, config)
        assert len(key) == 32
        assert key == sweep_result_key(spec, config)  # deterministic
        other = SimulationConfig(hbm_slots=32)
        assert key != sweep_result_key(spec, other)
        # an empty payload request leaves the slim key untouched
        assert key == sweep_result_key(spec, config, PayloadRequest())

    def test_legacy_layout_readable_through_uri(self, tmp_path):
        legacy = ResultCache(tmp_path / "results")
        legacy.put("a" * 32, {"makespan": 7})
        reopened = open_store(f"dir:{tmp_path / 'results'}")
        assert reopened.get("a" * 32) == {"makespan": 7}
        raw = json.loads(
            (tmp_path / "results" / ("a" * 32 + ".json")).read_text()
        )
        assert raw == {"makespan": 7}  # plain JSON file per entry


class TestCheckpoints:
    def checkpoint(self):
        jobs = tuple(
            {**sweep_job_to_dict(job), "key": f"{i:032d}"}
            for i, job in enumerate(demo_jobs())
        )
        return CampaignCheckpoint(
            campaign_id="camp-abc", label="camp", jobs=jobs,
            meta={"experiment_id": "fig9"},
        )

    def test_round_trip(self, store):
        ckpt = self.checkpoint()
        store.save_checkpoint(ckpt)
        loaded = store.load_checkpoint("camp-abc")
        assert loaded is not None
        assert loaded.campaign_id == "camp-abc"
        assert loaded.label == "camp"
        assert loaded.meta == {"experiment_id": "fig9"}
        assert loaded.job_keys == ckpt.job_keys
        rebuilt = [sweep_job_from_dict(j) for j in loaded.jobs]
        for original, twin in zip(demo_jobs(), rebuilt):
            assert original.tag == twin.tag
            assert sweep_result_key(
                original.workload, original.config, original.payload
            ) == sweep_result_key(twin.workload, twin.config, twin.payload)

    def test_write_once(self, store):
        ckpt = self.checkpoint()
        store.save_checkpoint(ckpt)
        store.save_checkpoint(
            CampaignCheckpoint(campaign_id="camp-abc", label="usurper")
        )
        assert store.load_checkpoint("camp-abc").label == "camp"

    def test_list_and_missing(self, store):
        assert store.load_checkpoint("nope") is None
        assert store.list_campaigns() == []
        store.save_checkpoint(self.checkpoint())
        assert store.list_campaigns() == ["camp-abc"]

    def test_frontier_marks_are_idempotent(self, store):
        store.mark_done("camp-abc", "a" * 32)
        store.mark_done("camp-abc", "a" * 32)
        store.mark_done("camp-abc", "b" * 32)
        assert store.done_keys("camp-abc") == {"a" * 32, "b" * 32}
        assert store.done_keys("other") == set()

    def test_dir_frontier_tolerates_torn_final_line(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.mark_done("camp", "a" * 32)
        log = tmp_path / "campaigns" / "camp" / "done.log"
        with open(log, "a", encoding="utf-8") as fh:
            fh.write("deadbeef")  # parent died mid-append
        assert store.done_keys("camp") == {"a" * 32}


class TestLeases:
    def test_claim_reclaim_release(self, store):
        assert store.claim("camp", "a" * 32)
        assert store.claim("camp", "a" * 32)  # our own lease: re-claim ok
        store.release("camp", "a" * 32)
        assert store.claim("camp", "a" * 32)

    def test_done_keys_cannot_be_claimed(self, store):
        store.mark_done("camp", "a" * 32)
        assert not store.claim("camp", "a" * 32)

    def test_dir_foreign_live_lease_blocks(self, tmp_path):
        store = DirectoryStore(tmp_path)
        lease = tmp_path / "campaigns" / "camp" / "leases" / ("a" * 32 + ".json")
        lease.parent.mkdir(parents=True)
        lease.write_text(
            json.dumps(
                {"host": "elsewhere", "pid": 1, "expires": time.time() + 600}
            )
        )
        assert not store.claim("camp", "a" * 32)

    def test_dir_stale_lease_is_stolen(self, tmp_path):
        store = DirectoryStore(tmp_path)
        lease = tmp_path / "campaigns" / "camp" / "leases" / ("a" * 32 + ".json")
        lease.parent.mkdir(parents=True)
        lease.write_text(
            json.dumps(
                {"host": "elsewhere", "pid": 1, "expires": time.time() - 1}
            )
        )
        assert store.claim("camp", "a" * 32)

    def test_sqlite_stale_lease_is_stolen(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        assert store.claim("camp", "a" * 32)  # force schema creation
        store.release("camp", "a" * 32)
        with sqlite3.connect(tmp_path / "s.db") as conn:
            conn.execute(
                "INSERT INTO leases (campaign, key, owner, expires)"
                " VALUES (?, ?, ?, ?)",
                (
                    "camp",
                    "b" * 32,
                    json.dumps({"host": "elsewhere", "pid": 1}),
                    time.time() - 1,
                ),
            )
        assert store.claim("camp", "b" * 32)
        store.close()

    def test_lease_staleness_rules(self):
        assert lease_is_stale({})  # no expiry at all
        assert lease_is_stale({"expires": time.time() - 1})
        assert not lease_is_stale(
            {"host": "definitely-elsewhere", "pid": 1, "expires": time.time() + 60}
        )


class TestShardParsing:
    def test_accepts_strings_and_pairs(self):
        assert parse_shard(None) is None
        assert parse_shard("") is None
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard((1, 3)) == (1, 3)
        assert parse_shard("0/1") == (0, 1)

    def test_rejects_bad_shapes(self):
        for bad in ("2/2", "-1/2", "0/0", "x/y", "1"):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestCampaignIds:
    def test_deterministic_and_label_prefixed(self):
        a = campaign_id_for("Fig 2a", ["k1", "k2"])
        assert a == campaign_id_for("Fig 2a", ["k2", "k1"])  # order-free
        assert a.startswith("Fig-2a-")
        assert a != campaign_id_for("Fig 2a", ["k1", "k3"])
        assert a != campaign_id_for("Fig 2b", ["k1", "k2"])


class TestRunnerAgainstBackends:
    def test_sqlite_store_runs_and_replays(self, tmp_path):
        jobs = demo_jobs()
        baseline = SweepRunner(
            processes=1, cache_dir=tmp_path / "dircache"
        ).run(jobs)
        store = SQLiteStore(tmp_path / "store.db")
        runner = SweepRunner(processes=1, store=store)
        fresh = runner.run(jobs, label="sqlite-run")
        assert runner.last_campaign.simulated == len(jobs)
        assert runner.last_campaign.store == f"sqlite:{tmp_path / 'store.db'}"
        assert runner.last_campaign.campaign_id
        assert_same_metrics(fresh, baseline)
        # warm replay off the database, bit-identical metrics
        replayer = SweepRunner(processes=1, store=store)
        warm = replayer.run(jobs, label="sqlite-run")
        assert replayer.last_campaign.cache_hits == len(jobs)
        assert replayer.last_campaign.resumed == 0  # complete => replay
        assert_same_metrics(warm, baseline)
        store.close()

    def test_store_uri_accepted_directly(self, tmp_path):
        jobs = demo_jobs()
        runner = SweepRunner(processes=1, store=f"sqlite:{tmp_path / 'u.db'}")
        runner.run(jobs, label="via-uri")
        reopened = SQLiteStore(tmp_path / "u.db")
        assert len(reopened) == len(jobs)
        reopened.close()

    def test_two_shards_cover_the_campaign(self, tmp_path):
        jobs = demo_jobs()
        baseline = SweepRunner(
            processes=1, cache_dir=tmp_path / "dircache"
        ).run(jobs)
        store_uri = f"sqlite:{tmp_path / 'shared.db'}"
        merged = []
        for shard in ("0/2", "1/2"):
            runner = SweepRunner(processes=1, store=store_uri, shard=shard)
            merged.extend(runner.run(jobs, label="sharded"))
            assert runner.last_campaign.shard == shard
        assert_same_metrics(merged, baseline)
        # the full unsharded pass over the shared store is pure replay
        final = SweepRunner(processes=1, store=store_uri)
        records = final.run(jobs, label="sharded")
        assert final.last_campaign.cache_hits == len(jobs)
        assert_same_metrics(records, baseline)

    def test_shard_requires_a_store(self):
        runner = SweepRunner(processes=1, result_cache=False, shard="0/2")
        with pytest.raises(ValueError):
            runner.run(demo_jobs())


class TestAsyncFrontend:
    def test_stream_yields_every_record(self, tmp_path):
        jobs = demo_jobs()
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        streamed = list(runner.stream(jobs, label="streamed"))
        assert {r.job.tag for r in streamed} == {j.tag for j in jobs}
        assert runner.last_campaign is not None

    def test_arun_and_astream(self, tmp_path):
        import asyncio

        jobs = demo_jobs()

        async def drive():
            runner = SweepRunner(processes=1, cache_dir=tmp_path)
            via_arun = await runner.arun(jobs, label="async")
            collected = []
            async for record in runner.astream(jobs, label="async"):
                collected.append(record)
            return via_arun, collected

        via_arun, collected = asyncio.run(drive())
        assert len(via_arun) == len(jobs)
        assert {r.job.tag for r in collected} == {j.tag for j in jobs}
