"""Tests for repro.core.metrics."""

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    HistogramStats,
    MetricsCollector,
    ThreadStats,
    histogram_stats,
    merge_histograms,
)
from repro.core.metrics import histogram_percentile


class TestHistogramStats:
    def test_empty(self):
        stats = histogram_stats({})
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_single_value(self):
        stats = histogram_stats({5: 3})
        assert stats.count == 3
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.min == stats.max == 5

    def test_known_values(self):
        # values: 1,1,2,4 -> mean 2, var (1+1+0+4)/4 = 1.5
        stats = histogram_stats({1: 2, 2: 1, 4: 1})
        assert stats.count == 4
        assert stats.mean == 2.0
        assert math.isclose(stats.variance, 1.5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(1, 100), min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        hist: dict[int, int] = {}
        for v in values:
            hist[v] = hist.get(v, 0) + 1
        stats = histogram_stats(hist)
        arr = np.asarray(values, dtype=float)
        assert stats.count == len(values)
        assert math.isclose(stats.mean, arr.mean(), rel_tol=1e-12)
        assert math.isclose(stats.std, arr.std(), rel_tol=1e-9, abs_tol=1e-12)
        assert stats.min == arr.min()
        assert stats.max == arr.max()


class TestMergeAndPercentile:
    def test_merge(self):
        merged = merge_histograms([{1: 2, 3: 1}, {1: 1, 4: 5}])
        assert merged == {1: 3, 3: 1, 4: 5}

    def test_merge_empty_list(self):
        assert merge_histograms([]) == {}

    def test_percentile_median(self):
        hist = {1: 5, 10: 5}
        assert histogram_percentile(hist, 0.5) == 1
        assert histogram_percentile(hist, 0.51) == 10
        assert histogram_percentile(hist, 1.0) == 10

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            histogram_percentile({1: 1}, 1.5)
        with pytest.raises(ValueError):
            histogram_percentile({}, 0.5)

    def test_percentile_extreme_fractions(self):
        hist = {2: 3, 7: 4, 11: 1}
        # fraction 0.0: the smallest value trivially covers >= 0 mass
        assert histogram_percentile(hist, 0.0) == 2
        # fraction 1.0: must reach the largest value exactly, with no
        # floating-point shortfall from threshold = 1.0 * total
        assert histogram_percentile(hist, 1.0) == 11

    def test_percentile_single_bucket(self):
        hist = {5: 9}
        for fraction in (0.0, 0.25, 0.5, 1.0):
            assert histogram_percentile(hist, fraction) == 5

    def test_single_bucket_stats_are_degenerate(self):
        stats = histogram_stats({4: 7})
        assert stats.count == 7
        assert stats.mean == 4.0
        assert stats.std == 0.0
        assert stats.min == stats.max == 4

    def test_merge_with_empty_inputs(self):
        # Empty member dicts contribute nothing and never corrupt counts.
        assert merge_histograms([{}, {}]) == {}
        assert merge_histograms([{}, {1: 2}, {}]) == {1: 2}
        # Merging must not mutate its inputs.
        left = {1: 1}
        merge_histograms([left, {1: 4}])
        assert left == {1: 1}


class TestThreadStats:
    def test_hit_rate_zero_requests(self):
        stats = ThreadStats(
            thread=0, requests=0, hits=0, completion_tick=0,
            response=HistogramStats(0, 0.0, 0.0, 0, 0),
        )
        assert stats.hit_rate == 0.0
        assert stats.misses == 0
        assert stats.starvation == 0

    def test_hit_rate_all_hits(self):
        stats = ThreadStats(
            thread=1, requests=10, hits=10, completion_tick=9,
            response=HistogramStats(10, 1.0, 0.0, 1, 1),
        )
        assert stats.hit_rate == 1.0
        assert stats.misses == 0


class TestMetricsCollector:
    def test_serve_accounting(self):
        mc = MetricsCollector(2)
        mc.record_serve(0, 1)
        mc.record_serve(0, 1)
        mc.record_serve(0, 4)
        mc.record_serve(1, 2)
        mc.record_completion(0, 10)
        mc.record_completion(1, 7)
        result = mc.finalize(makespan=10, ticks=10)
        assert result.total_requests == 4
        assert result.hits == 2
        assert result.misses == 2
        assert result.hit_rate == 0.5
        assert result.max_response == 4
        assert result.makespan == 10
        assert list(result.completion_ticks) == [10, 7]

    def test_per_thread_stats(self):
        mc = MetricsCollector(2)
        for w in (1, 1, 3):
            mc.record_serve(0, w)
        mc.record_serve(1, 7)
        result = mc.finalize(makespan=5, ticks=5)
        t0, t1 = result.thread_stats
        assert t0.requests == 3 and t0.hits == 2 and t0.misses == 1
        assert t0.starvation == 3
        assert t1.requests == 1 and t1.hits == 0
        assert t1.starvation == 7
        assert result.starvation == 7

    def test_inconsistency_is_population_std(self):
        mc = MetricsCollector(1)
        for w in (1, 1, 2, 4):
            mc.record_serve(0, w)
        result = mc.finalize(makespan=4, ticks=4)
        assert math.isclose(result.inconsistency, math.sqrt(1.5))
        assert math.isclose(result.mean_response, 2.0)

    def test_response_log_round_trip(self):
        mc = MetricsCollector(2, record_responses=True)
        mc.record_serve(0, 1)
        mc.record_serve(1, 9)
        mc.record_serve(0, 2)
        result = mc.finalize(makespan=3, ticks=3)
        assert list(result.response_log[0]) == [1, 2]
        assert list(result.response_log[1]) == [9]

    def test_log_agrees_with_histogram(self):
        rng = np.random.default_rng(0)
        mc = MetricsCollector(3, record_responses=True)
        for _ in range(500):
            mc.record_serve(int(rng.integers(3)), int(rng.integers(1, 20)))
        result = mc.finalize(makespan=1, ticks=1)
        all_w = np.concatenate(result.response_log)
        assert math.isclose(result.mean_response, all_w.mean())
        assert math.isclose(result.inconsistency, all_w.std())

    def test_result_picklable(self):
        mc = MetricsCollector(1)
        mc.record_serve(0, 1)
        result = mc.finalize(makespan=1, ticks=1)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.makespan == result.makespan
        assert clone.response_histogram == result.response_histogram

    def test_empty_threads(self):
        mc = MetricsCollector(2)
        result = mc.finalize(makespan=0, ticks=0)
        assert result.total_requests == 0
        assert result.hit_rate == 0.0
        assert result.mean_response == 0.0

    def test_summary_mentions_key_figures(self):
        mc = MetricsCollector(1)
        mc.record_serve(0, 1)
        text = mc.finalize(makespan=42, ticks=42).summary()
        assert "42" in text
        assert "inconsistency" in text
