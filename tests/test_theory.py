"""Tests for repro.theory (bounds, adversary, validation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationConfig, Simulator, run_simulation
from repro.theory import (
    check_cycle_response_bound,
    check_latency_bound,
    check_priority_competitiveness,
    competitive_ratio,
    cycle_response_time_bound,
    dpq_latency_bound,
    fcfs_gap_experiment,
    fit_linear,
    makespan_lower_bound,
    min_fetches_lower_bound,
)
from repro.traces import make_workload


class TestLowerBounds:
    def test_serial_bound(self):
        bound = makespan_lower_bound([np.arange(10)], hbm_slots=100)
        assert bound.serial == 11  # 10 refs + first cold miss

    def test_channel_bound(self):
        traces = [np.arange(i * 100, i * 100 + 10) for i in range(4)]
        bound = makespan_lower_bound(traces, hbm_slots=1000, channels=2)
        # 40 distinct pages over 2 channels + final serve
        assert bound.channel == 21

    def test_capacity_bound_on_cycles(self):
        # one thread cycling 10 pages 5 times with k=4: Belady/MIN
        # pins 3 pages and rotates through the other 7, missing 7 per
        # pass after the cold pass -> 10 + 4*... = 35 fetches minimum
        trace = np.tile(np.arange(10), 5)
        assert min_fetches_lower_bound([trace], hbm_slots=4) == 35

    def test_belady_misses_is_min(self):
        from repro.theory import belady_misses
        from repro.core import run_simulation

        rng = np.random.default_rng(7)
        trace = rng.integers(0, 24, size=600)
        floor = belady_misses(trace, 8)
        # no single-thread policy run can miss fewer times
        for replacement in ("lru", "fifo", "clock", "mru", "belady"):
            result = run_simulation(
                [trace.tolist()], hbm_slots=8, replacement=replacement
            )
            assert result.misses >= floor

    def test_belady_misses_basics(self):
        from repro.theory import belady_misses

        assert belady_misses([], 4) == 0
        assert belady_misses([1, 1, 1], 1) == 1
        assert belady_misses([1, 2, 3], 2) == 3
        with pytest.raises(ValueError):
            belady_misses([1], 0)

    def test_belady_stream_bound_tightness(self):
        from repro.theory import belady_misses

        # cycling 96 pages through 64 slots: MIN pins 63, rotates 33
        stream = np.arange(5000) % 96
        misses = belady_misses(stream, 64)
        assert misses > 1500  # far above the 96 compulsory misses

    def test_capacity_bound_ignored_when_fits(self):
        trace = np.tile(np.arange(10), 5)
        assert min_fetches_lower_bound([trace], hbm_slots=10) == 10

    def test_shared_workload_falls_back_to_compulsory(self):
        # two threads over the SAME pages: per-thread sums would
        # double-count, so only the compulsory bound applies
        trace = np.tile(np.arange(10), 5)
        assert min_fetches_lower_bound([trace, trace], hbm_slots=4) == 10

    def test_random_trace_bound_exceeds_compulsory_under_pressure(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 50, size=500)
        distinct = len(np.unique(trace))
        assert min_fetches_lower_bound([trace], hbm_slots=10) > distinct

    def test_empty_traces(self):
        bound = makespan_lower_bound([np.array([], dtype=np.int64)], hbm_slots=4)
        assert bound.value == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            makespan_lower_bound([np.arange(3)], hbm_slots=0)
        with pytest.raises(ValueError):
            makespan_lower_bound([np.arange(3)], hbm_slots=4, channels=0)
        with pytest.raises(ValueError):
            competitive_ratio(10, 0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 20), max_size=40), min_size=1, max_size=5
        ),
        st.integers(1, 8),
        st.integers(1, 3),
        st.sampled_from(["fifo", "priority", "round_robin"]),
    )
    def test_bound_is_sound(self, raw, k, q, arb):
        """No policy may beat the certified lower bound."""
        traces = [
            np.asarray([100 * i + page for page in t], dtype=np.int64)
            for i, t in enumerate(raw)
        ]
        bound = makespan_lower_bound(traces, hbm_slots=k, channels=q)
        result = run_simulation(traces, hbm_slots=k, channels=q, arbitration=arb)
        assert result.makespan >= bound.value

    def test_cyclic_capacity_bound_sound_against_best_policy(self):
        """Even Belady+priority cannot beat the cyclic fetch bound."""
        traces = [np.tile(np.arange(16), 6) + 100 * i for i in range(3)]
        k = 8
        bound = makespan_lower_bound(traces, hbm_slots=k)
        for replacement in ("lru", "mru", "belady"):
            result = run_simulation(
                traces, hbm_slots=k, replacement=replacement,
                arbitration="priority",
            )
            assert result.makespan >= bound.value
            assert result.fetches >= min_fetches_lower_bound(traces, k)


class TestFitLinear:
    def test_exact_line(self):
        slope, intercept, r2 = fit_linear([1, 2, 3], [3, 5, 7])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])

    def test_flat_data(self):
        slope, _, r2 = fit_linear([1, 2, 3], [5, 5, 5])
        assert slope == pytest.approx(0.0)
        assert r2 == pytest.approx(1.0)


class TestAdversary:
    def test_gap_experiment_structure(self):
        points = fcfs_gap_experiment([2, 4], pages_per_thread=16, repeats=4)
        assert [pt.threads for pt in points] == [2, 4]
        for pt in points:
            assert pt.fifo_makespan >= pt.priority_makespan > 0
            assert pt.hbm_slots == pt.threads * 4  # quarter of unique

    def test_gap_grows_with_threads(self):
        points = fcfs_gap_experiment([4, 16], pages_per_thread=32, repeats=12)
        assert points[1].gap > points[0].gap

    def test_fifo_zero_hits_under_pressure(self):
        points = fcfs_gap_experiment([8], pages_per_thread=32, repeats=8)
        assert points[0].fifo_hit_rate == 0.0


class TestValidation:
    def test_priority_competitiveness_rows(self):
        wl = make_workload("random", threads=4, seed=0, length=400, pages=16)
        rows = check_priority_competitiveness([wl], hbm_slots=[8], channels=[1, 2])
        assert len(rows) == 2
        for row in rows:
            assert row.ratio >= 1.0  # cannot beat the lower bound
            assert row.makespan == pytest.approx(row.ratio * row.lower_bound)

    def test_cycle_response_bound_formula(self):
        assert cycle_response_time_bound(4, 10) == 42
        with pytest.raises(ValueError):
            cycle_response_time_bound(0, 10)

    def test_cycle_response_bound_uses_channels(self):
        # Regression: channels was accepted but ignored, so the
        # multi-channel bound was stuck at the q=1 value.
        assert cycle_response_time_bound(4, 10, channels=1) == 42  # unchanged
        assert cycle_response_time_bound(4, 10, channels=2) == 22  # ceil(4/2)*10+2
        assert cycle_response_time_bound(4, 10, channels=3) == 22  # ceil(4/3)=2
        assert cycle_response_time_bound(4, 10, channels=4) == 12
        with pytest.raises(ValueError):
            cycle_response_time_bound(4, 10, channels=0)

    @pytest.mark.parametrize("q", [2, 3])
    def test_tightened_bound_still_holds_empirically(self, q):
        wl = make_workload("adversarial_cycle", threads=6, pages=16, repeats=8)
        k, T = 24, 48
        result = Simulator(
            wl.traces,
            SimulationConfig(
                hbm_slots=k,
                channels=q,
                arbitration="cycle_priority",
                remap_period=T,
            ),
        ).run()
        assert check_cycle_response_bound(result, 6, T, channels=q)
        # and the tightened bound really is tighter than p*T+2
        assert cycle_response_time_bound(6, T, channels=q) < 6 * T + 2

    def test_cycle_response_bound_holds_empirically(self):
        wl = make_workload("adversarial_cycle", threads=6, pages=16, repeats=8)
        k, T = 24, 48
        result = Simulator(
            wl.traces,
            SimulationConfig(
                hbm_slots=k,
                arbitration="cycle_priority",
                remap_period=T,
            ),
        ).run()
        assert check_cycle_response_bound(result, 6, T)
        assert result.max_response <= 6 * T + 2

    def test_dpq_latency_bound_formula(self):
        assert dpq_latency_bound(1) == 2  # alone: fetch + serve
        assert dpq_latency_bound(6) == 7
        assert dpq_latency_bound(6, channels=2) == 4  # floor(5/2)+2
        assert dpq_latency_bound(6, channels=5) == 3
        with pytest.raises(ValueError):
            dpq_latency_bound(0)
        with pytest.raises(ValueError):
            dpq_latency_bound(4, channels=0)

    def test_dpq_latency_bound_holds_empirically(self):
        wl = make_workload("random", threads=6, seed=0, length=400, pages=16)
        result = Simulator(
            wl.traces,
            SimulationConfig(hbm_slots=16, channels=2, arbitration="dpq"),
        ).run()
        assert check_latency_bound(result, 6, channels=2)
        # the bound is tight here: measured worst response reaches it
        assert result.max_response == dpq_latency_bound(6, channels=2)

    def test_mis_set_latency_bound_is_caught(self):
        # a deliberately wrong parameterization (claiming more channels
        # than the run had) yields a bound below the measured worst
        # response, and the checker must flag it
        wl = make_workload("random", threads=6, seed=0, length=400, pages=16)
        result = Simulator(
            wl.traces,
            SimulationConfig(hbm_slots=16, channels=2, arbitration="dpq"),
        ).run()
        assert not check_latency_bound(result, 6, channels=5)

    def test_competitiveness_skips_degenerate_workloads(self):
        # Regression: a zero makespan lower bound (empty traces) used
        # to crash the harness with competitive_ratio's ValueError.
        import logging

        from repro.obs.log import get_logger, reset_warn_once
        from repro.traces.base import Workload

        empty = Workload(
            [np.array([], dtype=np.int64), np.array([], dtype=np.int64)],
            name="empty",
        )
        reset_warn_once()
        captured: list[str] = []
        handler = logging.Handler()
        handler.emit = lambda rec: captured.append(rec.getMessage())
        logger = get_logger("theory")
        logger.addHandler(handler)
        try:
            rows = check_priority_competitiveness(
                [empty], hbm_slots=[8], channels=[1, 2]
            )
        finally:
            logger.removeHandler(handler)
        assert rows == []
        assert len(captured) == 1
        assert "empty" in captured[0]

    def test_competitiveness_mixes_degenerate_and_real_workloads(self):
        # the degenerate workload is skipped; the real one still rows
        from repro.obs.log import reset_warn_once
        from repro.traces.base import Workload

        reset_warn_once()
        empty = Workload([np.array([], dtype=np.int64)], name="empty")
        real = make_workload("random", threads=4, seed=0, length=400, pages=16)
        rows = check_priority_competitiveness(
            [empty, real], hbm_slots=[8], channels=[1]
        )
        assert [r.workload for r in rows] == [real.name]
