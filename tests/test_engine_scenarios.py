"""Scenario and consistency tests for the engine beyond the basics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationConfig, Simulator, run_simulation
from repro.theory import makespan_lower_bound
from repro.traces import make_workload


class TestResponseLogConsistency:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.lists(st.integers(0, 10), max_size=25), min_size=1, max_size=4),
        st.integers(1, 6),
        st.sampled_from(["fifo", "priority", "random"]),
    )
    def test_log_matches_histogram(self, raw, k, arb):
        traces = [[100 * i + p for p in t] for i, t in enumerate(raw)]
        result = run_simulation(
            traces, hbm_slots=k, arbitration=arb, record_responses=True, seed=2
        )
        all_w = (
            np.concatenate(result.response_log)
            if any(len(log) for log in result.response_log)
            else np.array([])
        )
        rebuilt: dict[int, int] = {}
        for w in all_w.tolist():
            rebuilt[w] = rebuilt.get(w, 0) + 1
        assert rebuilt == result.response_histogram

    def test_per_thread_log_lengths(self):
        traces = [[0, 1, 2], [10], []]
        result = run_simulation(traces, hbm_slots=8, record_responses=True)
        assert [len(log) for log in result.response_log] == [3, 1, 0]


class TestChannelsAndRemapInteractions:
    def test_many_channels_with_dynamic_priority(self):
        wl = make_workload("adversarial_cycle", threads=12, pages=16, repeats=6)
        result = run_simulation(
            wl.traces,
            hbm_slots=48,
            channels=5,
            arbitration="dynamic_priority",
            remap_period=48,
            seed=4,
        )
        assert result.total_requests == wl.total_references
        assert result.remap_count >= 1

    def test_remap_every_tick(self):
        wl = make_workload("random", threads=6, length=200, pages=16)
        result = run_simulation(
            wl.traces,
            hbm_slots=24,
            arbitration="dynamic_priority",
            remap_period=1,
            seed=0,
        )
        assert result.remap_count == result.ticks

    def test_q_exceeding_thread_count(self):
        traces = [[i] for i in range(3)]
        result = run_simulation(traces, hbm_slots=8, channels=16)
        assert result.makespan == 2  # all fetched in one tick, served next

    @pytest.mark.parametrize("q", [1, 2, 3, 7])
    def test_more_channels_never_slow_fifo(self, q):
        wl = make_workload("adversarial_cycle", threads=8, pages=16, repeats=5)
        base = run_simulation(wl.traces, hbm_slots=32, channels=1)
        faster = run_simulation(wl.traces, hbm_slots=32, channels=q)
        assert faster.makespan <= base.makespan


class TestTimelineSemantics:
    def test_queue_column_bounded_by_threads(self):
        wl = make_workload("adversarial_cycle", threads=6, pages=12, repeats=4)
        result = run_simulation(
            wl.traces,
            hbm_slots=18,
            collect_timeline=True,
            timeline_stride=1,
        )
        queue = result.timeline[:, 1]
        assert queue.max() <= 6  # one outstanding request per core
        ready = result.timeline[:, 3]
        assert ready.max() <= 6

    def test_occupancy_never_exceeds_capacity_and_fills(self):
        wl = make_workload("random", threads=4, length=300, pages=30)
        result = run_simulation(
            wl.traces, hbm_slots=10, collect_timeline=True, timeline_stride=1
        )
        occupancy = result.timeline[:, 2]
        assert occupancy.max() == 10  # fills under pressure
        assert occupancy.min() >= 0


class TestLowerBoundIntegration:
    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(["random", "zipf", "stream", "adversarial_cycle"]),
        st.integers(1, 3),
        st.sampled_from(["fifo", "priority", "dynamic_priority"]),
    )
    def test_no_generated_workload_beats_the_bound(self, kind, q, arb):
        kwargs = (
            dict(pages=12, repeats=4)
            if kind == "adversarial_cycle"
            else dict(length=150, pages=12)
        )
        wl = make_workload(kind, threads=4, seed=1, **kwargs)
        bound = makespan_lower_bound(wl.traces, hbm_slots=8, channels=q)
        result = run_simulation(
            wl.traces,
            hbm_slots=8,
            channels=q,
            arbitration=arb,
            remap_period=80 if arb == "dynamic_priority" else None,
            seed=1,
        )
        assert result.makespan >= bound.value


class TestBeladyEngineWiring:
    def test_belady_beats_lru_on_cyclic_pressure(self):
        # cyclic scans are LRU's worst case and MIN's showcase
        trace = list(range(12)) * 8
        lru = run_simulation([trace], hbm_slots=6, replacement="lru")
        belady = run_simulation([trace], hbm_slots=6, replacement="belady")
        assert lru.hits == 0
        assert belady.hits > 30

    def test_belady_multithread_completes(self):
        wl = make_workload("random", threads=4, length=200, pages=24)
        result = run_simulation(wl.traces, hbm_slots=12, replacement="belady")
        assert result.total_requests == wl.total_references


class TestWallTimeAndConfigEcho:
    def test_result_carries_config_and_walltime(self):
        cfg = SimulationConfig(hbm_slots=4, seed=9)
        result = Simulator([[0, 1]], cfg).run()
        assert result.config == cfg
        assert result.wall_time_s > 0
