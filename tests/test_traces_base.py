"""Tests for repro.traces.base (Trace / Workload / factory)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    Trace,
    Workload,
    coalesce_consecutive,
    make_workload,
    workload_kinds,
)


class TestCoalesce:
    def test_empty(self):
        assert len(coalesce_consecutive(np.array([], dtype=np.int64))) == 0

    def test_collapses_runs(self):
        pages = np.array([1, 1, 1, 2, 2, 1, 3, 3, 3, 3])
        assert list(coalesce_consecutive(pages)) == [1, 2, 1, 3]

    def test_no_adjacent_duplicates_is_identity(self):
        pages = np.array([1, 2, 3, 1, 2])
        assert list(coalesce_consecutive(pages)) == [1, 2, 3, 1, 2]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=100))
    def test_result_has_no_adjacent_duplicates(self, pages):
        out = coalesce_consecutive(np.asarray(pages, dtype=np.int64))
        assert all(out[i] != out[i + 1] for i in range(len(out) - 1))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=100))
    def test_idempotent_and_preserves_unique_set(self, pages):
        arr = np.asarray(pages, dtype=np.int64)
        once = coalesce_consecutive(arr)
        assert list(coalesce_consecutive(once)) == list(once)
        assert set(once.tolist()) == set(arr.tolist())


class TestTrace:
    def test_basic_properties(self):
        t = Trace([3, 3, 5, 7], source="x")
        assert len(t) == 4
        assert t.unique_pages == 3
        assert t.pages.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Trace(np.zeros((2, 2)))

    def test_renumbered_compacts_ids(self):
        t = Trace([100, 5, 100, 42])
        new, u = t.renumbered(offset=10)
        assert u == 3
        assert set(new.pages.tolist()) == {10, 11, 12}
        # same structure: equal pages stay equal
        assert new.pages[0] == new.pages[2]

    def test_renumbered_empty(self):
        t = Trace([])
        new, u = t.renumbered()
        assert u == 0 and len(new) == 0

    def test_coalesced_keeps_metadata(self):
        t = Trace([1, 1, 2], source="s", params={"a": 1})
        c = t.coalesced()
        assert c.source == "s"
        assert c.params["coalesced"] is True
        assert list(c.pages) == [1, 2]


class TestWorkload:
    def test_namespaces_are_disjoint(self):
        wl = Workload([[1, 2, 3], [1, 2, 3], [2, 2]])
        sets = [set(t.tolist()) for t in wl.traces]
        assert sets[0].isdisjoint(sets[1])
        assert sets[1].isdisjoint(sets[2])
        assert wl.total_unique_pages == 7

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Workload([])

    def test_lengths_and_totals(self):
        wl = Workload([[1, 2], [3, 3, 3]])
        assert wl.lengths == (2, 3)
        assert wl.total_references == 5
        assert wl.max_length == 3
        assert wl.num_threads == 2

    def test_unique_pages_per_thread(self):
        wl = Workload([[1, 1, 2], [5]])
        assert wl.unique_pages_per_thread() == (2, 1)

    def test_coalesce_option(self):
        wl = Workload([[1, 1, 2, 2]], coalesce=True)
        assert wl.lengths == (2,)

    def test_subset(self):
        wl = Workload([[1], [2], [3]])
        sub = wl.subset(2)
        assert sub.num_threads == 2
        assert sub.total_references == 2
        with pytest.raises(ValueError):
            wl.subset(4)
        with pytest.raises(ValueError):
            wl.subset(0)

    def test_repr_mentions_shape(self):
        text = repr(Workload([[1, 2]], name="demo"))
        assert "demo" in text and "threads=1" in text


class TestFactory:
    def test_kinds_registered(self):
        kinds = workload_kinds()
        for expected in (
            "sort",
            "quicksort",
            "mergesort",
            "spgemm",
            "densemm",
            "adversarial_cycle",
            "random",
            "zipf",
            "stream",
            "stride",
            "phased",
        ):
            assert expected in kinds

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            make_workload("nope", threads=1)

    def test_bad_thread_count(self):
        with pytest.raises(ValueError, match="threads"):
            make_workload("random", threads=0)

    def test_deterministic(self):
        a = make_workload("random", threads=3, seed=11, length=50, pages=9)
        b = make_workload("random", threads=3, seed=11, length=50, pages=9)
        for ta, tb in zip(a.traces, b.traces):
            assert np.array_equal(ta, tb)

    def test_seed_changes_content(self):
        a = make_workload("random", threads=2, seed=1, length=50, pages=9)
        b = make_workload("random", threads=2, seed=2, length=50, pages=9)
        assert any(
            not np.array_equal(ta, tb) for ta, tb in zip(a.traces, b.traces)
        )

    def test_thread_prefix_property(self):
        """make_workload(k, 8, s).subset(4) == make_workload(k, 4, s)."""
        big = make_workload("random", threads=8, seed=4, length=30, pages=7)
        small = make_workload("random", threads=4, seed=4, length=30, pages=7)
        for ta, tb in zip(big.subset(4).traces, small.traces):
            assert np.array_equal(ta, tb)
