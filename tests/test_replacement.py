"""Tests for repro.core.replacement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replacement import (
    BeladyPolicy,
    ClockPolicy,
    FIFOReplacementPolicy,
    LRUPolicy,
    MRUPolicy,
    RandomPolicy,
    make_replacement_policy,
)

ALL_NAMES = ["lru", "fifo", "clock", "random", "mru", "belady"]


@pytest.fixture(params=ALL_NAMES)
def any_policy(request):
    return make_replacement_policy(request.param, capacity=4)


class TestFactory:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_builds_each_policy(self, name):
        policy = make_replacement_policy(name, 8)
        assert policy.name == name
        assert policy.capacity == 8

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_replacement_policy("nope", 8)

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            make_replacement_policy("lru", 0)


class TestCommonBehaviour:
    def test_insert_makes_resident(self, any_policy):
        any_policy.insert(42)
        assert 42 in any_policy
        assert 42 in any_policy.residency
        assert len(any_policy) == 1
        assert any_policy.free_slots == 3

    def test_double_insert_rejected(self, any_policy):
        any_policy.insert(1)
        with pytest.raises(ValueError, match="already resident"):
            any_policy.insert(1)

    def test_insert_beyond_capacity_rejected(self, any_policy):
        for page in range(4):
            any_policy.insert(page)
        with pytest.raises(ValueError, match="full"):
            any_policy.insert(99)

    def test_remove(self, any_policy):
        any_policy.insert(7)
        any_policy.remove(7)
        assert 7 not in any_policy
        assert len(any_policy) == 0

    def test_evict_empty_returns_none(self, any_policy):
        assert any_policy.evict() is None

    def test_evict_reduces_len_and_returns_resident_page(self, any_policy):
        for page in (10, 20, 30):
            any_policy.insert(page)
        victim = any_policy.evict()
        assert victim in (10, 20, 30)
        assert victim not in any_policy
        assert len(any_policy) == 2

    def test_evict_respects_protected(self, any_policy):
        for page in (1, 2, 3):
            any_policy.insert(page)
        victim = any_policy.evict(protected={1, 2})
        assert victim == 3

    def test_evict_all_protected_returns_none(self, any_policy):
        for page in (1, 2, 3):
            any_policy.insert(page)
        assert any_policy.evict(protected={1, 2, 3}) is None
        # nothing lost
        assert sorted(any_policy.pages()) == [1, 2, 3]

    def test_clear(self, any_policy):
        for page in (1, 2):
            any_policy.insert(page)
        any_policy.clear()
        assert len(any_policy) == 0

    def test_touch_fast_matches_touch_contract(self, any_policy):
        """touch_fast, when set, must behave like touch on a resident page."""
        any_policy.insert(5)
        if any_policy.touch_fast is not None:
            any_policy.touch_fast(5)
        assert 5 in any_policy


class TestLRU:
    def test_evicts_least_recently_used(self):
        lru = LRUPolicy(3)
        for page in (1, 2, 3):
            lru.insert(page)
        lru.touch(1)  # order now 2, 3, 1
        assert lru.evict() == 2
        assert lru.evict() == 3
        assert lru.evict() == 1

    def test_insert_counts_as_most_recent(self):
        lru = LRUPolicy(3)
        lru.insert(1)
        lru.insert(2)
        lru.touch(1)
        lru.insert(3)  # order 2, 1, 3
        assert lru.evict() == 2

    def test_protected_preserves_recency_order(self):
        lru = LRUPolicy(4)
        for page in (1, 2, 3, 4):
            lru.insert(page)
        assert lru.evict(protected={1, 2}) == 3
        # 1 and 2 must still be evicted in their original LRU order
        assert lru.evict() == 1
        assert lru.evict() == 2

    def test_sequential_cycle_with_small_cache_always_misses(self):
        """Classic LRU pathology: cycling N+1 pages through N slots."""
        lru = LRUPolicy(3)
        resident = set()
        misses = 0
        for page in list(range(4)) * 5:
            if page in lru:
                lru.touch(page)
            else:
                misses += 1
                if lru.free_slots == 0:
                    victim = lru.evict()
                    resident.discard(victim)
                lru.insert(page)
                resident.add(page)
        assert misses == 20  # every access misses


class TestFIFOReplacement:
    def test_hits_do_not_reorder(self):
        fifo = FIFOReplacementPolicy(3)
        for page in (1, 2, 3):
            fifo.insert(page)
        fifo.touch(1)
        fifo.touch(1)
        assert fifo.evict() == 1  # still first in


class TestMRU:
    def test_evicts_most_recent(self):
        mru = MRUPolicy(3)
        for page in (1, 2, 3):
            mru.insert(page)
        assert mru.evict() == 3
        mru.insert(4)
        mru.touch(1)
        assert mru.evict() == 1


class TestClock:
    def test_second_chance(self):
        clock = ClockPolicy(3)
        for page in (1, 2, 3):
            clock.insert(page)
        # all have ref=1; a sweep clears them and evicts the first
        assert clock.evict() == 1
        clock.insert(4)  # ref=1
        clock.touch(2)
        # 3 had its bit cleared by the earlier sweep; 2 and 4 are referenced
        assert clock.evict() == 3

    def test_hand_wraps(self):
        clock = ClockPolicy(2)
        clock.insert(1)
        clock.insert(2)
        assert clock.evict() in (1, 2)
        clock.insert(3)
        for _ in range(3):
            victim = clock.evict()
            assert victim is not None
            clock.insert(victim)  # round-trip the same pages

    def test_protected_skipped_without_losing_pages(self):
        clock = ClockPolicy(3)
        for page in (1, 2, 3):
            clock.insert(page)
        assert clock.evict(protected={1, 2}) == 3
        assert sorted(clock.pages()) == [1, 2]


class TestRandom:
    def test_deterministic_with_seeded_rng(self):
        a = RandomPolicy(8, rng=np.random.default_rng(1))
        b = RandomPolicy(8, rng=np.random.default_rng(1))
        for page in range(8):
            a.insert(page)
            b.insert(page)
        assert [a.evict() for _ in range(8)] == [b.evict() for _ in range(8)]

    def test_swap_remove_keeps_index_consistent(self):
        pol = RandomPolicy(8, rng=np.random.default_rng(0))
        for page in range(6):
            pol.insert(page)
        pol.remove(0)  # last element swaps into slot 0
        assert 0 not in pol
        assert len(pol) == 5
        remaining = set(pol.pages())
        for page in list(remaining):
            pol.remove(page)
        assert len(pol) == 0

    def test_protected_scan_fallback(self):
        pol = RandomPolicy(4, rng=np.random.default_rng(0))
        for page in range(4):
            pol.insert(page)
        assert pol.evict(protected={0, 1, 2}) == 3


class TestBelady:
    def test_evicts_furthest_future(self):
        bel = BeladyPolicy(3)
        for page in (1, 2, 3):
            bel.insert(page)
        bel.set_future(1, 10)
        bel.set_future(2, 100)
        bel.set_future(3, 5)
        assert bel.evict() == 2

    def test_never_used_again_is_first_victim(self):
        bel = BeladyPolicy(3)
        for page in (1, 2, 3):
            bel.insert(page)
        bel.set_future(1, 4)
        bel.set_future(2, None)  # never again
        bel.set_future(3, 7)
        assert bel.evict() == 2

    def test_stale_heap_entries_skipped(self):
        bel = BeladyPolicy(2)
        bel.insert(1)
        bel.insert(2)
        bel.set_future(1, 100)
        bel.set_future(1, 3)  # fresher, nearer
        bel.set_future(2, 50)
        assert bel.evict() == 2

    def test_protected_entries_restored(self):
        bel = BeladyPolicy(3)
        for page in (1, 2, 3):
            bel.insert(page)
        bel.set_future(1, 30)
        bel.set_future(2, 20)
        bel.set_future(3, 10)
        assert bel.evict(protected={1}) == 2
        assert bel.evict() == 1  # still evictable afterwards, in order


# -- property-based invariants -------------------------------------------


@st.composite
def policy_operations(draw):
    """A capacity and a page-access sequence."""
    capacity = draw(st.integers(min_value=1, max_value=8))
    ops = draw(st.lists(st.integers(min_value=0, max_value=15), max_size=60))
    return capacity, ops


@settings(max_examples=60, deadline=None)
@given(policy_operations(), st.sampled_from(ALL_NAMES))
def test_policy_never_exceeds_capacity_and_stays_consistent(case, name):
    """Driving any policy with a demand-paging loop keeps invariants."""
    capacity, ops = case
    policy = make_replacement_policy(name, capacity, rng=np.random.default_rng(0))
    shadow: set[int] = set()
    for page in ops:
        if page in policy:
            policy.touch(page)
        else:
            if policy.free_slots == 0:
                victim = policy.evict()
                assert victim in shadow
                shadow.discard(victim)
            policy.insert(page)
            shadow.add(page)
            if name == "belady":
                policy.set_future(page, page)
        assert len(policy) == len(shadow) <= capacity
        assert set(policy.pages()) == shadow


@settings(max_examples=40, deadline=None)
@given(policy_operations())
def test_lru_matches_reference_model(case):
    """LRUPolicy agrees with a straightforward recency-list reference."""
    capacity, ops = case
    policy = LRUPolicy(capacity)
    recency: list[int] = []  # front = LRU
    for page in ops:
        if page in policy:
            policy.touch(page)
            recency.remove(page)
            recency.append(page)
        else:
            if policy.free_slots == 0:
                victim = policy.evict()
                assert victim == recency.pop(0)
            policy.insert(page)
            recency.append(page)
