"""Tests for repro.traces.characterize (locality analysis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_simulation
from repro.traces import (
    characterize,
    cyclic_trace,
    miss_ratio_curve,
    reuse_distances,
    working_set_profile,
)


class TestReuseDistances:
    def test_cold_references_are_minus_one(self):
        assert list(reuse_distances([1, 2, 3])) == [-1, -1, -1]

    def test_immediate_reuse_is_zero(self):
        assert list(reuse_distances([1, 1])) == [-1, 0]

    def test_textbook_example(self):
        # a b c a : distance of the second a is 2 (b and c in between)
        assert list(reuse_distances([1, 2, 3, 1])) == [-1, -1, -1, 2]

    def test_duplicates_between_count_once(self):
        # a b b a : only one distinct page between the two a's
        assert list(reuse_distances([1, 2, 2, 1])) == [-1, -1, 0, 1]

    def test_cyclic_distance_is_m_minus_one(self):
        trace = cyclic_trace(8, 3).pages
        distances = reuse_distances(trace)
        assert (distances[8:] == 7).all()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 10), max_size=120))
    def test_distances_bounded_by_distinct_pages(self, trace):
        distances = reuse_distances(np.asarray(trace, dtype=np.int64))
        if len(trace):
            assert distances.max(initial=-1) < max(len(set(trace)), 1)
            # cold count equals distinct count
            assert (distances == -1).sum() == len(set(trace))


class TestMissRatioCurve:
    def test_monotone_nonincreasing_in_capacity(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 40, size=800)
        curve = miss_ratio_curve(trace, [1, 2, 4, 8, 16, 32, 64])
        ratios = [r for _, r in curve]
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_matches_actual_lru_simulation(self):
        """Mattson stack analysis == counting misses in a real LRU run."""
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 30, size=500).tolist()
        for k in (2, 8, 16):
            predicted = dict(miss_ratio_curve(trace, [k]))[k]
            result = run_simulation([trace], hbm_slots=k)
            assert result.misses / result.total_requests == pytest.approx(
                predicted
            )

    def test_cyclic_cliff(self):
        trace = cyclic_trace(16, 10).pages
        curve = dict(miss_ratio_curve(trace, [15, 16]))
        assert curve[15] == 1.0  # LRU cyclic pathology
        assert curve[16] == pytest.approx(0.1)  # cold misses only

    def test_empty_trace(self):
        assert miss_ratio_curve([], [4]) == [(4, 0.0)]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            miss_ratio_curve([1], [0])


class TestWorkingSetProfile:
    def test_window_partitioning(self):
        trace = [1, 1, 2, 3, 3, 3]
        assert list(working_set_profile(trace, 3)) == [2, 1]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            working_set_profile([1], 0)

    def test_phased_trace_shows_shift(self):
        from repro.traces import phased_trace

        trace = phased_trace(3, 200, 16, np.random.default_rng(0)).pages
        profile = working_set_profile(trace, 200)
        assert len(profile) == 3
        assert profile.max() <= 16


class TestCharacterize:
    def test_empty(self):
        profile = characterize([])
        assert profile.references == 0
        assert profile.unique_pages == 0

    def test_cyclic_profile(self):
        trace = cyclic_trace(64, 10).pages
        profile = characterize(trace, capacities=(32, 64), window=64)
        assert profile.unique_pages == 64
        assert profile.cold_fraction == pytest.approx(0.1)
        assert profile.lru_miss_ratio_at[32] == 1.0
        assert profile.lru_miss_ratio_at[64] == pytest.approx(0.1)
        assert profile.max_window_working_set == 64

    def test_summary_renders(self):
        text = characterize([1, 2, 1, 2], capacities=(2,), window=2).summary()
        assert "miss ratio" in text
        assert "references" in text

    def test_sort_trace_is_cache_friendly(self):
        """Introsort has short reuse distances — the reason its fig2b
        crossover needs tiny HBM sizes (EXPERIMENTS.md design note)."""
        from repro.traces import introsort_trace

        trace = introsort_trace(400, seed=0, page_bytes=256).pages
        profile = characterize(trace, capacities=(8, 64), window=256)
        assert profile.median_reuse_distance < 8
        assert profile.lru_miss_ratio_at[64] < 0.05
