"""Tests for repro.traces.instrument."""

import numpy as np
import pytest

from repro.traces.instrument import AccessLogger, LoggingArray


class TestAccessLogger:
    def test_page_aligned_allocation(self):
        logger = AccessLogger(page_bytes=128)
        a = logger.allocate_bytes(100)
        b = logger.allocate_bytes(1)
        assert a == 0
        assert b == 128  # next page boundary

    def test_zero_byte_allocation_still_reserves_a_page(self):
        logger = AccessLogger(page_bytes=64)
        a = logger.allocate_bytes(0)
        b = logger.allocate_bytes(8)
        assert b - a == 64

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            AccessLogger().allocate_bytes(-1)

    def test_bad_page_bytes_rejected(self):
        with pytest.raises(ValueError):
            AccessLogger(page_bytes=0)

    def test_record_and_len(self):
        logger = AccessLogger()
        logger.record(0)
        logger.record(5000)
        assert len(logger) == 2

    def test_pause_resume(self):
        logger = AccessLogger()
        logger.record(1)
        logger.pause()
        logger.record(2)
        logger.resume()
        logger.record(3)
        assert logger.addresses == [1, 3]

    def test_to_trace_maps_addresses_to_pages(self):
        logger = AccessLogger(page_bytes=100)
        for addr in (0, 99, 100, 250):
            logger.record(addr)
        trace = logger.to_trace(source="t")
        assert list(trace.pages) == [0, 0, 1, 2]
        assert trace.params["raw_accesses"] == 4
        assert trace.source == "t"


class TestLoggingArray:
    def test_reads_and_writes_logged(self):
        logger = AccessLogger(page_bytes=64)
        a = logger.array([10, 20, 30], itemsize=8)
        assert a[0] == 10
        a[2] = 99
        assert a[2] == 99
        assert logger.addresses == [a.base, a.base + 16, a.base + 16]

    def test_negative_indexing(self):
        logger = AccessLogger()
        a = logger.array([1, 2, 3])
        assert a[-1] == 3
        assert logger.addresses == [a.base + 16]

    def test_out_of_range_does_not_log(self):
        logger = AccessLogger()
        a = logger.array([1])
        with pytest.raises(IndexError):
            a[5]
        assert len(logger) == 0

    def test_distinct_arrays_get_distinct_pages(self):
        logger = AccessLogger(page_bytes=4096)
        a = logger.array([1] * 4)
        b = logger.array([2] * 4)
        _ = a[0]
        _ = b[0]
        trace = logger.to_trace()
        assert trace.pages[0] != trace.pages[1]

    def test_iteration_logs_every_element(self):
        logger = AccessLogger()
        a = logger.array([5, 6, 7])
        assert list(a) == [5, 6, 7]
        assert len(logger) == 3

    def test_swap(self):
        logger = AccessLogger()
        a = logger.array([1, 2])
        a.swap(0, 1)
        assert a.peek() == [2, 1]
        assert len(logger) == 4  # two reads + two writes

    def test_append_within_capacity(self):
        logger = AccessLogger(page_bytes=64)
        a = logger.array(0, capacity=8)
        for i in range(8):
            a.append(i)
        assert a.peek() == list(range(8))
        assert len(logger) == 8

    def test_append_overflow_raises(self):
        logger = AccessLogger(page_bytes=16)
        a = logger.array([0, 0], itemsize=8)  # exactly one 16-byte page
        with pytest.raises(ValueError, match="overflow"):
            a.append(1)

    def test_int_allocation_zero_fills(self):
        logger = AccessLogger()
        a = logger.array(4)
        assert a.peek() == [0, 0, 0, 0]

    def test_numpy_input(self):
        logger = AccessLogger()
        a = logger.array(np.array([1.5, 2.5]))
        assert a.peek() == [1.5, 2.5]

    def test_peek_does_not_log(self):
        logger = AccessLogger()
        a = logger.array([1, 2, 3])
        a.peek()
        assert len(logger) == 0

    def test_repr(self):
        logger = AccessLogger()
        a = logger.array([1], name="A")
        assert "A" in repr(a)
