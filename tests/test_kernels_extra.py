"""Tests for the BFS and stencil/STREAM instrumented kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_simulation
from repro.traces import (
    bfs_trace,
    jacobi_trace,
    make_workload,
    random_graph_csr,
    stream_triad_trace,
)
from repro.traces.graph import bfs_instrumented
from repro.traces.instrument import AccessLogger


class TestRandomGraph:
    def test_csr_shape(self):
        indptr, indices = random_graph_csr(50, 4.0, np.random.default_rng(0))
        assert len(indptr) == 51
        assert indptr[0] == 0
        assert len(indices) == indptr[-1]
        assert (indices >= 0).all() and (indices < 50).all()

    def test_degree_roughly_respected(self):
        indptr, indices = random_graph_csr(500, 6.0, np.random.default_rng(1))
        avg = len(indices) / 500
        assert 4.5 < avg < 6.5  # duplicates removed, so slightly below 6

    def test_zero_degree(self):
        indptr, indices = random_graph_csr(10, 0.0, np.random.default_rng(0))
        assert len(indices) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            random_graph_csr(0, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            random_graph_csr(5, -1.0, np.random.default_rng(0))


class TestBFS:
    def test_visits_every_vertex_once(self):
        rng = np.random.default_rng(2)
        indptr, indices = random_graph_csr(80, 3.0, rng)
        order = bfs_instrumented(AccessLogger(), indptr, indices)
        assert sorted(order) == list(range(80))

    def test_bfs_order_on_known_graph(self):
        # path graph 0 -> 1 -> 2 -> 3
        indptr = np.array([0, 1, 2, 3, 3])
        indices = np.array([1, 2, 3])
        order = bfs_instrumented(AccessLogger(), indptr, indices)
        assert order == [0, 1, 2, 3]

    def test_disconnected_graph_restarts(self):
        # two components: {0,1} and {2,3}
        indptr = np.array([0, 1, 1, 2, 2])
        indices = np.array([1, 3])
        order = bfs_instrumented(AccessLogger(), indptr, indices)
        assert order == [0, 1, 2, 3]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 40), st.floats(0.0, 5.0), st.integers(0, 5))
    def test_verified_random_instances(self, vertices, degree, seed):
        bfs_trace(vertices=vertices, avg_degree=degree, seed=seed, verify=True)

    def test_trace_metadata(self):
        t = bfs_trace(vertices=50, avg_degree=3.0, seed=0, verify=False)
        assert t.source == "bfs"
        assert t.params["vertices"] == 50
        assert t.params["edges"] >= 0


class TestStencils:
    def test_triad_verified(self):
        t = stream_triad_trace(n=256, seed=1, verify=True)
        assert len(t) == 3 * 256  # one read of b, one of c, one write of a

    def test_jacobi_verified_multiple_iters(self):
        for iters in (1, 2, 5):
            jacobi_trace(n=128, iters=iters, seed=0, verify=True)

    def test_jacobi_needs_three_points(self):
        with pytest.raises(ValueError):
            jacobi_trace(n=2)

    def test_jacobi_trace_length_scales_with_iters(self):
        t1 = jacobi_trace(n=128, iters=1, verify=False)
        t3 = jacobi_trace(n=128, iters=3, verify=False)
        assert len(t3) == pytest.approx(3 * len(t1), rel=0.01)

    def test_stream_kernels_are_streaming(self):
        """Triad's page trace is sequential — every reuse is immediate,
        so any cache bigger than a few pages captures all of it."""
        from repro.traces import characterize

        t = stream_triad_trace(n=2048, page_bytes=512, verify=False)
        profile = characterize(t.pages, capacities=(4,), window=512)
        assert profile.lru_miss_ratio_at[4] < 0.05


class TestWorkloadsEndToEnd:
    @pytest.mark.parametrize(
        "kind,kwargs",
        [
            ("bfs", dict(vertices=60, avg_degree=3.0)),
            ("stream_triad", dict(n=400)),
            ("jacobi", dict(n=300, iters=2)),
        ],
    )
    def test_generate_and_simulate(self, kind, kwargs):
        wl = make_workload(kind, threads=3, seed=0, **kwargs)
        result = run_simulation(wl.traces, hbm_slots=16, arbitration="priority")
        assert result.total_requests == wl.total_references

    def test_kinds_registered(self):
        from repro.traces import workload_kinds

        kinds = workload_kinds()
        assert {"bfs", "stream_triad", "jacobi", "shared"} <= set(kinds)
