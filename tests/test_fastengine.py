"""FastSimulator must be bit-identical to the reference Simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimulationConfig, Simulator
from repro.core.fastengine import (
    ENGINE_CHOICES,
    FastSimulator,
    default_engine,
    set_default_engine,
    simulate,
)
from repro.traces import PageAttestation, make_workload


def assert_identical(traces, config):
    ref = Simulator(traces, config).run()
    fast = FastSimulator(traces, config).run()
    assert fast.makespan == ref.makespan
    assert fast.ticks == ref.ticks
    assert fast.response_histogram == ref.response_histogram
    assert fast.hits == ref.hits
    assert fast.fetches == ref.fetches
    assert fast.evictions == ref.evictions
    assert list(fast.completion_ticks) == list(ref.completion_ticks)
    for a, b in zip(fast.thread_stats, ref.thread_stats):
        assert a.response == b.response
    assert fast.remap_count == ref.remap_count
    return fast


class TestScopeGuard:
    def test_rejects_non_lru(self):
        with pytest.raises(ValueError, match="fast path"):
            FastSimulator([[0]], SimulationConfig(hbm_slots=2, replacement="clock"))

    def test_rejects_unprotected(self):
        with pytest.raises(ValueError, match="fast path"):
            FastSimulator(
                [[0]], SimulationConfig(hbm_slots=2, protect_pending=False)
            )

    def test_rejects_shared_pages(self):
        with pytest.raises(ValueError, match="fast path"):
            FastSimulator([[0, 1], [0]], SimulationConfig(hbm_slots=2))

    def test_simulate_falls_back(self):
        result = simulate([[0, 1], [0]], SimulationConfig(hbm_slots=2))
        assert result.total_requests == 3

    def test_simulate_uses_fast_path_when_possible(self):
        result = simulate([[0, 1], [10]], SimulationConfig(hbm_slots=4))
        assert result.total_requests == 3


class TestHandCases:
    def test_doc_example(self):
        fast = FastSimulator([[0, 1, 0, 1]], SimulationConfig(hbm_slots=2)).run()
        assert fast.makespan == 6
        assert fast.hits == 2

    @pytest.mark.parametrize("arb", ["fifo", "priority", "round_robin"])
    def test_small_contended(self, arb):
        traces = [[100 * i + j for j in range(8)] * 3 for i in range(4)]
        assert_identical(traces, SimulationConfig(hbm_slots=8, arbitration=arb))

    def test_empty_and_single(self):
        assert_identical([[], [5]], SimulationConfig(hbm_slots=2))

    @pytest.mark.parametrize("q", [1, 2, 5])
    def test_channels(self, q):
        traces = [[100 * i + j for j in range(12)] * 2 for i in range(6)]
        assert_identical(traces, SimulationConfig(hbm_slots=10, channels=q))

    def test_dynamic_priority_same_rng_stream(self):
        traces = [[100 * i + j for j in range(16)] * 3 for i in range(8)]
        cfg = SimulationConfig(
            hbm_slots=24,
            arbitration="dynamic_priority",
            remap_period=16,
            seed=11,
        )
        assert_identical(traces, cfg)

    def test_fr_fcfs(self):
        traces = [[100 * i + j for j in range(10)] * 2 for i in range(5)]
        cfg = SimulationConfig(hbm_slots=12, arbitration="fr_fcfs")
        assert_identical(traces, cfg)

    @pytest.mark.parametrize(
        "arb",
        [
            "cycle_priority",
            "cycle_reverse_priority",
            "interleave_priority",
            "dynamic_priority",
        ],
    )
    def test_every_remapping_scheme(self, arb):
        traces = [[100 * i + j for j in range(12)] * 3 for i in range(6)]
        cfg = SimulationConfig(
            hbm_slots=18, arbitration=arb, remap_period=24, seed=3
        )
        assert_identical(traces, cfg)

    def test_random_arbitration_same_stream(self):
        traces = [[100 * i + j for j in range(8)] * 2 for i in range(6)]
        cfg = SimulationConfig(hbm_slots=10, arbitration="random", seed=13)
        assert_identical(traces, cfg)

    def test_realistic_workloads_identical(self):
        for kind, kwargs, k in [
            ("spgemm", dict(n=40, density=0.1, page_bytes=512, coalesce=True), 24),
            ("bfs", dict(vertices=80, avg_degree=4.0, page_bytes=512), 12),
            ("jacobi", dict(n=300, iters=2, page_bytes=512), 8),
            ("adversarial_cycle", dict(pages=12, repeats=8), 24),
        ]:
            wl = make_workload(kind, threads=4, seed=0, **kwargs)
            assert_identical(wl.traces, SimulationConfig(hbm_slots=k))

    @pytest.mark.parametrize(
        "arb", ["fifo", "priority", "dynamic_priority", "cycle_priority"]
    )
    @pytest.mark.parametrize("q", [1, 2, 4])
    def test_adversarial_fifo_family_matrix(self, arb, q):
        # Miss-bound cyclic workload: the fast-forward's home turf. The
        # full ref-vs-fast battery must hold with FF engaged end to end.
        wl = make_workload("adversarial_cycle", threads=6, pages=10, repeats=5)
        cfg = SimulationConfig(
            hbm_slots=20, channels=q, arbitration=arb, remap_period=37, seed=2
        )
        fast = assert_identical(wl.traces, cfg)
        if arb in ("fifo", "priority"):
            assert fast.ff_intervals > 0


class TestVectorPathExercised:
    """Workloads wide enough to cross VECTOR_THRESHOLD."""

    def test_wide_hit_heavy(self):
        wl = make_workload("zipf", threads=40, seed=0, length=400, pages=24)
        cfg = SimulationConfig(hbm_slots=2048)
        fast = assert_identical(wl.traces, cfg)
        assert fast.hit_rate > 0.5  # the vector path actually ran hits

    def test_wide_contended_priority(self):
        wl = make_workload("adversarial_cycle", threads=32, pages=16, repeats=6)
        cfg = SimulationConfig(hbm_slots=128, arbitration="priority")
        assert_identical(wl.traces, cfg)

    def test_wide_dynamic_with_remap(self):
        wl = make_workload("random", threads=48, seed=3, length=300, pages=20)
        cfg = SimulationConfig(
            hbm_slots=480,
            arbitration="dynamic_priority",
            remap_period=100,
            seed=5,
        )
        assert_identical(wl.traces, cfg)

    def test_mixed_regimes_sort_workload(self):
        wl = make_workload("sort", threads=30, seed=1, n=200, coalesce=True)
        cfg = SimulationConfig(hbm_slots=12, arbitration="fifo")
        assert_identical(wl.traces, cfg)


class TestRecordResponses:
    """record_responses=True stays on the fast path and is bit-identical."""

    @pytest.mark.parametrize("threads", [4, 40])  # scalar and vector regimes
    def test_response_logs_identical(self, threads):
        wl = make_workload("zipf", threads=threads, seed=4, length=200, pages=16)
        cfg = SimulationConfig(
            hbm_slots=8 * threads, arbitration="priority", record_responses=True
        )
        ref = Simulator(wl.traces, cfg).run()
        fast = FastSimulator(wl.traces, cfg).run()
        assert fast.makespan == ref.makespan
        assert fast.response_log is not None and ref.response_log is not None
        assert len(fast.response_log) == len(ref.response_log)
        for a, b in zip(fast.response_log, ref.response_log):
            assert np.array_equal(a, b)

    def test_simulate_dispatches_record_responses_to_fast(self):
        wl = make_workload("adversarial_cycle", threads=4, pages=8, repeats=4)
        cfg = SimulationConfig(hbm_slots=16, record_responses=True)
        result = simulate(wl, cfg, engine="fast")  # must not raise
        assert result.response_log is not None

    def test_empty_thread_gets_empty_log(self):
        cfg = SimulationConfig(hbm_slots=4, record_responses=True)
        ref = Simulator([[], [5, 6]], cfg).run()
        fast = FastSimulator([[], [5, 6]], cfg).run()
        assert len(fast.response_log[0]) == 0
        assert np.array_equal(fast.response_log[1], ref.response_log[1])


class TestAttestation:
    def test_workload_carries_attestation(self):
        wl = make_workload("random", threads=4, seed=0, length=50, pages=8)
        att = wl.attestation
        assert isinstance(att, PageAttestation)
        assert att.disjoint  # renumbering makes namespaces disjoint
        assert att.min_page == 0
        assert att.max_page == wl.total_unique_pages - 1

    def test_empty_workload_attestation(self):
        wl = make_workload("random", threads=1, seed=0, length=0, pages=4)
        assert wl.attestation.disjoint
        assert wl.attestation.max_page == -1

    def test_simulate_trusts_workload_attestation(self):
        wl = make_workload("zipf", threads=6, seed=1, length=120, pages=16)
        cfg = SimulationConfig(hbm_slots=48)
        # engine="fast" would raise if dispatch ignored the attestation
        # or judged the workload ineligible.
        fast = simulate(wl, cfg, engine="fast")
        ref = simulate(wl, cfg, engine="reference")
        assert fast.makespan == ref.makespan
        assert fast.response_histogram == ref.response_histogram

    def test_false_attestation_forces_fallback(self):
        class Claimed:
            def __init__(self, traces, attestation):
                self.traces = traces
                self.attestation = attestation

        traces = [np.array([0, 1], dtype=np.int64), np.array([10], dtype=np.int64)]
        shy = Claimed(traces, PageAttestation(disjoint=False, min_page=0, max_page=10))
        with pytest.raises(ValueError, match="fast"):
            simulate(shy, SimulationConfig(hbm_slots=4), engine="fast")
        # auto quietly falls back to the reference engine
        result = simulate(shy, SimulationConfig(hbm_slots=4))
        assert result.total_requests == 3

    def test_raw_arrays_still_scanned(self):
        # no attestation attribute: dispatch must fall back to scanning
        with pytest.raises(ValueError, match="fast"):
            simulate([[0, 1], [0]], SimulationConfig(hbm_slots=4), engine="fast")
        assert (
            simulate([[0, 1], [10]], SimulationConfig(hbm_slots=4), engine="fast")
            .total_requests
            == 3
        )


class TestEngineSelection:
    def test_engine_choices(self):
        assert ENGINE_CHOICES == ("auto", "reference", "fast")

    def test_all_engines_agree(self):
        wl = make_workload("adversarial_cycle", threads=4, pages=8, repeats=4)
        cfg = SimulationConfig(hbm_slots=16)
        results = {e: simulate(wl, cfg, engine=e) for e in ENGINE_CHOICES}
        makespans = {e: r.makespan for e, r in results.items()}
        assert len(set(makespans.values())) == 1

    def test_fast_raises_on_unsupported_config(self):
        wl = make_workload("adversarial_cycle", threads=2, pages=4, repeats=2)
        cfg = SimulationConfig(hbm_slots=4, replacement="clock")
        with pytest.raises(ValueError, match="fast"):
            simulate(wl, cfg, engine="fast")
        # auto falls back without raising
        assert simulate(wl, cfg).total_requests == wl.total_references

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            simulate([[0]], SimulationConfig(hbm_slots=2), engine="warp")

    def test_set_default_engine_round_trip(self):
        previous = set_default_engine("reference")
        try:
            assert previous == "auto"
            assert default_engine() == "reference"
            with pytest.raises(ValueError):
                set_default_engine("warp")
        finally:
            set_default_engine(previous)
        assert default_engine() == "auto"


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 12), max_size=30),
        min_size=1,
        max_size=8,
    ),
    st.integers(1, 12),
    st.integers(1, 3),
    st.sampled_from(["fifo", "priority", "random", "round_robin"]),
)
def test_fast_matches_reference_random(raw, k, q, arb):
    traces = [[1000 * i + page for page in t] for i, t in enumerate(raw)]
    cfg = SimulationConfig(hbm_slots=k, channels=q, arbitration=arb, seed=7)
    assert_identical(traces, cfg)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_fast_matches_reference_wide(seed):
    rng = np.random.default_rng(seed)
    p = int(rng.integers(26, 40))  # above the vector threshold
    length = int(rng.integers(20, 120))
    pages = int(rng.integers(4, 24))
    traces = [
        (1000 * i + rng.integers(0, pages, size=length)).tolist()
        for i in range(p)
    ]
    k = int(rng.integers(4, p * pages))
    cfg = SimulationConfig(hbm_slots=k, seed=int(rng.integers(100)))
    assert_identical(traces, cfg)


class TestVectorThreshold:
    """vector_threshold(): override > env > calibrated measurement."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        from repro.core.fastengine import set_vector_threshold

        previous = set_vector_threshold(None)
        yield
        set_vector_threshold(previous)

    def test_setter_round_trip(self):
        from repro.core.fastengine import set_vector_threshold, vector_threshold

        assert set_vector_threshold(10) is None
        assert vector_threshold() == 10
        assert set_vector_threshold(None) == 10

    @staticmethod
    def _capture_core_warnings():
        import logging

        from repro.obs.log import get_logger, reset_warn_once

        reset_warn_once()
        captured: list[str] = []
        handler = logging.Handler()
        handler.emit = lambda rec: captured.append(rec.getMessage())
        logger = get_logger("core")
        logger.addHandler(handler)
        return captured, logger, handler

    @pytest.mark.parametrize("bad", [0, -3, "nope"])
    def test_setter_warns_and_clears_on_invalid(self, bad, monkeypatch):
        # a perf-only knob must never abort a run: invalid values warn
        # once and fall back to env/calibration resolution
        from repro.core.fastengine import set_vector_threshold, vector_threshold

        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "33")
        captured, logger, handler = self._capture_core_warnings()
        try:
            set_vector_threshold(10)
            assert set_vector_threshold(bad) == 10
        finally:
            logger.removeHandler(handler)
        assert len(captured) == 1
        assert "vector threshold" in captured[0]
        # override cleared, not kept: env resolution is back in force
        assert vector_threshold() == 33

    def test_env_variable(self, monkeypatch):
        from repro.core.fastengine import vector_threshold

        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "17")
        assert vector_threshold() == 17

    @pytest.mark.parametrize("bad", ["seventeen", "-4", "0", "1.5"])
    def test_invalid_env_warns_and_uses_calibration(self, monkeypatch, bad):
        from repro.core import fastengine

        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", bad)
        captured, logger, handler = self._capture_core_warnings()
        try:
            value = fastengine.vector_threshold()
            fastengine.vector_threshold()  # second call: warn once only
        finally:
            logger.removeHandler(handler)
        assert 8 <= value <= 96  # calibrated fallback, not a crash
        assert len(captured) == 1
        assert "REPRO_VECTOR_THRESHOLD" in captured[0]

    def test_override_beats_env(self, monkeypatch):
        from repro.core.fastengine import set_vector_threshold, vector_threshold

        monkeypatch.setenv("REPRO_VECTOR_THRESHOLD", "17")
        set_vector_threshold(9)
        assert vector_threshold() == 9

    def test_calibration_is_clamped_and_cached(self, monkeypatch):
        from repro.core import fastengine

        monkeypatch.delenv("REPRO_VECTOR_THRESHOLD", raising=False)
        value = fastengine.vector_threshold()
        assert 8 <= value <= 96
        # second call must reuse the cached measurement
        assert fastengine._calibrated_threshold == value
        assert fastengine.vector_threshold() == value

    def test_results_do_not_depend_on_threshold(self):
        from repro.core.fastengine import set_vector_threshold

        wl = make_workload("adversarial_cycle", threads=12, pages=8, repeats=4)
        cfg = SimulationConfig(hbm_slots=32, channels=2)
        results = []
        for threshold in (1, 6, 96):
            set_vector_threshold(threshold)
            results.append(FastSimulator(wl.traces, cfg).run())
        for other in results[1:]:
            assert other.makespan == results[0].makespan
            assert other.response_histogram == results[0].response_histogram
            assert other.evictions == results[0].evictions
