"""Tests for the instrumented kernels (sorting, SpGEMM, dense MM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.instrument import AccessLogger
from repro.traces.sorting import (
    heapsort_range,
    introsort,
    introsort_trace,
    mergesort,
    mergesort_trace,
    quicksort,
    quicksort_trace,
)
from repro.traces.spgemm import random_csr, spgemm_trace
from repro.traces.densemm import densemm_trace


def _sorted(values, algorithm):
    logger = AccessLogger()
    a = logger.array(list(values))
    if algorithm == "mergesort":
        buf = logger.array(len(values))
        mergesort(a, buf)
    elif algorithm == "introsort":
        introsort(a)
    elif algorithm == "quicksort":
        quicksort(a)
    elif algorithm == "heapsort":
        heapsort_range(a, 0, len(a))
    return a.peek(), logger


class TestSortingCorrectness:
    @pytest.mark.parametrize(
        "algorithm", ["introsort", "quicksort", "mergesort", "heapsort"]
    )
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [1],
            [2, 1],
            [3, 1, 2],
            list(range(50)),
            list(range(50, 0, -1)),
            [5] * 30,
            [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4] * 3,
        ],
    )
    def test_sorts(self, algorithm, values):
        out, _ = _sorted(values, algorithm)
        assert out == sorted(values)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(-1000, 1000), max_size=120),
        st.sampled_from(["introsort", "quicksort", "mergesort", "heapsort"]),
    )
    def test_sorts_random(self, values, algorithm):
        out, _ = _sorted(values, algorithm)
        assert out == sorted(values)

    def test_introsort_logs_accesses(self):
        _, logger = _sorted(list(range(100, 0, -1)), "introsort")
        assert len(logger) > 100  # at minimum it had to read everything

    def test_introsort_comparison_count_is_n_log_n_ish(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10**6, size=1024).tolist()
        _, logger = _sorted(values, "introsort")
        n = 1024
        # generous envelope: > n reads, < 40 n log n accesses
        assert n < len(logger) < 40 * n * 10


class TestSortTraces:
    def test_trace_deterministic(self):
        a = introsort_trace(200, seed=1, page_bytes=256)
        b = introsort_trace(200, seed=1, page_bytes=256)
        assert np.array_equal(a.pages, b.pages)

    def test_page_bytes_controls_page_count(self):
        coarse = introsort_trace(512, seed=0, page_bytes=4096)
        fine = introsort_trace(512, seed=0, page_bytes=256)
        assert fine.unique_pages > coarse.unique_pages

    def test_mergesort_uses_buffer_pages(self):
        m = mergesort_trace(512, seed=0, page_bytes=256)
        q = quicksort_trace(512, seed=0, page_bytes=256)
        assert m.unique_pages > q.unique_pages  # extra buffer region

    def test_metadata(self):
        t = introsort_trace(64, seed=0)
        assert t.source == "introsort"
        assert t.params["n"] == 64
        assert t.params["raw_accesses"] == len(t)


class TestRandomCSR:
    def test_shape_and_sortedness(self):
        rng = np.random.default_rng(0)
        indptr, indices, data = random_csr(50, 0.2, rng)
        assert len(indptr) == 51
        assert indptr[0] == 0
        assert len(indices) == indptr[-1] == len(data)
        for i in range(50):
            row = indices[indptr[i] : indptr[i + 1]]
            assert list(row) == sorted(set(row.tolist()))  # sorted, unique

    def test_density_roughly_respected(self):
        rng = np.random.default_rng(1)
        indptr, indices, _ = random_csr(200, 0.1, rng)
        density = len(indices) / (200 * 200)
        assert 0.07 < density < 0.13

    def test_bad_density(self):
        with pytest.raises(ValueError):
            random_csr(10, 0.0, np.random.default_rng(0))


class TestSpgemm:
    def test_verified_against_scipy(self):
        # verify=True raises on any mismatch, so surviving is the test
        t = spgemm_trace(n=40, density=0.15, seed=2, verify=True)
        assert len(t) > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(5, 30), st.integers(0, 10))
    def test_verified_random_instances(self, n, seed):
        spgemm_trace(n=n, density=0.2, seed=seed, verify=True)

    def test_trace_metadata(self):
        t = spgemm_trace(n=30, density=0.1, seed=0, verify=False)
        assert t.source == "spgemm"
        assert t.params["n"] == 30
        assert t.params["nnz_c"] >= 0

    def test_deterministic(self):
        a = spgemm_trace(n=30, seed=3, verify=False)
        b = spgemm_trace(n=30, seed=3, verify=False)
        assert np.array_equal(a.pages, b.pages)


class TestDenseMM:
    @pytest.mark.parametrize("order", ["ikj", "ijk"])
    def test_verified_against_numpy(self, order):
        t = densemm_trace(n=10, seed=1, order=order, verify=True)
        assert len(t) > 0

    def test_orders_give_different_traces(self):
        a = densemm_trace(n=8, seed=0, order="ikj", verify=False, page_bytes=64)
        b = densemm_trace(n=8, seed=0, order="ijk", verify=False, page_bytes=64)
        assert not np.array_equal(a.pages, b.pages)

    def test_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            densemm_trace(n=4, order="kij")
