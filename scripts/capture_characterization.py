"""Capture smoke-scale characterization snapshots for every experiment.

Writes ``tests/data/characterization_smoke.json`` mapping experiment id
to its ``rows`` and ``checks`` at scale="smoke", seed=0. The snapshot is
the contract the campaign-pipeline migration must preserve:
``tests/test_characterization.py`` re-runs every registry experiment and
asserts bit-identical rows and checks against this file.

Usage::

    PYTHONPATH=src python scripts/capture_characterization.py [CACHE_DIR]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from characterization_util import SNAPSHOT_PATH, jsonify  # noqa: E402

from repro.experiments import experiment_ids, run_experiment  # noqa: E402


def main() -> int:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else None
    snapshot: dict[str, dict] = {}
    for experiment_id in experiment_ids():
        start = time.perf_counter()
        out = run_experiment(
            experiment_id, scale="smoke", processes=1, cache_dir=cache_dir, seed=0
        )
        snapshot[experiment_id] = {
            "rows": jsonify(out.rows),
            "checks": jsonify(out.checks),
        }
        print(
            f"{experiment_id}: {len(out.rows)} rows, "
            f"{len(out.checks)} checks ({time.perf_counter() - start:.2f}s)"
        )
    SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
    SNAPSHOT_PATH.write_text(
        json.dumps(snapshot, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {SNAPSHOT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
