#!/usr/bin/env python
"""Shared-store smoke test for sharded campaigns (CI and local).

Launches two concurrent ``repro run --shard`` subprocesses pointed at
one SQLite result store, then asserts the sharded-execution contract
end to end:

* both shards exit 0 while racing on the same database;
* their combined coverage is the full campaign — every job key is in
  the store and in the done frontier, none left behind;
* no job was simulated twice: the store holds exactly one entry per
  key and the per-shard ``simulated`` counts sum to the job count;
* a final unsharded pass over the shared store replays entirely from
  cache with metrics bit-identical to a single-process reference run.

Exit status 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/shared_store_smoke.py
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.analysis import (
    SQLiteStore,
    SweepJob,
    SweepRunner,
    WorkloadSpec,
    run_sweep,
    sweep_result_key,
)
from repro.core import SimulationConfig
from repro.obs import configure_logging

METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "hits",
    "fetches",
    "evictions",
)

#: the job list both shards and the reference run share; keep it in one
#: place so the subprocess snippet below cannot drift from the parent
JOB_SRC = """
from repro.analysis import SweepJob, WorkloadSpec
from repro.core import SimulationConfig

jobs = [
    SweepJob(
        WorkloadSpec.make("adversarial_cycle", threads=2, pages=16, repeats=4),
        SimulationConfig(hbm_slots=8 * (i + 1)),
        tag=f"job-{i}",
    )
    for i in range(6)
]
"""

SHARD_SRC = (
    JOB_SRC
    + """
import sys
from repro.analysis import SweepRunner

runner = SweepRunner(processes=1, store=sys.argv[1], shard=sys.argv[2])
records = runner.run(jobs, label="shared-smoke")
stats = runner.last_campaign
print(f"SHARD {sys.argv[2]}: {len(records)} records, "
      f"{stats.simulated} simulated, {stats.skipped} skipped")
print(f"SIMULATED={stats.simulated}")
"""
)


def build_jobs():
    namespace = {}
    exec(JOB_SRC, namespace)
    return namespace["jobs"]


def fail(message):
    print(f"SHARED STORE SMOKE FAILED: {message}", file=sys.stderr)
    return 1


def main():
    configure_logging(0)
    jobs = build_jobs()
    keys = {sweep_result_key(j.workload, j.config, j.payload) for j in jobs}

    print("== reference run (single process, no store) ==")
    baseline = run_sweep(jobs, processes=1)

    with tempfile.TemporaryDirectory() as tmp:
        uri = f"sqlite:{Path(tmp) / 'shared.db'}"
        print(f"== two concurrent shards -> {uri} ==")
        env = dict(os.environ)
        env.pop("REPRO_STORE", None)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", SHARD_SRC, uri, f"{i}/2"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for i in range(2)
        ]
        outputs = [p.communicate(timeout=300)[0] for p in procs]
        for proc, out in zip(procs, outputs):
            print(out, end="")
            if proc.returncode != 0:
                return fail(f"shard exited {proc.returncode}:\n{out}")

        simulated = sum(
            int(line.split("=", 1)[1])
            for out in outputs
            for line in out.splitlines()
            if line.startswith("SIMULATED=")
        )
        if simulated != len(jobs):
            return fail(
                f"duplicate or lost simulations: shards simulated "
                f"{simulated}, campaign has {len(jobs)} jobs"
            )

        store = SQLiteStore(uri.split(":", 1)[1])
        try:
            if len(store) != len(jobs):
                return fail(f"store holds {len(store)} entries, want {len(jobs)}")
            campaigns = store.list_campaigns()
            if len(campaigns) != 1:
                return fail(f"expected one campaign, found {campaigns}")
            done = store.done_keys(campaigns[0])
            if done != keys:
                return fail(
                    f"frontier incomplete: {len(done)}/{len(keys)} keys done"
                )
        finally:
            store.close()

        print("== final unsharded pass: must replay entirely from cache ==")
        final = SweepRunner(processes=1, store=uri)
        records = final.run(jobs, label="shared-smoke")
        stats = final.last_campaign
        print(stats.summary_table())
        if stats.simulated != 0:
            return fail(f"final pass re-simulated {stats.simulated} job(s)")
        if stats.cache_hits != len(jobs):
            return fail(f"final pass hit {stats.cache_hits}/{len(jobs)}")
        by_tag = {r.job.tag: r for r in records}
        for clean in baseline:
            record = by_tag.get(clean.job.tag)
            if record is None:
                return fail(f"record missing for tag {clean.job.tag!r}")
            for name in METRIC_FIELDS:
                got, want = getattr(record, name), getattr(clean, name)
                if got != want:
                    return fail(
                        f"tag={record.job.tag!r} {name}={got!r} != "
                        f"reference {want!r}"
                    )

    print(
        f"OK: 2 shards drained {len(jobs)} jobs into one SQLite store with "
        "no duplicates, full frontier coverage, and a bit-identical replay"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
