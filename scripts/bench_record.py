#!/usr/bin/env python
"""Fold current BENCH_*.json results into benchmarks/baseline.json.

Run the bench suite first (it writes BENCH_engine.json & co. to the
repo root), then run this script and commit the updated baseline:

    PYTHONPATH=src python -m pytest benchmarks -q
    python scripts/bench_record.py
    git add benchmarks/baseline.json

Equivalent to ``repro bench record``; exists as a standalone script so
CI and pre-commit hooks can call it without the console entry point.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.benchtrend import load_bench_files, record  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir",
        action="append",
        default=None,
        help="directory to search for BENCH_*.json (repeatable; "
        "default: repo root)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "benchmarks" / "baseline.json"),
        help="baseline file to update (default: benchmarks/baseline.json)",
    )
    args = parser.parse_args(argv)

    search = args.bench_dir or [str(REPO_ROOT)]
    current = load_bench_files(search)
    if not current:
        print(f"no BENCH_*.json found in {search}", file=sys.stderr)
        return 2
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    record(current, args.baseline, updated=stamp)
    print(
        f"recorded {sorted(current)} into {args.baseline} (updated {stamp})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
