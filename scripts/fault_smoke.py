#!/usr/bin/env python
"""Fault-injection smoke test for the sweep harness (CI and local).

Runs one small campaign across a 2-worker process pool while the
deterministic fault-injection hook (``repro.analysis.faults``) SIGKILLs
the worker executing the job tagged ``victim`` on its first attempt,
then asserts the fault-tolerance contract end to end:

* the campaign completes — no record is lost;
* zero failed records: the killed job recovers via a pool rebuild;
* the recovery counters are visible in :class:`CampaignStats`;
* every record matches a fault-free reference run bit-for-bit.

Exit status 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/fault_smoke.py
"""

import sys

from repro.analysis import (
    SweepJob,
    SweepRunner,
    WorkloadSpec,
    run_sweep,
    set_fault_plan,
)
from repro.core import SimulationConfig
from repro.obs import configure_logging

METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "hits",
    "fetches",
    "evictions",
)


def build_jobs():
    jobs = []
    for threads in (2, 4):
        spec = WorkloadSpec.make(
            "adversarial_cycle", threads=threads, pages=16, repeats=4
        )
        for arb in ("fifo", "priority"):
            tag = "victim" if (threads, arb) == (4, "priority") else f"ok-{threads}-{arb}"
            jobs.append(
                SweepJob(spec, SimulationConfig(hbm_slots=32, arbitration=arb), tag=tag)
            )
    return jobs


def fail(message):
    print(f"FAULT SMOKE FAILED: {message}", file=sys.stderr)
    return 1


def main():
    configure_logging(0)
    jobs = build_jobs()

    print("== reference run (no faults) ==")
    baseline = run_sweep(jobs, processes=1)

    print('== faulty run: REPRO_FAULT_INJECT="kill:victim:attempts=1", '
          "processes=2 ==")
    previous = set_fault_plan("kill:victim:attempts=1")
    try:
        runner = SweepRunner(processes=2, retries=1, retry_backoff_s=0.05)
        records = runner.run(jobs)
    finally:
        set_fault_plan(previous)

    if len(records) != len(jobs):
        return fail(f"lost records: {len(records)}/{len(jobs)}")
    failed = [r for r in records if r.failed]
    if failed:
        return fail(
            "failed records: "
            + ", ".join(f"{r.job.tag}: {r.error.describe()}" for r in failed)
        )
    for record, clean in zip(records, baseline):
        for name in METRIC_FIELDS:
            got, want = getattr(record, name), getattr(clean, name)
            if got != want:
                return fail(
                    f"tag={record.job.tag!r} {name}={got!r} != fault-free {want!r}"
                )

    stats = runner.last_campaign
    print(stats.summary_table())
    if stats.pool_rebuilds < 1:
        return fail("worker was never killed: pool_rebuilds == 0")
    if stats.recovered < 1:
        return fail("no jobs recovered despite a pool rebuild")
    print(
        f"OK: {len(records)} records, 0 failed, "
        f"{stats.recovered} recovered across {stats.pool_rebuilds} pool "
        f"rebuild(s), all metrics bit-identical to the fault-free run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
