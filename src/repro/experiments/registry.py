"""Registry mapping experiment ids to runnables.

``python -m repro run <id>`` and the benchmark suite both dispatch
through this table; EXPERIMENTS.md's per-experiment index uses the same
ids.
"""

from __future__ import annotations

import os
from typing import Callable

from .ablations import (
    asymmetric_work_ablation,
    channels_ablation,
    frfcfs_ablation,
    permutation_scheme_ablation,
    replacement_ablation,
    shared_pages_ablation,
)
from .base import ExperimentOutput
from .figure2 import figure2, figure2a, figure2b
from .figure3 import figure3
from .figure4 import figure4, figure4a, figure4b
from .figure5 import figure5, figure5a, figure5b, table1
from .sapphire import sapphire_projection
from .table2 import figure6, table2, table2a, table2b
from .theory_checks import lemma1, response_bound, theorem1_3, theorem2, theorem4
from .zoo import zoo

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

#: id -> (callable, one-line description)
EXPERIMENTS: dict[str, tuple[Callable[..., ExperimentOutput], str]] = {
    "fig2": (figure2, "Figure 2: FIFO vs Priority makespan ratios (both panels)"),
    "fig2a": (figure2a, "Figure 2a: FIFO vs Priority, SpGEMM"),
    "fig2b": (figure2b, "Figure 2b: FIFO vs Priority, GNU sort"),
    "fig3": (figure3, "Figure 3: FIFO catastrophe on the cyclic adversary"),
    "fig4": (figure4, "Figure 4: Dynamic Priority vs FIFO (both panels)"),
    "fig4a": (figure4a, "Figure 4a: Dynamic Priority vs FIFO, SpGEMM"),
    "fig4b": (figure4b, "Figure 4b: Dynamic Priority vs FIFO, GNU sort"),
    "fig5": (figure5, "Figure 5: inconsistency vs makespan tradeoff (both panels)"),
    "fig5a": (figure5a, "Figure 5a: tradeoff, SpGEMM"),
    "fig5b": (figure5b, "Figure 5b: tradeoff, GNU sort"),
    "tab1": (table1, "Table 1: inconsistency and mean response time per policy"),
    "tab2": (table2, "Table 2: KNL microbenchmarks (both halves)"),
    "tab2a": (table2a, "Table 2a: pointer-chase latency"),
    "tab2b": (table2b, "Table 2b: GLUPS bandwidth"),
    "fig6": (figure6, "Figure 6: pointer chasing across the hierarchy"),
    "thm1_3": (theorem1_3, "Theorems 1 & 3: Priority competitiveness"),
    "thm2": (theorem2, "Theorem 2: FCFS adversary family"),
    "lemma1": (lemma1, "Lemma 1: direct-mapped transformation overhead"),
    "thm4": (theorem4, "Theorem 4: concurrent front-insert steps"),
    "response_bound": (response_bound, "Section 4: Cycle Priority p*T bound"),
    "ablation_channels": (channels_ablation, "Ablation: q in 1..10"),
    "ablation_schemes": (
        permutation_scheme_ablation,
        "Ablation: permutation schemes",
    ),
    "ablation_asymmetric": (
        asymmetric_work_ablation,
        "Ablation: asymmetric work distribution",
    ),
    "ablation_replacement": (
        replacement_ablation,
        "Ablation: replacement policies / misses vs makespan",
    ),
    "ablation_shared": (
        shared_pages_ablation,
        "Ablation: non-disjoint access sequences (future work 6.1)",
    ),
    "ablation_fr_fcfs": (
        frfcfs_ablation,
        "Ablation: FR-FCFS, the real-controller FCFS variant",
    ),
    "sapphire": (
        sapphire_projection,
        "Extension: section 5 microbenchmarks projected on Sapphire Rapids",
    ),
    "zoo": (
        zoo,
        "Policy zoo: Cycle Priority vs shipped arbiters (BLISS + DPQ)",
    ),
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
    save_dir: str | os.PathLike | None = None,
) -> ExperimentOutput:
    """Run one experiment by id.

    With ``save_dir``, the output is also persisted to
    ``<save_dir>/<experiment_id>/`` (rows.csv, report.txt, checks.json,
    manifest.json) via
    :func:`~repro.experiments.base.save_experiment_output`.
    """
    try:
        fn, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from None
    out = fn(scale=scale, processes=processes, cache_dir=cache_dir, seed=seed)
    if save_dir is not None:
        from .base import save_experiment_output

        save_experiment_output(out, save_dir, seed=seed)
    return out
