"""Experiment infrastructure: uniform output type and scale presets.

Every paper table/figure is an :class:`Experiment`: a callable
producing an :class:`ExperimentOutput` with

* ``rows`` — the regenerated table/series data (dict rows),
* ``text`` — terminal rendering (ASCII table + plot),
* ``checks`` — named boolean *shape assertions*: does the paper's
  qualitative claim hold in this run (who wins, where the crossover
  falls, orderings)? Benchmarks assert these; EXPERIMENTS.md reports
  them.

Each experiment supports two scales:

* ``"smoke"`` — small instances for benchmarks and CI (seconds);
* ``"paper"`` — the largest configuration practical in pure Python,
  with the same structure as the paper's setup (minutes; used to
  produce the numbers recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentOutput", "Scale", "require_scale"]

Scale = str  # "smoke" | "paper"

_VALID_SCALES = ("smoke", "paper")


def require_scale(scale: str) -> str:
    if scale not in _VALID_SCALES:
        raise ValueError(f"scale must be one of {_VALID_SCALES}, got {scale!r}")
    return scale


@dataclass
class ExperimentOutput:
    """Uniform result bundle for one experiment run."""

    experiment_id: str
    title: str
    scale: str
    rows: list[dict[str, Any]]
    text: str
    checks: dict[str, bool] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """Full text report including check outcomes."""
        lines = [f"== {self.experiment_id}: {self.title} (scale={self.scale}) =="]
        lines.append(self.text)
        if self.checks:
            lines.append("")
            lines.append("shape checks:")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)
