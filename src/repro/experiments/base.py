"""Experiment infrastructure: the campaign pipeline and output types.

Every paper table/figure is an :class:`Experiment` producing an
:class:`ExperimentOutput` with

* ``rows`` — the regenerated table/series data (dict rows),
* ``text`` — terminal rendering (ASCII table + plot),
* ``checks`` — named boolean *shape assertions*: does the paper's
  qualitative claim hold in this run (who wins, where the crossover
  falls, orderings)? Benchmarks assert these; EXPERIMENTS.md reports
  them.

Each experiment supports two scales:

* ``"smoke"`` — small instances for benchmarks and CI (seconds);
* ``"paper"`` — the largest configuration practical in pure Python,
  with the same structure as the paper's setup (minutes; used to
  produce the numbers recorded in EXPERIMENTS.md).

The campaign pipeline
---------------------

Experiments are declared as :class:`Campaign` objects — a *jobs
builder* (context -> :class:`~repro.analysis.SweepJob` list), a
*reducer* (records -> :class:`Reduction` of rows/checks/data), and an
optional *renderer* (reduction -> terminal text). :meth:`Campaign.run`
executes the jobs through the one shared
:class:`~repro.analysis.SweepRunner`, so every experiment — makespan
sweeps, fairness/response-time studies, theory harnesses — gets the
process pool, persistent result cache, payload replay, run manifests,
and campaign telemetry without touching an engine directly. Experiments
with no simulation at all (machine-model microbenchmarks, PRAM step
counts) use :meth:`Campaign.local`, which skips the sweep stage but
keeps the same output/persistence contract.

:func:`save_experiment_output` persists a finished output to
``<base_dir>/<experiment_id>/`` as ``rows.csv`` + ``report.txt`` +
``checks.json`` + a provenance ``manifest.json`` (scale, seed, engine
semantics version, host, cache-hit telemetry) — the ``results/``
layout the CLI's ``--save`` flag writes.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Sequence

from ..analysis.sweep import CampaignStats, SweepJob, SweepRecord, SweepRunner
from ..core.engine import ENGINE_SEMANTICS_VERSION
from ..core.fastengine import default_engine
from ..analysis.telemetry import default_telemetry
from ..obs.log import get_logger, warn_once
from ..obs.manifest import host_info
from ..obs.metrics import phase, set_active_registry
from ..traces import Workload, WorkloadCache

log = get_logger("experiments")

__all__ = [
    "CAMPAIGN_MANIFEST_SCHEMA",
    "Campaign",
    "CampaignContext",
    "ExperimentOutput",
    "Reduction",
    "Scale",
    "merge_campaign_stats",
    "require_scale",
    "save_experiment_output",
]

Scale = str  # "smoke" | "paper"

_VALID_SCALES = ("smoke", "paper")

#: bump when the results/<id>/manifest.json layout changes incompatibly
CAMPAIGN_MANIFEST_SCHEMA = "repro.experiments.campaign/v1"


def require_scale(scale: str) -> str:
    if scale not in _VALID_SCALES:
        raise ValueError(f"scale must be one of {_VALID_SCALES}, got {scale!r}")
    return scale


@dataclass
class ExperimentOutput:
    """Uniform result bundle for one experiment run."""

    experiment_id: str
    title: str
    scale: str
    rows: list[dict[str, Any]]
    text: str
    checks: dict[str, bool] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.checks.items() if not ok]

    @property
    def campaign(self) -> CampaignStats | None:
        """Sweep telemetry for the run that produced this output.

        ``None`` for outputs assembled outside the campaign pipeline.
        Composite experiments (e.g. both Figure 2 panels) carry the
        merged stats of their parts.
        """
        return self.data.get("campaign")

    def render(self) -> str:
        """Full text report including check outcomes."""
        lines = [f"== {self.experiment_id}: {self.title} (scale={self.scale}) =="]
        lines.append(self.text)
        if self.checks:
            lines.append("")
            lines.append("shape checks:")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignContext:
    """Everything a jobs builder or reducer may depend on.

    Builders derive the job grid from ``scale`` and ``seed``; reducers
    occasionally need the workload itself (e.g. to compute certified
    lower bounds from the traces) and use :meth:`build_workload`, which
    routes through the on-disk workload cache when one is configured so
    the traces are generated at most once per campaign.
    """

    experiment_id: str
    scale: str
    seed: int = 0
    processes: int | None = None
    cache_dir: str | None = None

    def build_workload(self, spec: Any) -> Workload:
        """Materialize a :class:`~repro.analysis.WorkloadSpec`."""
        cache = WorkloadCache(self.cache_dir) if self.cache_dir else None
        return spec.build(cache)


#: set by :meth:`Campaign.run` around the reducer call so that
#: :class:`Reduction` construction can sanity-check the rows against the
#: campaign's failure count; ``None`` outside a campaign reduce step.
_ACTIVE_REDUCE: dict[str, Any] | None = None


@dataclass
class Reduction:
    """A reducer's distilled view of the campaign's records.

    ``text`` is optional when the campaign has a separate renderer;
    when both are present the renderer wins.

    Failed :class:`~repro.analysis.SweepRecord` s carry all-zero
    metrics, so a reducer that aggregates without filtering
    ``record.failed`` silently drags averages toward zero. When a
    campaign's reduce step constructs a :class:`Reduction` while failed
    records exist and the rows show no sign of having filtered them
    (no ``failed`` column, row count covering every record — or a row
    explicitly flagged failed), a once-per-experiment warning is
    emitted via :func:`repro.obs.log.warn_once`.
    """

    rows: list[dict[str, Any]]
    checks: dict[str, bool] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    text: str | None = None

    def __post_init__(self) -> None:
        ctx = _ACTIVE_REDUCE
        if not ctx or not ctx.get("failed"):
            return
        rows = self.rows or []
        unfiltered = any(row.get("failed") for row in rows) or (
            bool(rows)
            and not any("failed" in row for row in rows)
            and len(rows) >= ctx.get("total", 0)
        )
        if unfiltered:
            warn_once(
                log,
                (ctx.get("experiment_id"), "unfiltered-failed-records"),
                "experiment %r: %d of %d sweep records failed (their "
                "metrics are zeroed) and the reduction does not appear "
                "to filter record.failed — aggregates may silently "
                "include zeros",
                ctx.get("experiment_id"),
                ctx.get("failed"),
                ctx.get("total"),
            )


@dataclass(frozen=True)
class Campaign:
    """One declarative experiment: jobs builder -> reducer -> renderer.

    Use :meth:`sweep` for simulation-backed experiments and
    :meth:`local` for analytic/microbenchmark experiments with no sweep
    jobs. Campaigns are callable with the classic experiment signature
    ``(scale, processes, cache_dir, seed)`` so the registry and every
    existing call site treat them exactly like the plain functions they
    replace.
    """

    experiment_id: str
    title: str
    build_jobs: Callable[[CampaignContext], Sequence[SweepJob]] | None = None
    reduce: Callable[[CampaignContext, list[SweepRecord]], Reduction] | None = None
    render: Callable[[CampaignContext, Reduction], str] | None = None
    compute: Callable[[CampaignContext], Reduction] | None = None

    @classmethod
    def sweep(
        cls,
        experiment_id: str,
        title: str,
        build_jobs: Callable[[CampaignContext], Sequence[SweepJob]],
        reduce: Callable[[CampaignContext, list[SweepRecord]], Reduction],
        render: Callable[[CampaignContext, Reduction], str] | None = None,
    ) -> "Campaign":
        """A campaign whose work is a sweep-job grid."""
        return cls(
            experiment_id=experiment_id,
            title=title,
            build_jobs=build_jobs,
            reduce=reduce,
            render=render,
        )

    @classmethod
    def local(
        cls,
        experiment_id: str,
        title: str,
        compute: Callable[[CampaignContext], Reduction],
        render: Callable[[CampaignContext, Reduction], str] | None = None,
    ) -> "Campaign":
        """A campaign with no simulation jobs (analytic experiments)."""
        return cls(
            experiment_id=experiment_id,
            title=title,
            compute=compute,
            render=render,
        )

    def run(
        self,
        scale: str = "smoke",
        processes: int | None = None,
        cache_dir=None,
        seed: int = 0,
    ) -> ExperimentOutput:
        ctx = CampaignContext(
            experiment_id=self.experiment_id,
            scale=require_scale(scale),
            seed=seed,
            processes=processes,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
        )
        drain_only = False
        if self.build_jobs is not None:
            if self.reduce is None:
                raise TypeError(
                    f"campaign {self.experiment_id!r} has jobs but no reducer"
                )
            runner = SweepRunner(processes=processes, cache_dir=cache_dir)
            # Keep the campaign registry active across the reduce step
            # so its wall time lands in the phase profile too; the
            # runner installs/restores the same registry internally.
            tele = default_telemetry()
            previous_registry = (
                set_active_registry(tele.registry) if tele is not None else None
            )
            global _ACTIVE_REDUCE
            try:
                records = runner.run(
                    list(self.build_jobs(ctx)),
                    label=self.experiment_id,
                    # Stored in the campaign checkpoint so a resuming
                    # process (repro run --resume <id>) can re-derive
                    # the invocation with no further arguments.
                    meta={
                        "experiment_id": self.experiment_id,
                        "scale": ctx.scale,
                        "seed": ctx.seed,
                    },
                )
                shard = (
                    runner.last_campaign.shard
                    if runner.last_campaign is not None
                    else ""
                )
                if shard:
                    # A shard run holds only its partition's records —
                    # never enough for a reducer. Drain into the shared
                    # store; the final unsharded pass replays the full
                    # campaign and reduces.
                    drain_only = True
                    reduction = Reduction(
                        rows=[],
                        text=(
                            f"shard {shard}: drained {len(records)} "
                            "record(s) into the shared store; re-run "
                            "unsharded to reduce and render"
                        ),
                    )
                else:
                    _ACTIVE_REDUCE = {
                        "experiment_id": self.experiment_id,
                        "failed": sum(1 for r in records if r.failed),
                        "total": len(records),
                    }
                    try:
                        with phase("reduce"):
                            reduction = self.reduce(ctx, records)
                    finally:
                        _ACTIVE_REDUCE = None
            finally:
                if tele is not None:
                    set_active_registry(previous_registry)
                    tele.flush()
            stats = runner.last_campaign or CampaignStats()
        elif self.compute is not None:
            reduction = self.compute(ctx)
            stats = CampaignStats()
        else:
            raise TypeError(
                f"campaign {self.experiment_id!r} defines neither jobs nor compute"
            )
        if drain_only:
            text = reduction.text or ""
        elif self.render is not None:
            text = self.render(ctx, reduction)
        elif reduction.text is not None:
            text = reduction.text
        else:
            raise TypeError(
                f"campaign {self.experiment_id!r} produced no text and has "
                "no renderer"
            )
        data = dict(reduction.data)
        data["campaign"] = stats
        return ExperimentOutput(
            experiment_id=self.experiment_id,
            title=self.title,
            scale=ctx.scale,
            rows=reduction.rows,
            text=text,
            checks=reduction.checks,
            data=data,
        )

    async def arun(
        self,
        scale: str = "smoke",
        processes: int | None = None,
        cache_dir=None,
        seed: int = 0,
    ) -> ExperimentOutput:
        """Async :meth:`run`: ``await campaign.arun(...)``.

        The campaign executes in a worker thread (simulation itself is
        already in pool processes), so an event loop can drive several
        campaigns — or a campaign plus a UI — concurrently. Semantics
        and outputs are identical to :meth:`run`.
        """
        return await asyncio.to_thread(
            self.run, scale, processes, cache_dir, seed
        )

    def __call__(
        self,
        scale: str = "smoke",
        processes: int | None = None,
        cache_dir=None,
        seed: int = 0,
    ) -> ExperimentOutput:
        return self.run(scale=scale, processes=processes, cache_dir=cache_dir, seed=seed)


def merge_campaign_stats(
    parts: Sequence[CampaignStats | None],
) -> CampaignStats:
    """Combine per-panel telemetry into one composite-experiment view."""
    merged = CampaignStats()
    for stats in parts:
        if stats is None:
            continue
        merged.total_jobs += stats.total_jobs
        merged.cache_hits += stats.cache_hits
        merged.simulated += stats.simulated
        merged.failed += stats.failed
        merged.retried += stats.retried
        merged.recovered += stats.recovered
        merged.pool_rebuilds += stats.pool_rebuilds
        merged.resumed += stats.resumed
        merged.skipped += stats.skipped
        merged.wall_time_s += stats.wall_time_s
        merged.sim_time_s += stats.sim_time_s
        for key, group in stats.by_group.items():
            target = merged.by_group.setdefault(
                key, {"jobs": 0, "cached": 0, "failed": 0, "sim_wall_s": 0.0}
            )
            target["jobs"] += group["jobs"]
            target["cached"] += group["cached"]
            target["failed"] += group.get("failed", 0)
            target["sim_wall_s"] += group["sim_wall_s"]
    return merged


def _campaign_manifest(out: ExperimentOutput, seed: int | None) -> dict[str, Any]:
    stats = out.campaign
    manifest: dict[str, Any] = {
        "schema": CAMPAIGN_MANIFEST_SCHEMA,
        "created_at": datetime.now(timezone.utc).isoformat(),
        "experiment_id": out.experiment_id,
        "title": out.title,
        "scale": out.scale,
        "seed": seed,
        "engine": default_engine(),
        "engine_semantics_version": ENGINE_SEMANTICS_VERSION,
        "host": host_info(),
        # plain bool: numpy bools from vectorized reducers are not
        # JSON-serializable
        "checks": {name: bool(ok) for name, ok in out.checks.items()},
        "all_checks_pass": out.all_checks_pass,
        "row_count": len(out.rows),
    }
    if stats is not None:
        manifest["campaign"] = {
            "total_jobs": stats.total_jobs,
            "cache_hits": stats.cache_hits,
            "simulated": stats.simulated,
            "failed": stats.failed,
            "retried": stats.retried,
            "recovered": stats.recovered,
            "pool_rebuilds": stats.pool_rebuilds,
            # durable-campaign lineage: which store held the records,
            # under which campaign id, and whether any of this run's
            # work was inherited from a previous (killed) life
            "campaign_id": stats.campaign_id,
            "store": stats.store,
            "resumed": stats.resumed,
            "shard": stats.shard,
            "wall_time_s": round(stats.wall_time_s, 6),
            "sim_time_s": round(stats.sim_time_s, 6),
        }
    return manifest


def save_experiment_output(
    out: ExperimentOutput,
    base_dir: str | os.PathLike,
    seed: int | None = None,
) -> Path:
    """Persist one output under ``<base_dir>/<experiment_id>/``.

    Written artifacts: ``rows.csv`` (when the experiment has rows),
    ``report.txt`` (the rendered terminal report), ``checks.json``
    (shape-check outcomes), and ``manifest.json`` — provenance enough
    to audit a recorded number later: what ran, at what scale/seed, on
    which host, under which engine-semantics version, and how much of
    it replayed from the result cache.
    """
    from ..analysis.tables import write_csv

    target = Path(base_dir) / out.experiment_id
    target.mkdir(parents=True, exist_ok=True)
    if out.rows:
        write_csv(out.rows, target / "rows.csv")
    (target / "report.txt").write_text(out.render() + "\n", encoding="utf-8")
    stats = out.campaign
    (target / "checks.json").write_text(
        json.dumps(
            {
                "checks": {name: bool(ok) for name, ok in out.checks.items()},
                "all_checks_pass": bool(out.all_checks_pass),
                # Failed sweep jobs (keep_going mode) are a health
                # signal distinct from shape checks: the rows exist but
                # some of the data behind them is missing.
                "failed_jobs": stats.failed if stats is not None else 0,
                "retried_jobs": stats.retried if stats is not None else 0,
                "recovered_jobs": stats.recovered if stats is not None else 0,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    (target / "manifest.json").write_text(
        json.dumps(_campaign_manifest(out, seed), indent=2, sort_keys=True, default=str)
        + "\n",
        encoding="utf-8",
    )
    return target
