"""Ablation experiments for the paper's swept-but-unplotted dimensions.

Section 1.2: "we varied the size of HBM, the source of the access
traces, the number of cores, the distribution of work across the cores,
the method by which we permute priorities (none, cycle, cycle-reverse,
interleave, Dynamic Priority), how often we remapped priorities, the
number of channels to DRAM (1-10), and whether the DRAM queue is FIFO
or Priority. In this paper, we present an interesting subset of them."

These experiments cover the rest of that grid:

* :func:`channels_ablation` — q from 1 to 10 (the Theorem 3 axis);
* :func:`permutation_scheme_ablation` — none / cycle / cycle-reverse /
  interleave / dynamic / random;
* :func:`asymmetric_work_ablation` — unequal per-thread work, where the
  paper predicts Cycle Priority "continuously places the same thread
  behind the most demanding thread" while Dynamic Priority stays robust;
* :func:`replacement_ablation` — LRU vs FIFO vs CLOCK vs Random vs
  Belady, demonstrating section 2's "minimizing cache misses is not the
  same as minimizing makespan";
* :func:`shared_pages_ablation` — non-disjoint access sequences, the
  paper's section 6.1 future work: as the shared fraction grows, shared
  fetches amortize across cores and Priority's starvation softens (a
  high-priority thread prefetches for everyone);
* :func:`frfcfs_ablation` — the FR-FCFS discipline of real controllers
  (section 1.3): being a FIFO variant, it inherits FIFO's Omega(p)
  pathology on the adversarial workload, which is exactly why the paper
  argues for priority-based controller hardware.

All six are sweep campaigns: each declares its job grid and reduces
the resulting records, so every ablation shares the process pool and
the persistent result cache with the figure experiments.
"""

from __future__ import annotations

from ..analysis import SweepJob, WorkloadSpec, format_table, line_plot
from ..core import SimulationConfig
from .base import Campaign, CampaignContext, ExperimentOutput, Reduction

__all__ = [
    "channels_ablation",
    "permutation_scheme_ablation",
    "asymmetric_work_ablation",
    "replacement_ablation",
    "shared_pages_ablation",
    "frfcfs_ablation",
]


def _channels_settings(scale: str):
    if scale == "smoke":
        return 16, 32, 10, (1, 2, 4, 8, 10)
    return 64, 64, 30, tuple(range(1, 11))


def _channels_jobs(ctx: CampaignContext) -> list[SweepJob]:
    p, pages, repeats, qs = _channels_settings(ctx.scale)
    spec = WorkloadSpec.make(
        "adversarial_cycle", threads=p, seed=ctx.seed, pages=pages, repeats=repeats
    )
    k = p * pages // 4
    return [
        SweepJob(
            spec,
            SimulationConfig(hbm_slots=k, channels=q, arbitration=arb, seed=ctx.seed),
            tag="ablation_channels",
        )
        for q in qs
        for arb in ("fifo", "priority")
    ]


def _channels_reduce(ctx: CampaignContext, records) -> Reduction:
    _, _, _, qs = _channels_settings(ctx.scale)
    by = {(r.job.config.channels, r.job.config.arbitration): r for r in records}
    rows = [
        {
            "channels": q,
            "fifo_makespan": by[(q, "fifo")].makespan,
            "priority_makespan": by[(q, "priority")].makespan,
            "ratio": round(by[(q, "fifo")].makespan / by[(q, "priority")].makespan, 3),
        }
        for q in qs
    ]
    checks = {
        # more channels help FIFO linearly (its makespan is pure
        # serialized transfer time on this workload)
        "fifo_improves_with_q": by[(qs[-1], "fifo")].makespan
        < by[(qs[0], "fifo")].makespan,
        # Priority may *degrade* mildly with q — more concurrent
        # fetchers pollute the top threads' working sets under LRU,
        # consistent with Theorem 3's O(q) (not O(1)) ratio. Assert the
        # degradation stays within the theorem's linear envelope.
        "priority_degradation_bounded": by[(qs[-1], "priority")].makespan
        <= 2.0 * by[(qs[0], "priority")].makespan,
        # extra bandwidth shrinks FIFO's disadvantage (s bandwidth
        # augmentation divides the Theorem 2 gap)
        "bandwidth_augmentation_closes_gap": rows[-1]["ratio"] < rows[0]["ratio"],
    }
    plot = line_plot(
        {
            "fifo": [(q, by[(q, "fifo")].makespan) for q in qs],
            "priority": [(q, by[(q, "priority")].makespan) for q in qs],
        },
        title="makespan vs far-channel count",
        xlabel="channels q",
        ylabel="makespan",
    )
    return Reduction(
        rows=rows,
        checks=checks,
        text=format_table(rows, title="q ablation") + "\n\n" + plot,
    )


CHANNELS = Campaign.sweep(
    "ablation_channels",
    "Ablation: far-channel count q in 1..10",
    _channels_jobs,
    _channels_reduce,
)


def channels_ablation(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """FIFO vs Priority as the far-channel count q grows from 1 to 10.

    Findings at paper scale: FIFO improves proportionally to q (its
    makespan is serialized transfer time), closing the gap Theorem 2
    predicts bandwidth augmentation should divide; Priority improves
    little and can even degrade slightly at large q, because concurrent
    fetchers from many threads pollute the leaders' LRU working sets —
    the empirical face of Theorem 3's O(q) competitive ratio.
    """
    return CHANNELS.run(scale, processes, cache_dir, seed)


_SCHEME_REMAPPERS = (
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
)


def _schemes_jobs(ctx: CampaignContext) -> list[SweepJob]:
    if ctx.scale == "smoke":
        wl_kwargs = dict(n=1000, page_bytes=256, coalesce=True)
        p, k = 48, 48
    else:
        wl_kwargs = dict(n=1500, page_bytes=256, coalesce=True)
        p, k = 64, 96
    spec = WorkloadSpec.make("sort", threads=p, seed=ctx.seed, **wl_kwargs)
    T = 10 * k
    schemes = [("fifo", None), ("priority", None), ("random", None)] + [
        (arb, T) for arb in _SCHEME_REMAPPERS
    ]
    return [
        SweepJob(
            spec,
            SimulationConfig(
                hbm_slots=k, arbitration=arb, remap_period=period, seed=ctx.seed
            ),
            tag="ablation_schemes",
        )
        for arb, period in schemes
    ]


def _schemes_reduce(ctx: CampaignContext, records) -> Reduction:
    rows = [
        {
            "scheme": r.job.config.arbitration,
            "makespan": r.makespan,
            "inconsistency": round(r.inconsistency, 3),
            "mean_response": round(r.mean_response, 3),
            "max_response": r.max_response,
        }
        for r in records
    ]
    by = {r.job.config.arbitration: r for r in records}
    checks = {
        # "The results for deterministic remapping are similar for
        # balanced workloads" — all remapping schemes within ~1/3 of
        # each other on makespan.
        "remapping_schemes_agree_on_balanced_work": max(
            by[s].makespan for s in _SCHEME_REMAPPERS
        )
        < 1.35 * min(by[s].makespan for s in _SCHEME_REMAPPERS),
        # remapping never blows inconsistency up beyond Priority's, and
        # the randomized scheme cuts it substantially
        "remapping_bounded_by_priority_inconsistency": all(
            by[s].inconsistency < 1.2 * by["priority"].inconsistency
            for s in _SCHEME_REMAPPERS
        ),
        "dynamic_cuts_inconsistency": by["dynamic_priority"].inconsistency
        < 0.7 * by["priority"].inconsistency,
        # and none loses to FIFO on makespan
        "remapping_beats_fifo": all(
            by[s].makespan <= 1.05 * by["fifo"].makespan for s in _SCHEME_REMAPPERS
        ),
    }
    return Reduction(
        rows=rows,
        checks=checks,
        text=format_table(rows, title="permutation schemes"),
    )


SCHEMES = Campaign.sweep(
    "ablation_schemes",
    "Ablation: priority permutation schemes (balanced work)",
    _schemes_jobs,
    _schemes_reduce,
)


def permutation_scheme_ablation(
    scale="smoke", processes=None, cache_dir=None, seed=0
) -> ExperimentOutput:
    """All permutation schemes at a contended point (balanced work)."""
    return SCHEMES.run(scale, processes, cache_dir, seed)


def _asymmetric_jobs(ctx: CampaignContext) -> list[SweepJob]:
    if ctx.scale == "smoke":
        p, n = 8, 600
    else:
        p, n = 16, 1200
    factors = [4.0] + [1.0] * (p - 1)  # one demanding thread
    spec = WorkloadSpec.make(
        "sort",
        threads=p,
        seed=ctx.seed,
        n=n,
        page_bytes=256,
        coalesce=True,
        work_factors=tuple(factors),
    )
    k = 24 * p // 4
    T = 5 * k
    return [
        SweepJob(
            spec,
            SimulationConfig(
                hbm_slots=k, arbitration=arb, remap_period=T, seed=ctx.seed
            ),
            tag="ablation_asymmetric",
        )
        for arb in ("dynamic_priority", "cycle_priority")
    ]


def _asymmetric_reduce(ctx: CampaignContext, records) -> Reduction:
    by = {r.job.config.arbitration: r for r in records}
    rows = [
        {
            "scheme": name,
            "makespan": by[name].makespan,
            "inconsistency": round(by[name].inconsistency, 3),
            "max_response": by[name].max_response,
        }
        for name in ("dynamic_priority", "cycle_priority")
    ]
    checks = {
        # both finish in similar time...
        "makespans_comparable": by["cycle_priority"].makespan
        < 1.3 * by["dynamic_priority"].makespan,
        # ...and both complete the asymmetric workload at all
        "both_complete": all(r.total_requests > 0 for r in records),
    }
    return Reduction(
        rows=rows,
        checks=checks,
        data={"records": records},
        text=format_table(rows, title="asymmetric work"),
    )


ASYMMETRIC = Campaign.sweep(
    "ablation_asymmetric",
    "Ablation: asymmetric work (Dynamic vs Cycle Priority)",
    _asymmetric_jobs,
    _asymmetric_reduce,
)


def asymmetric_work_ablation(
    scale="smoke", processes=None, cache_dir=None, seed=0
) -> ExperimentOutput:
    """Unequal work distribution: Dynamic vs Cycle starvation.

    The paper (section 4): "When the work is asymmetric, Cycle Priority
    continuously places the same thread behind the most demanding
    thread, causing small amounts of starvation." We give thread 0 a
    several-times-larger instance and compare worst-thread starvation.
    """
    return ASYMMETRIC.run(scale, processes, cache_dir, seed)


_REPLACEMENTS = ("lru", "fifo", "clock", "random", "mru", "belady")


def _replacement_jobs(ctx: CampaignContext) -> list[SweepJob]:
    if ctx.scale == "smoke":
        p, length, pages, k = 8, 1500, 64, 128
    else:
        p, length, pages, k = 32, 5000, 96, 512
    spec = WorkloadSpec.make(
        "zipf", threads=p, seed=ctx.seed, length=length, pages=pages
    )
    return [
        SweepJob(
            spec,
            SimulationConfig(
                hbm_slots=k,
                arbitration="priority",
                replacement=replacement,
                seed=ctx.seed,
            ),
            tag="ablation_replacement",
        )
        for replacement in _REPLACEMENTS
    ]


def _replacement_reduce(ctx: CampaignContext, records) -> Reduction:
    by = {r.job.config.replacement: r for r in records}
    rows = [
        {
            "replacement": replacement,
            "makespan": by[replacement].makespan,
            "hit_rate": round(by[replacement].hit_rate, 4),
            "misses": by[replacement].misses,
        }
        for replacement in _REPLACEMENTS
    ]
    checks = {
        # Belady approximates the per-stream miss optimum
        "belady_minimizes_misses": by["belady"].misses
        <= min(by[r].misses for r in ("lru", "fifo", "clock", "random")),
        # the classical policies are mutually close (replacement is not
        # the problem)
        "classical_policies_close": max(
            by[r].makespan for r in ("lru", "fifo", "clock")
        )
        < 1.3 * min(by[r].makespan for r in ("lru", "fifo", "clock")),
        # fewer misses does not linearly buy makespan: LRU's makespan is
        # within a modest factor of Belady's despite more misses
        "misses_are_not_makespan": by["lru"].makespan
        < 1.5 * by["belady"].makespan,
    }
    return Reduction(
        rows=rows,
        checks=checks,
        text=format_table(rows, title="replacement policies"),
    )


REPLACEMENT = Campaign.sweep(
    "ablation_replacement",
    "Ablation: HBM replacement policies",
    _replacement_jobs,
    _replacement_reduce,
)


def replacement_ablation(
    scale="smoke", processes=None, cache_dir=None, seed=0
) -> ExperimentOutput:
    """Replacement policies under Priority arbitration.

    Demonstrates section 2's "minimizing cache misses is not the same as
    minimizing makespan": the Belady baseline minimizes misses per
    stream yet does not necessarily minimize makespan, while LRU-family
    policies all land close together (replacement "is not the problem").
    """
    return REPLACEMENT.run(scale, processes, cache_dir, seed)


_SHARED_FRACTIONS = (0.0, 0.25, 0.5, 0.9)
_SHARED_POLICIES = ("fifo", "priority", "dynamic_priority")


def _shared_settings(scale: str):
    if scale == "smoke":
        return 8, 2000, 48, 48, 96
    return 32, 5000, 64, 64, 256


def _shared_jobs(ctx: CampaignContext) -> list[SweepJob]:
    p, length, private_pages, shared_pages, k = _shared_settings(ctx.scale)
    jobs = []
    for fraction in _SHARED_FRACTIONS:
        spec = WorkloadSpec.make(
            "shared",
            threads=p,
            seed=ctx.seed,
            length=length,
            private_pages=private_pages,
            shared_pages=shared_pages,
            shared_fraction=fraction,
        )
        for arb in _SHARED_POLICIES:
            jobs.append(
                SweepJob(
                    spec,
                    SimulationConfig(
                        hbm_slots=k,
                        arbitration=arb,
                        remap_period=10 * k if arb == "dynamic_priority" else None,
                        seed=ctx.seed,
                    ),
                    tag="ablation_shared",
                )
            )
    return jobs


def _shared_reduce(ctx: CampaignContext, records) -> Reduction:
    rows = []
    fetch_by_fraction: dict[float, int] = {}
    for record in records:
        fraction = dict(record.job.workload.params)["shared_fraction"]
        arb = record.job.config.arbitration
        if arb == "priority":
            fetch_by_fraction[fraction] = record.fetches
        rows.append(
            {
                "shared_fraction": fraction,
                "arbitration": arb,
                "makespan": record.makespan,
                "fetches": record.fetches,
                "hit_rate": round(record.hit_rate, 4),
                "max_response": record.max_response,
            }
        )
    priority_rows = [r for r in rows if r["arbitration"] == "priority"]
    checks = {
        # every run completes and conserves requests (simulator is
        # well-defined without Property 1)
        "all_policies_complete": len(rows)
        == len(_SHARED_FRACTIONS) * len(_SHARED_POLICIES),
        # sharing amortizes far-channel traffic
        "sharing_reduces_fetches": fetch_by_fraction[0.9]
        < fetch_by_fraction[0.0],
        # shared prefetching softens Priority's worst stall
        "sharing_softens_priority_starvation": priority_rows[-1]["max_response"]
        <= priority_rows[0]["max_response"],
    }
    return Reduction(
        rows=rows,
        checks=checks,
        text=format_table(rows, title="shared pages"),
    )


SHARED = Campaign.sweep(
    "ablation_shared",
    "Ablation: non-disjoint access sequences (section 6.1)",
    _shared_jobs,
    _shared_reduce,
)


def shared_pages_ablation(
    scale="smoke", processes=None, cache_dir=None, seed=0
) -> ExperimentOutput:
    """Non-disjoint sequences (section 6.1 future work).

    Sweeps the fraction of references landing in a common shared
    segment while holding each thread's reference count and the total
    page universe fixed. Expectations: far-channel traffic (fetches)
    falls as sharing grows (one fetch serves many cores), and every
    policy still completes — the simulator is well-defined outside
    Property 1 even though the theory is not.
    """
    return SHARED.run(scale, processes, cache_dir, seed)


def _frfcfs_settings(scale: str):
    if scale == "smoke":
        return (8, 16, 32), 32, 12
    return (8, 16, 32, 64), 64, 30


def _frfcfs_jobs(ctx: CampaignContext) -> list[SweepJob]:
    threads_list, pages, repeats = _frfcfs_settings(ctx.scale)
    jobs = []
    for p in threads_list:
        spec = WorkloadSpec.make(
            "adversarial_cycle",
            threads=p,
            seed=ctx.seed,
            pages=pages,
            repeats=repeats,
        )
        k = p * pages // 4
        for arb in ("fifo", "fr_fcfs", "priority"):
            jobs.append(
                SweepJob(
                    spec,
                    SimulationConfig(hbm_slots=k, arbitration=arb, seed=ctx.seed),
                    tag="ablation_fr_fcfs",
                )
            )
    return jobs


def _frfcfs_reduce(ctx: CampaignContext, records) -> Reduction:
    threads_list, _, _ = _frfcfs_settings(ctx.scale)
    by = {
        (r.job.workload.threads, r.job.config.arbitration): r for r in records
    }
    rows = []
    gaps: dict[str, list[float]] = {"fifo": [], "fr_fcfs": []}
    for p in threads_list:
        results = {arb: by[(p, arb)] for arb in ("fifo", "fr_fcfs", "priority")}
        for arb in ("fifo", "fr_fcfs"):
            gaps[arb].append(
                results[arb].makespan / results["priority"].makespan
            )
        rows.append(
            {
                "threads": p,
                "fifo_makespan": results["fifo"].makespan,
                "fr_fcfs_makespan": results["fr_fcfs"].makespan,
                "priority_makespan": results["priority"].makespan,
                "fifo_gap": round(gaps["fifo"][-1], 3),
                "fr_fcfs_gap": round(gaps["fr_fcfs"][-1], 3),
                "fr_fcfs_hit_rate": round(results["fr_fcfs"].hit_rate, 4),
            }
        )
    checks = {
        # FR-FCFS still degrades relative to Priority as p grows
        "fr_fcfs_gap_grows": gaps["fr_fcfs"][-1] > 1.5 * gaps["fr_fcfs"][0],
        # its accidental row clustering beats pure FIFO at scale ...
        "row_clustering_beats_plain_fifo": rows[-1]["fr_fcfs_makespan"]
        <= rows[-1]["fifo_makespan"],
        # ... but explicit Priority still wins everywhere
        "priority_beats_fr_fcfs_everywhere": all(
            gap >= 1.0 for gap in gaps["fr_fcfs"]
        ),
    }
    return Reduction(
        rows=rows,
        checks=checks,
        data={"gaps": gaps},
        text=format_table(rows, title="FR-FCFS vs FIFO vs Priority"),
    )


FRFCFS = Campaign.sweep(
    "ablation_fr_fcfs",
    "Ablation: FR-FCFS (real-controller FCFS variant)",
    _frfcfs_jobs,
    _frfcfs_reduce,
)


def frfcfs_ablation(
    scale="smoke", processes=None, cache_dir=None, seed=0
) -> ExperimentOutput:
    """FR-FCFS (real-hardware FCFS variant) vs FIFO vs Priority.

    Section 1.3: Intel's far-channel arbitration is "likely a solution
    based on [49] ... first-ready first-come-first-served. As the name
    implies, this is a variant of FCFS". On the Dataset 3 adversary the
    measurement is nuanced and supports the paper's core thesis from an
    unexpected direction: because a DRAM row spans several threads'
    page blocks, the open-row preference *clusters* service on a few
    threads at a time — an implicit, locality-driven priority — so
    FR-FCFS beats pure FIFO at scale. Reordering is exactly what
    matters (the paper's point); but the accidental clustering is far
    weaker than an explicit pecking order, so FR-FCFS still trails
    Priority by a growing factor.
    """
    return FRFCFS.run(scale, processes, cache_dir, seed)
