"""Figure 4: Dynamic Priority vs FIFO.

Paper protocol: the Figure 2 sweeps rerun with Dynamic Priority
(random priority permutation every ``T = 10k`` ticks) in place of
static Priority. Randomized remapping "has mitigated any advantages
that FIFO held in Figure 2": at every tested point Dynamic Priority's
makespan is at least as good as FIFO's, while keeping Priority's
high-thread-count dominance.
"""

from __future__ import annotations

from .base import ExperimentOutput
from .figure2 import _ratio_experiment

__all__ = ["figure4", "figure4a", "figure4b", "REMAP_MULTIPLIER"]

#: the paper randomizes every 10 * k ticks in Figure 4
REMAP_MULTIPLIER = 10


def _figure4_panel(
    experiment_id: str,
    title: str,
    dataset: str,
    scale: str,
    processes,
    cache_dir,
    seed: int,
) -> ExperimentOutput:
    out = _ratio_experiment(
        experiment_id,
        title,
        dataset,
        "fifo",
        "dynamic_priority",
        scale,
        processes,
        cache_dir,
        seed,
        remap_multiplier=REMAP_MULTIPLIER,
    )
    series = out.data["ratio_series"]
    all_ratios = [r for s in series.values() for _, r in s]
    # Replace the generic checks with Figure 4's specific claim set.
    out.checks = {
        # Dynamic Priority is "either as good as FIFO or outperforms
        # FIFO on makespan" everywhere (small tolerance for ties).
        "dynamic_never_loses_to_fifo": min(all_ratios, default=0) >= 0.97,
        # and still wins big at high thread counts
        "dynamic_wins_at_high_threads": max(
            (s[-1][1] for s in series.values() if s), default=0
        )
        > 1.05,
    }
    return out


def figure4a(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 4a: FIFO vs Dynamic Priority on SpGEMM."""
    return _figure4_panel(
        "fig4a",
        "Figure 4a: FIFO/DynamicPriority makespan ratio, SpGEMM",
        "spgemm",
        scale,
        processes,
        cache_dir,
        seed,
    )


def figure4b(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 4b: FIFO vs Dynamic Priority on GNU sort."""
    return _figure4_panel(
        "fig4b",
        "Figure 4b: FIFO/DynamicPriority makespan ratio, GNU sort",
        "sort",
        scale,
        processes,
        cache_dir,
        seed,
    )


def figure4(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Both panels of Figure 4, concatenated."""
    a = figure4a(scale, processes, cache_dir, seed)
    b = figure4b(scale, processes, cache_dir, seed)
    return ExperimentOutput(
        experiment_id="fig4",
        title="Figure 4: Dynamic Priority vs FIFO",
        scale=scale,
        rows=a.rows + b.rows,
        text=a.render() + "\n\n" + b.render(),
        checks={
            **{f"4a_{k}": v for k, v in a.checks.items()},
            **{f"4b_{k}": v for k, v in b.checks.items()},
        },
        data={"fig4a": a.data, "fig4b": b.data},
    )
