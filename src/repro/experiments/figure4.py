"""Figure 4: Dynamic Priority vs FIFO.

Paper protocol: the Figure 2 sweeps rerun with Dynamic Priority
(random priority permutation every ``T = 10k`` ticks) in place of
static Priority. Randomized remapping "has mitigated any advantages
that FIFO held in Figure 2": at every tested point Dynamic Priority's
makespan is at least as good as FIFO's, while keeping Priority's
high-thread-count dominance.

Both panels reuse Figure 2's :func:`~repro.experiments.figure2.ratio_campaign`
with Figure 4's own claim set swapped in via ``checks_fn``.
"""

from __future__ import annotations

from .base import ExperimentOutput
from .figure2 import combine_panels, ratio_campaign

__all__ = ["figure4", "figure4a", "figure4b", "REMAP_MULTIPLIER"]

#: the paper randomizes every 10 * k ticks in Figure 4
REMAP_MULTIPLIER = 10


def _figure4_checks(
    by_k: dict[int, list[tuple[int, float]]],
) -> dict[str, bool]:
    all_ratios = [ratio for series in by_k.values() for _, ratio in series]
    return {
        # Dynamic Priority is "either as good as FIFO or outperforms
        # FIFO on makespan" everywhere (small tolerance for ties).
        "dynamic_never_loses_to_fifo": min(all_ratios, default=0) >= 0.97,
        # and still wins big at high thread counts
        "dynamic_wins_at_high_threads": max(
            (series[-1][1] for series in by_k.values() if series), default=0
        )
        > 1.05,
    }


FIG4A = ratio_campaign(
    "fig4a",
    "Figure 4a: FIFO/DynamicPriority makespan ratio, SpGEMM",
    "spgemm",
    "fifo",
    "dynamic_priority",
    remap_multiplier=REMAP_MULTIPLIER,
    checks_fn=_figure4_checks,
)

FIG4B = ratio_campaign(
    "fig4b",
    "Figure 4b: FIFO/DynamicPriority makespan ratio, GNU sort",
    "sort",
    "fifo",
    "dynamic_priority",
    remap_multiplier=REMAP_MULTIPLIER,
    checks_fn=_figure4_checks,
)


def figure4a(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 4a: FIFO vs Dynamic Priority on SpGEMM."""
    return FIG4A.run(scale, processes, cache_dir, seed)


def figure4b(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 4b: FIFO vs Dynamic Priority on GNU sort."""
    return FIG4B.run(scale, processes, cache_dir, seed)


def figure4(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Both panels of Figure 4, concatenated."""
    return combine_panels(
        "fig4",
        "Figure 4: Dynamic Priority vs FIFO",
        scale,
        {
            "4a": figure4a(scale, processes, cache_dir, seed),
            "4b": figure4b(scale, processes, cache_dir, seed),
        },
    )
