"""Table 2 and Figure 6: KNL model-validation microbenchmarks.

Paper protocol (section 5): pointer chasing (latency) and GLUPS
(bandwidth) on Knights Landing in flat-DRAM, flat-HBM, and cache modes,
across array sizes from 1KiB to 64GiB. We run the same microbenchmarks
on the synthetic KNL machine (:mod:`repro.machine.knl`); the checks
assert the four section 5 properties:

1. HBM and DRAM have similar direct latency (difference ~24ns);
2. HBM bandwidth is ~4.3-4.8x DRAM's;
3. cache-mode misses roughly double the (post-L2) latency;
4. cache-mode bandwidth collapses once the working set exceeds HBM,
   but stays above DRAM's.
"""

from __future__ import annotations

from ..analysis import format_table, line_plot
from ..machine import (
    GIB,
    KIB,
    MIB,
    default_bandwidth_sizes,
    default_latency_sizes,
    glups_curve,
    knl_machines,
    pointer_chase_curve,
)
from .base import ExperimentOutput, require_scale

__all__ = ["table2a", "table2b", "figure6", "table2"]

#: paper's reference cells for calibration-drift reporting (ns)
PAPER_TABLE_2A = {
    16 * MIB: (168.9, 187.6, 190.6),
    8 * GIB: (318.3, 343.1, 378.3),
    64 * GIB: (364.7, None, 489.6),
}

_MODES = ("DRAM", "HBM", "Cache")


def _size_label(nbytes: int) -> str:
    if nbytes >= GIB:
        return f"{nbytes // GIB}GiB"
    if nbytes >= MIB:
        return f"{nbytes // MIB}MiB"
    return f"{nbytes // KIB}KiB"


def table2a(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Table 2a: pointer-chase latency for DRAM / HBM / Cache modes."""
    require_scale(scale)
    operations = 1 << (13 if scale == "smoke" else 17)
    sizes = [s for s in default_latency_sizes(16 * MIB, 64 * GIB)]
    machines = knl_machines()
    curves = pointer_chase_curve(machines, sizes, operations=operations, seed=seed)

    rows = []
    for i, size in enumerate(sizes):
        row: dict = {"array_size": _size_label(size)}
        for mode in _MODES:
            r = curves[mode][i]
            row[f"{mode.lower()}_ns"] = round(r.mean_ns, 1) if r else None
        rows.append(row)

    def mean_ns(mode: str, size: int) -> float | None:
        r = curves[mode][sizes.index(size)]
        return r.mean_ns if r else None

    gaps = [
        mean_ns("HBM", s) - mean_ns("DRAM", s)
        for s in sizes
        if mean_ns("HBM", s) is not None
    ]
    checks = {
        # Property 1: similar latency, HBM slower by roughly 24ns.
        "hbm_dram_gap_small_and_positive": all(10 < g < 45 for g in gaps),
        # latencies rise monotonically with array size in every mode
        "latency_monotone_in_size": all(
            all(
                a.mean_ns <= b.mean_ns * 1.05
                for a, b in zip(series, series[1:])
                if a is not None and b is not None
            )
            for series in curves.values()
        ),
        # flat HBM cannot bind arrays beyond 8GiB (the paper's '-')
        "hbm_unallocatable_past_8gib": all(
            curves["HBM"][sizes.index(s)] is None for s in (16 * GIB, 64 * GIB)
        ),
        # cache mode degrades beyond HBM capacity, flat DRAM does not
        "cache_mode_penalty_beyond_hbm": (
            mean_ns("Cache", 64 * GIB) - mean_ns("Cache", 8 * GIB)
            > 2 * (mean_ns("DRAM", 64 * GIB) - mean_ns("DRAM", 8 * GIB))
        ),
    }
    text = format_table(rows, title="Table 2a: pointer-chase latency (ns)")
    return ExperimentOutput(
        experiment_id="tab2a",
        title="Table 2a: pointer-chase latency",
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"curves": curves, "sizes": sizes},
    )


def table2b(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Table 2b: GLUPS bandwidth for DRAM / HBM / Cache modes."""
    require_scale(scale)
    sizes = default_bandwidth_sizes(512 * MIB, 64 * GIB)
    machines = knl_machines()
    curves = glups_curve(machines, sizes, threads=272, seed=seed)

    rows = []
    for i, size in enumerate(sizes):
        row: dict = {"array_size": _size_label(size)}
        for mode in _MODES:
            r = curves[mode][i]
            row[f"{mode.lower()}_mib_s"] = round(r.mib_per_s) if r else None
        rows.append(row)

    def bw(mode: str, size: int) -> float | None:
        r = curves[mode][sizes.index(size)]
        return r.mib_per_s if r else None

    in_hbm_sizes = [s for s in sizes if s <= 8 * GIB]
    ratios = [bw("HBM", s) / bw("DRAM", s) for s in in_hbm_sizes]
    checks = {
        # Property 2: HBM bandwidth ~4.3-4.8x DRAM for fitting arrays.
        "hbm_bandwidth_advantage": all(3.5 < r < 6.0 for r in ratios),
        # Property 4: cache mode halves past 2x HBM capacity...
        "cache_bandwidth_halves_past_hbm": bw("Cache", 32 * GIB)
        < 0.6 * bw("Cache", 16 * GIB),
        # ... but remains above DRAM.
        "cache_stays_above_dram": all(
            bw("Cache", s) > bw("DRAM", s) for s in (32 * GIB, 64 * GIB)
        ),
        "hbm_unallocatable_past_8gib": bw("HBM", 16 * GIB) is None,
    }
    text = format_table(rows, title="Table 2b: GLUPS bandwidth (MiB/s), 272 threads")
    return ExperimentOutput(
        experiment_id="tab2b",
        title="Table 2b: GLUPS bandwidth",
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"curves": curves, "sizes": sizes},
    )


def figure6(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Figure 6: latency curves from 1KiB to 64GiB (6a) and zoomed (6b).

    The full sweep exposes the L1 / L2 / mesh plateaus the paper marks
    with dotted lines; the zoomed panel is Table 2a's range.
    """
    require_scale(scale)
    operations = 1 << (13 if scale == "smoke" else 17)
    sizes = default_latency_sizes(1 * KIB, 64 * GIB)
    machines = knl_machines()
    curves = pointer_chase_curve(machines, sizes, operations=operations, seed=seed)

    rows = []
    for i, size in enumerate(sizes):
        row: dict = {"array_size": _size_label(size)}
        for mode in _MODES:
            r = curves[mode][i]
            row[f"{mode.lower()}_ns"] = round(r.mean_ns, 1) if r else None
        rows.append(row)

    series = {
        mode: [
            (float(sizes[i]), r.mean_ns)
            for i, r in enumerate(curves[mode])
            if r is not None
        ]
        for mode in _MODES
    }
    # plateau detection for the checks: latency at 1KiB (L1), 512KiB
    # (L2), 2MiB (mesh), 1GiB (memory) must be well separated.
    def at(mode: str, size: int) -> float:
        return curves[mode][sizes.index(size)].mean_ns

    checks = {
        "l1_plateau_fast": at("DRAM", 1 * KIB) < 10,
        "l2_plateau_distinct": 5 < at("DRAM", 512 * KIB) < 60,
        "mesh_plateau_distinct": 60 < at("DRAM", 2 * MIB) < 200,
        "memory_plateau_distinct": at("DRAM", 1 * GIB) > 200,
        "modes_agree_below_l2": abs(at("DRAM", 64 * KIB) - at("HBM", 64 * KIB))
        < 2.0,
    }
    plot = line_plot(
        series,
        title="Figure 6a: pointer chasing across the hierarchy",
        xlabel="array bytes (log)",
        ylabel="ns/access",
        logx=True,
        width=70,
    )
    zoom = line_plot(
        {
            mode: [(x, y) for x, y in pts if x >= 16 * MIB]
            for mode, pts in series.items()
        },
        title="Figure 6b: zoomed beyond shared L2",
        xlabel="array bytes (log)",
        ylabel="ns/access",
        logx=True,
        width=70,
    )
    text = format_table(rows, title="Figure 6 data") + "\n\n" + plot + "\n\n" + zoom
    return ExperimentOutput(
        experiment_id="fig6",
        title="Figure 6: pointer chasing on HBM, DRAM, and HBM-as-cache",
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"curves": curves, "sizes": sizes},
    )


def table2(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Both halves of Table 2."""
    a = table2a(scale, processes, cache_dir, seed)
    b = table2b(scale, processes, cache_dir, seed)
    return ExperimentOutput(
        experiment_id="tab2",
        title="Table 2: KNL microbenchmarks",
        scale=scale,
        rows=a.rows + b.rows,
        text=a.render() + "\n\n" + b.render(),
        checks={
            **{f"2a_{k}": v for k, v in a.checks.items()},
            **{f"2b_{k}": v for k, v in b.checks.items()},
        },
        data={"tab2a": a.data, "tab2b": b.data},
    )
