"""Experiment suite: one runnable per paper table/figure/theorem."""

from .base import ExperimentOutput
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["ExperimentOutput", "EXPERIMENTS", "experiment_ids", "run_experiment"]
