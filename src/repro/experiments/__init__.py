"""Experiment suite: one runnable per paper table/figure/theorem."""

from .base import (
    Campaign,
    CampaignContext,
    ExperimentOutput,
    Reduction,
    save_experiment_output,
)
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = [
    "Campaign",
    "CampaignContext",
    "ExperimentOutput",
    "Reduction",
    "save_experiment_output",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
]
