"""Figure 3: the FIFO catastrophe on the adversarial cyclic workload.

Paper protocol (Dataset 3): every thread cycles through the sequence
1..256 one hundred times; HBM holds only a quarter of the unique pages
across all threads. FIFO "misses every page" (the re-reference always
arrives after eviction) while Priority parks low-priority threads and
lets high-priority threads run from HBM, so FIFO's makespan is up to
40x larger and the gap scales linearly with thread count.

The sweep grid comes from :func:`repro.theory.fcfs_gap_jobs`; the
reducer rebuilds :class:`~repro.theory.GapPoint` s (with the certified
lower bound recomputed from the cached traces) via
:func:`repro.theory.fcfs_gap_points`.
"""

from __future__ import annotations

from typing import Any

from ..analysis import format_table, line_plot
from ..theory import fcfs_gap_jobs, fcfs_gap_points, fit_linear
from .base import Campaign, CampaignContext, ExperimentOutput, Reduction

__all__ = ["figure3", "FIG3_SETTINGS"]

FIG3_SETTINGS: dict[str, dict[str, Any]] = {
    "smoke": dict(
        thread_counts=(4, 8, 16, 32),
        pages_per_thread=64,
        repeats=20,
    ),
    "paper": dict(
        thread_counts=(4, 8, 16, 32, 64, 128),
        pages_per_thread=256,
        repeats=100,
    ),
}


def _build_jobs(ctx: CampaignContext):
    settings = FIG3_SETTINGS[ctx.scale]
    return fcfs_gap_jobs(
        settings["thread_counts"],
        pages_per_thread=settings["pages_per_thread"],
        repeats=settings["repeats"],
        hbm_fraction=0.25,
        seed=ctx.seed,
    )


def _reduce(ctx: CampaignContext, records) -> Reduction:
    points = fcfs_gap_points(records, build_workload=ctx.build_workload)
    rows = [
        {
            "threads": pt.threads,
            "hbm_slots": pt.hbm_slots,
            "fifo_makespan": pt.fifo_makespan,
            "priority_makespan": pt.priority_makespan,
            "ratio": round(pt.gap, 3),
            "fifo_hit_rate": round(pt.fifo_hit_rate, 4),
            "priority_hit_rate": round(pt.priority_hit_rate, 4),
        }
        for pt in points
    ]
    xs = [pt.threads for pt in points]
    gaps = [pt.gap for pt in points]
    slope, intercept, r2 = fit_linear(xs, gaps)

    checks = {
        # "When running on FIFO, we never have a cache hit."
        "fifo_never_hits": all(pt.fifo_hit_rate < 0.005 for pt in points),
        # Priority retains real reuse at scale.
        "priority_hits_at_scale": points[-1].priority_hit_rate > 0.3,
        # "FIFO yields a ... makespan that linearly scales with thread count."
        "gap_grows_linearly": slope > 0 and r2 > 0.9,
        # the gap is monotone in p
        "gap_monotone": all(
            gaps[i] <= gaps[i + 1] + 1e-9 for i in range(len(gaps) - 1)
        ),
        # Priority stays provably good: bounded ratio to the lower bound.
        "priority_ratio_bounded": max(pt.priority_ratio_to_bound for pt in points)
        < 8.0,
    }

    plot = line_plot(
        {"fifo/priority": list(zip(xs, gaps))},
        title="Figure 3: FIFO catastrophe (k = 1/4 of unique pages)",
        xlabel="threads",
        ylabel="makespan ratio",
    )
    text = (
        format_table(rows, title="Figure 3: cyclic adversarial workload")
        + f"\n\nlinear fit: gap = {slope:.3f} * p + {intercept:.3f} (r^2 = {r2:.3f})\n\n"
        + plot
    )
    return Reduction(
        rows=rows,
        checks=checks,
        data={"points": points, "fit": (slope, intercept, r2)},
        text=text,
    )


FIG3 = Campaign.sweep(
    "fig3",
    "Figure 3: FIFO vs Priority on Dataset 3",
    _build_jobs,
    _reduce,
)


def figure3(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Regenerate Figure 3 (FIFO vs Priority on Dataset 3)."""
    return FIG3.run(scale, processes, cache_dir, seed)
