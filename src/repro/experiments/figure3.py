"""Figure 3: the FIFO catastrophe on the adversarial cyclic workload.

Paper protocol (Dataset 3): every thread cycles through the sequence
1..256 one hundred times; HBM holds only a quarter of the unique pages
across all threads. FIFO "misses every page" (the re-reference always
arrives after eviction) while Priority parks low-priority threads and
lets high-priority threads run from HBM, so FIFO's makespan is up to
40x larger and the gap scales linearly with thread count.
"""

from __future__ import annotations

from typing import Any

from ..analysis import format_table, line_plot
from ..theory import fcfs_gap_experiment, fit_linear
from .base import ExperimentOutput, require_scale

__all__ = ["figure3", "FIG3_SETTINGS"]

FIG3_SETTINGS: dict[str, dict[str, Any]] = {
    "smoke": dict(
        thread_counts=(4, 8, 16, 32),
        pages_per_thread=64,
        repeats=20,
    ),
    "paper": dict(
        thread_counts=(4, 8, 16, 32, 64, 128),
        pages_per_thread=256,
        repeats=100,
    ),
}


def figure3(
    scale: str = "smoke",
    processes: int | None = None,  # noqa: ARG001 - runs are sequential per point
    cache_dir=None,  # noqa: ARG001 - workloads are cheap to regenerate
    seed: int = 0,
) -> ExperimentOutput:
    """Regenerate Figure 3 (FIFO vs Priority on Dataset 3)."""
    settings = FIG3_SETTINGS[require_scale(scale)]
    points = fcfs_gap_experiment(
        settings["thread_counts"],
        pages_per_thread=settings["pages_per_thread"],
        repeats=settings["repeats"],
        hbm_fraction=0.25,
        seed=seed,
    )
    rows = [
        {
            "threads": pt.threads,
            "hbm_slots": pt.hbm_slots,
            "fifo_makespan": pt.fifo_makespan,
            "priority_makespan": pt.priority_makespan,
            "ratio": round(pt.gap, 3),
            "fifo_hit_rate": round(pt.fifo_hit_rate, 4),
            "priority_hit_rate": round(pt.priority_hit_rate, 4),
        }
        for pt in points
    ]
    xs = [pt.threads for pt in points]
    gaps = [pt.gap for pt in points]
    slope, intercept, r2 = fit_linear(xs, gaps)

    checks = {
        # "When running on FIFO, we never have a cache hit."
        "fifo_never_hits": all(pt.fifo_hit_rate < 0.005 for pt in points),
        # Priority retains real reuse at scale.
        "priority_hits_at_scale": points[-1].priority_hit_rate > 0.3,
        # "FIFO yields a ... makespan that linearly scales with thread count."
        "gap_grows_linearly": slope > 0 and r2 > 0.9,
        # the gap is monotone in p
        "gap_monotone": all(
            gaps[i] <= gaps[i + 1] + 1e-9 for i in range(len(gaps) - 1)
        ),
        # Priority stays provably good: bounded ratio to the lower bound.
        "priority_ratio_bounded": max(pt.priority_ratio_to_bound for pt in points)
        < 8.0,
    }

    plot = line_plot(
        {"fifo/priority": list(zip(xs, gaps))},
        title="Figure 3: FIFO catastrophe (k = 1/4 of unique pages)",
        xlabel="threads",
        ylabel="makespan ratio",
    )
    text = (
        format_table(rows, title="Figure 3: cyclic adversarial workload")
        + f"\n\nlinear fit: gap = {slope:.3f} * p + {intercept:.3f} (r^2 = {r2:.3f})\n\n"
        + plot
    )
    return ExperimentOutput(
        experiment_id="fig3",
        title="Figure 3: FIFO vs Priority on Dataset 3",
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"points": points, "fit": (slope, intercept, r2)},
    )
