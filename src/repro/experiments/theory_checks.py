"""Theory validation experiments (Theorems 1-4, Lemma 1, Corollary 1).

Not tables in the paper, but load-bearing claims its experiments rest
on; each gets an empirical check:

* **Theorem 1 / 3** — Priority's makespan stays within a small constant
  (times q) of the certified lower bound across workload families,
  HBM sizes, and channel counts.
* **Theorem 2** — the FCFS adversary family's FIFO/Priority gap grows
  linearly in p (also Figure 3's mechanism).
* **Lemma 1 / Theorem 4 / Corollary 1** — the fully-associative ->
  direct-mapped transformation costs O(1) expected accesses per
  reference and O(1) misses per original miss, independent of cache
  size; the concurrent front-insert primitive takes O(log x) steps.

The simulation-backed harnesses (thm1_3, thm2, response_bound) run as
sweep campaigns, so theory validation shares the experiments' process
pool, result cache, and engine dispatch; the analytic ones (lemma1,
thm4) are local campaigns with no sweep stage.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis import SweepJob, WorkloadSpec, format_table
from ..core import SimulationConfig
from ..core.directmapped import concurrent_front_insert, transform_overhead
from ..theory import (
    check_cycle_response_bound,
    cycle_response_time_bound,
    fcfs_gap_jobs,
    fcfs_gap_points,
    fit_linear,
)
from .base import Campaign, CampaignContext, ExperimentOutput, Reduction

__all__ = ["theorem1_3", "theorem2", "lemma1", "theorem4", "response_bound"]

#: arbitration policies raced against Priority in the thm1_3 portfolio
_PORTFOLIO = ("fifo", "priority", "dynamic_priority", "cycle_priority", "random")


def _thm1_3_specs(ctx: CampaignContext):
    """(workload specs, hbm sizes, channel counts) for the thm1_3 grid.

    The cyclic and streaming families are seed-independent generators;
    their specs pin seed=0 so records stay shared across campaign seeds.
    """
    if ctx.scale == "smoke":
        specs = [
            WorkloadSpec.make("random", threads=8, seed=ctx.seed, length=1500, pages=48),
            WorkloadSpec.make("adversarial_cycle", threads=8, seed=0, pages=32, repeats=10),
            WorkloadSpec.make("zipf", threads=8, seed=ctx.seed, length=1500, pages=48),
        ]
        hbm_slots = [32, 128]
        channels = [1, 2, 4]
    else:
        specs = [
            WorkloadSpec.make("random", threads=32, seed=ctx.seed, length=5000, pages=96),
            WorkloadSpec.make("adversarial_cycle", threads=32, seed=0, pages=64, repeats=30),
            WorkloadSpec.make("zipf", threads=32, seed=ctx.seed, length=5000, pages=96),
            WorkloadSpec.make("stream", threads=32, seed=0, length=5000, pages=96),
        ]
        hbm_slots = [64, 256, 1024]
        channels = [1, 2, 4, 8, 10]
    return specs, hbm_slots, channels


def _thm1_3_jobs(ctx: CampaignContext) -> list[SweepJob]:
    specs, hbm_slots, channels = _thm1_3_specs(ctx)
    jobs = []
    for spec in specs:
        for k in hbm_slots:
            for q in channels:
                for arb in _PORTFOLIO:
                    jobs.append(
                        SweepJob(
                            spec,
                            SimulationConfig(
                                hbm_slots=k,
                                channels=q,
                                arbitration=arb,
                                remap_period=(
                                    10 * k
                                    if arb in ("dynamic_priority", "cycle_priority")
                                    else None
                                ),
                                seed=ctx.seed,
                            ),
                            tag="thm1_3",
                        )
                    )
    return jobs


def _thm1_3_reduce(ctx: CampaignContext, records) -> Reduction:
    from ..theory import competitive_ratio, makespan_lower_bound

    specs, hbm_slots, channels = _thm1_3_specs(ctx)
    workloads = {spec: ctx.build_workload(spec) for spec in specs}
    it = iter(records)
    rows = []
    worst_vs_bound = 0.0
    worst_vs_best = 0.0
    worst_per_q: dict[int, float] = {}
    for spec in specs:
        workload = workloads[spec]
        for k in hbm_slots:
            for q in channels:
                bound = makespan_lower_bound(workload.traces, k, q)
                makespans = {arb: next(it).makespan for arb in _PORTFOLIO}
                best = min(makespans.values())
                prio = makespans["priority"]
                ratio_bound = competitive_ratio(prio, bound)
                ratio_best = prio / best
                worst_vs_bound = max(worst_vs_bound, ratio_bound)
                worst_vs_best = max(worst_vs_best, ratio_best)
                worst_per_q[q] = max(worst_per_q.get(q, 0.0), ratio_bound)
                rows.append(
                    {
                        "workload": workload.name,
                        "threads": workload.num_threads,
                        "hbm_slots": k,
                        "channels": q,
                        "priority_makespan": prio,
                        "lower_bound": bound.value,
                        "ratio_to_bound": round(ratio_bound, 3),
                        "best_policy": min(makespans, key=makespans.get),
                        "ratio_to_best": round(ratio_best, 3),
                    }
                )
    checks = {
        # Theorem 1/3's falsifiable form: Priority is never far from the
        # best schedule any implemented policy finds, on any instance.
        "priority_near_best_policy": worst_vs_best < 1.5,
        # Theorem 3: the certified-bound ratio does not *grow* with q
        # (adding channels never makes Priority less competitive).
        "ratio_does_not_grow_with_q": all(
            worst_per_q[q] <= worst_per_q[min(worst_per_q)] * 1.25
            for q in worst_per_q
        ),
    }
    return Reduction(
        rows=rows,
        checks=checks,
        data={
            "worst_ratio": worst_vs_bound,
            "worst_vs_best": worst_vs_best,
            "worst_per_q": worst_per_q,
        },
        text=format_table(
            rows, title="Priority vs certified bound and best-of-portfolio"
        ),
    )


THM1_3 = Campaign.sweep(
    "thm1_3",
    "Theorems 1 & 3: Priority competitiveness vs lower bounds",
    _thm1_3_jobs,
    _thm1_3_reduce,
)


def theorem1_3(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Priority's empirical competitive ratio across workloads, k, and q.

    Two yardsticks, because OPT is intractable:

    * the **certified lower bound** (serial / channel / per-stream
      Belady capacity) — sound but loose exactly where parallel paging
      is hard (many working sets that cannot fit concurrently), so its
      ratio is reported, not asserted against a constant;
    * a **best-of-portfolio** proxy — the minimum makespan over every
      implemented arbitration policy on the same instance. Priority
      staying within a small factor of the best-known schedule across
      the whole grid is the falsifiable form of Theorem 1/3 here (FIFO
      fails it by a factor that grows with p, see thm2/fig3).
    """
    return THM1_3.run(scale, processes, cache_dir, seed)


def _thm2_settings(scale: str):
    if scale == "smoke":
        return (4, 8, 16, 32), 32, 16
    return (4, 8, 16, 32, 64, 128), 64, 50


def _thm2_jobs(ctx: CampaignContext) -> list[SweepJob]:
    threads, pages, repeats = _thm2_settings(ctx.scale)
    return fcfs_gap_jobs(
        threads, pages_per_thread=pages, repeats=repeats, seed=ctx.seed
    )


def _thm2_reduce(ctx: CampaignContext, records) -> Reduction:
    points = fcfs_gap_points(records, build_workload=ctx.build_workload)
    slope, intercept, r2 = fit_linear(
        [pt.threads for pt in points], [pt.gap for pt in points]
    )
    rows = [
        {
            "threads": pt.threads,
            "gap": round(pt.gap, 3),
            "fifo_ratio_to_bound": round(pt.fifo_ratio_to_bound, 2),
            "priority_ratio_to_bound": round(pt.priority_ratio_to_bound, 2),
        }
        for pt in points
    ]
    checks = {
        "gap_linear_in_p": slope > 0 and r2 > 0.9,
        "fifo_ratio_grows_with_p": points[-1].fifo_ratio_to_bound
        > 2.5 * points[0].fifo_ratio_to_bound,
        "priority_ratio_stays_bounded": max(
            pt.priority_ratio_to_bound for pt in points
        )
        < 8.0,
    }
    text = (
        format_table(rows, title="Theorem 2: FCFS adversary family")
        + f"\nfit: gap = {slope:.3f} p + {intercept:.3f} (r^2={r2:.3f})"
    )
    return Reduction(
        rows=rows,
        checks=checks,
        data={"fit": (slope, intercept, r2), "points": points},
        text=text,
    )


THM2 = Campaign.sweep(
    "thm2",
    "Theorem 2: FCFS lower-bound family",
    _thm2_jobs,
    _thm2_reduce,
)


def theorem2(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """The FCFS Omega(p) gap grows linearly in p."""
    return THM2.run(scale, processes, cache_dir, seed)


def _lemma1_compute(ctx: CampaignContext) -> Reduction:
    capacities = (32, 64, 128) if ctx.scale == "smoke" else (32, 64, 128, 256, 512)
    trace_len = 4000 if ctx.scale == "smoke" else 20000
    rng = np.random.default_rng(ctx.seed)
    rows = []
    for replacement in ("lru", "fifo"):
        for k in capacities:
            trace = rng.integers(0, 4 * k, size=trace_len)
            report = transform_overhead(
                trace, k, replacement=replacement, seed=ctx.seed
            )
            rows.append(
                {
                    "replacement": replacement,
                    "capacity": k,
                    "orig_misses": report.original_misses,
                    "miss_overhead": round(report.miss_overhead, 3),
                    "access_overhead": round(report.access_overhead, 3),
                    "max_chain": report.max_chain_length,
                }
            )
    miss_ov = [r["miss_overhead"] for r in rows]
    acc_ov = [r["access_overhead"] for r in rows]
    checks = {
        # each original miss causes O(1) direct-mapped misses
        "miss_overhead_constant": max(miss_ov) < 4.0,
        # each reference causes O(1) direct-mapped accesses
        "access_overhead_constant": max(acc_ov) < 30.0,
        # the overheads do not grow with capacity (compare smallest and
        # largest k per replacement, generous 50% envelope)
        "overhead_flat_in_k": all(
            rows[i + len(capacities) - 1]["access_overhead"]
            < 1.5 * rows[i]["access_overhead"]
            for i in (0, len(capacities))
        ),
        # 2-universal hashing keeps expected chains short
        "chains_short": max(r["max_chain"] for r in rows) <= 12,
    }
    return Reduction(
        rows=rows,
        checks=checks,
        text=format_table(rows, title="Lemma 1 transformation overhead"),
    )


LEMMA1 = Campaign.local(
    "lemma1",
    "Lemma 1: fully-associative -> direct-mapped transformation",
    _lemma1_compute,
)


def lemma1(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Direct-mapped simulation overhead is O(1), independent of k."""
    return LEMMA1.run(scale, processes, cache_dir, seed)


def _thm4_compute(ctx: CampaignContext) -> Reduction:
    xs = (
        (1, 2, 4, 16, 64, 256)
        if ctx.scale == "smoke"
        else (1, 2, 4, 16, 64, 256, 1024, 4096)
    )
    rows = []
    for x in xs:
        _, steps = concurrent_front_insert(list(range(5)), list(range(x)))
        rows.append(
            {
                "items": x,
                "steps": steps,
                "log2_bound": math.ceil(math.log2(x)) + 3 if x > 1 else 4,
            }
        )
    checks = {
        "steps_within_log_bound": all(r["steps"] <= r["log2_bound"] for r in rows),
        "steps_grow_sublinearly": rows[-1]["steps"] < xs[-1] / 4,
    }
    return Reduction(
        rows=rows,
        checks=checks,
        text=format_table(rows, title="Theorem 4 PRAM step counts"),
    )


THM4 = Campaign.local(
    "thm4",
    "Theorem 4: concurrent list-front insertion",
    _thm4_compute,
)


def theorem4(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Concurrent front-insert takes O(log x) parallel steps."""
    return THM4.run(scale, processes, cache_dir, seed)


def _response_bound_jobs(ctx: CampaignContext) -> list[SweepJob]:
    p = 8 if ctx.scale == "smoke" else 32
    repeats = 10 if ctx.scale == "smoke" else 40
    spec = WorkloadSpec.make(
        "adversarial_cycle", threads=p, seed=0, pages=32, repeats=repeats
    )
    k = p * 8
    return [
        SweepJob(
            spec,
            SimulationConfig(
                hbm_slots=k,
                arbitration="cycle_priority",
                remap_period=mult * k,
                seed=ctx.seed,
            ),
            tag="response_bound",
        )
        for mult in (1, 5, 10)
    ]


def _response_bound_reduce(ctx: CampaignContext, records) -> Reduction:
    rows = []
    ok = True
    for record in records:
        p = record.job.workload.threads
        T = record.job.config.remap_period
        bound = cycle_response_time_bound(p, T)
        # records expose max_response just like SimulationResult, so the
        # theory-side checker applies unchanged
        holds = check_cycle_response_bound(record, p, T)
        ok = ok and holds
        rows.append(
            {
                "T": T,
                "max_response": record.max_response,
                "bound_pT_plus_2": bound,
                "holds": holds,
            }
        )
    return Reduction(
        rows=rows,
        checks={"response_bound_holds": ok},
        text=format_table(rows, title="Cycle Priority response bound"),
    )


RESPONSE_BOUND = Campaign.sweep(
    "response_bound",
    "Section 4: Cycle Priority response-time bound p*T",
    _response_bound_jobs,
    _response_bound_reduce,
)


def response_bound(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Section 4's p*T response-time bound for Cycle Priority."""
    return RESPONSE_BOUND.run(scale, processes, cache_dir, seed)
