"""Theory validation experiments (Theorems 1-4, Lemma 1, Corollary 1).

Not tables in the paper, but load-bearing claims its experiments rest
on; each gets an empirical check:

* **Theorem 1 / 3** — Priority's makespan stays within a small constant
  (times q) of the certified lower bound across workload families,
  HBM sizes, and channel counts.
* **Theorem 2** — the FCFS adversary family's FIFO/Priority gap grows
  linearly in p (also Figure 3's mechanism).
* **Lemma 1 / Theorem 4 / Corollary 1** — the fully-associative ->
  direct-mapped transformation costs O(1) expected accesses per
  reference and O(1) misses per original miss, independent of cache
  size; the concurrent front-insert primitive takes O(log x) steps.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis import format_table
from ..core.directmapped import concurrent_front_insert, transform_overhead
from ..theory import (
    check_cycle_response_bound,
    check_priority_competitiveness,
    cycle_response_time_bound,
    fcfs_gap_experiment,
    fit_linear,
)
from ..core import SimulationConfig, simulate
from ..traces import make_workload
from .base import ExperimentOutput, require_scale

__all__ = ["theorem1_3", "theorem2", "lemma1", "theorem4", "response_bound"]


def theorem1_3(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Priority's empirical competitive ratio across workloads, k, and q.

    Two yardsticks, because OPT is intractable:

    * the **certified lower bound** (serial / channel / per-stream
      Belady capacity) — sound but loose exactly where parallel paging
      is hard (many working sets that cannot fit concurrently), so its
      ratio is reported, not asserted against a constant;
    * a **best-of-portfolio** proxy — the minimum makespan over every
      implemented arbitration policy on the same instance. Priority
      staying within a small factor of the best-known schedule across
      the whole grid is the falsifiable form of Theorem 1/3 here (FIFO
      fails it by a factor that grows with p, see thm2/fig3).
    """
    require_scale(scale)
    if scale == "smoke":
        workloads = [
            make_workload("random", threads=8, seed=seed, length=1500, pages=48),
            make_workload("adversarial_cycle", threads=8, pages=32, repeats=10),
            make_workload("zipf", threads=8, seed=seed, length=1500, pages=48),
        ]
        hbm_slots = [32, 128]
        channels = [1, 2, 4]
    else:
        workloads = [
            make_workload("random", threads=32, seed=seed, length=5000, pages=96),
            make_workload("adversarial_cycle", threads=32, pages=64, repeats=30),
            make_workload("zipf", threads=32, seed=seed, length=5000, pages=96),
            make_workload("stream", threads=32, length=5000, pages=96),
        ]
        hbm_slots = [64, 256, 1024]
        channels = [1, 2, 4, 8, 10]

    from ..theory import competitive_ratio, makespan_lower_bound

    portfolio = ("fifo", "priority", "dynamic_priority", "cycle_priority", "random")
    rows = []
    worst_vs_bound = 0.0
    worst_vs_best = 0.0
    worst_per_q: dict[int, float] = {}
    for workload in workloads:
        for k in hbm_slots:
            for q in channels:
                bound = makespan_lower_bound(workload.traces, k, q)
                makespans = {}
                for arb in portfolio:
                    cfg = SimulationConfig(
                        hbm_slots=k,
                        channels=q,
                        arbitration=arb,
                        remap_period=(
                            10 * k
                            if arb in ("dynamic_priority", "cycle_priority")
                            else None
                        ),
                        seed=seed,
                    )
                    makespans[arb] = simulate(workload, cfg).makespan
                best = min(makespans.values())
                prio = makespans["priority"]
                ratio_bound = competitive_ratio(prio, bound)
                ratio_best = prio / best
                worst_vs_bound = max(worst_vs_bound, ratio_bound)
                worst_vs_best = max(worst_vs_best, ratio_best)
                worst_per_q[q] = max(worst_per_q.get(q, 0.0), ratio_bound)
                rows.append(
                    {
                        "workload": workload.name,
                        "threads": workload.num_threads,
                        "hbm_slots": k,
                        "channels": q,
                        "priority_makespan": prio,
                        "lower_bound": bound.value,
                        "ratio_to_bound": round(ratio_bound, 3),
                        "best_policy": min(makespans, key=makespans.get),
                        "ratio_to_best": round(ratio_best, 3),
                    }
                )
    checks = {
        # Theorem 1/3's falsifiable form: Priority is never far from the
        # best schedule any implemented policy finds, on any instance.
        "priority_near_best_policy": worst_vs_best < 1.5,
        # Theorem 3: the certified-bound ratio does not *grow* with q
        # (adding channels never makes Priority less competitive).
        "ratio_does_not_grow_with_q": all(
            worst_per_q[q] <= worst_per_q[min(worst_per_q)] * 1.25
            for q in worst_per_q
        ),
    }
    return ExperimentOutput(
        experiment_id="thm1_3",
        title="Theorems 1 & 3: Priority competitiveness vs lower bounds",
        scale=scale,
        rows=rows,
        text=format_table(
            rows, title="Priority vs certified bound and best-of-portfolio"
        ),
        checks=checks,
        data={
            "worst_ratio": worst_vs_bound,
            "worst_vs_best": worst_vs_best,
            "worst_per_q": worst_per_q,
        },
    )


def theorem2(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """The FCFS Omega(p) gap grows linearly in p."""
    require_scale(scale)
    if scale == "smoke":
        threads, pages, repeats = (4, 8, 16, 32), 32, 16
    else:
        threads, pages, repeats = (4, 8, 16, 32, 64, 128), 64, 50
    points = fcfs_gap_experiment(
        threads, pages_per_thread=pages, repeats=repeats, seed=seed
    )
    slope, intercept, r2 = fit_linear(
        [pt.threads for pt in points], [pt.gap for pt in points]
    )
    rows = [
        {
            "threads": pt.threads,
            "gap": round(pt.gap, 3),
            "fifo_ratio_to_bound": round(pt.fifo_ratio_to_bound, 2),
            "priority_ratio_to_bound": round(pt.priority_ratio_to_bound, 2),
        }
        for pt in points
    ]
    checks = {
        "gap_linear_in_p": slope > 0 and r2 > 0.9,
        "fifo_ratio_grows_with_p": points[-1].fifo_ratio_to_bound
        > 2.5 * points[0].fifo_ratio_to_bound,
        "priority_ratio_stays_bounded": max(
            pt.priority_ratio_to_bound for pt in points
        )
        < 8.0,
    }
    text = (
        format_table(rows, title="Theorem 2: FCFS adversary family")
        + f"\nfit: gap = {slope:.3f} p + {intercept:.3f} (r^2={r2:.3f})"
    )
    return ExperimentOutput(
        experiment_id="thm2",
        title="Theorem 2: FCFS lower-bound family",
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"fit": (slope, intercept, r2), "points": points},
    )


def lemma1(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Direct-mapped simulation overhead is O(1), independent of k."""
    require_scale(scale)
    capacities = (32, 64, 128) if scale == "smoke" else (32, 64, 128, 256, 512)
    trace_len = 4000 if scale == "smoke" else 20000
    rng = np.random.default_rng(seed)
    rows = []
    for replacement in ("lru", "fifo"):
        for k in capacities:
            trace = rng.integers(0, 4 * k, size=trace_len)
            report = transform_overhead(trace, k, replacement=replacement, seed=seed)
            rows.append(
                {
                    "replacement": replacement,
                    "capacity": k,
                    "orig_misses": report.original_misses,
                    "miss_overhead": round(report.miss_overhead, 3),
                    "access_overhead": round(report.access_overhead, 3),
                    "max_chain": report.max_chain_length,
                }
            )
    miss_ov = [r["miss_overhead"] for r in rows]
    acc_ov = [r["access_overhead"] for r in rows]
    checks = {
        # each original miss causes O(1) direct-mapped misses
        "miss_overhead_constant": max(miss_ov) < 4.0,
        # each reference causes O(1) direct-mapped accesses
        "access_overhead_constant": max(acc_ov) < 30.0,
        # the overheads do not grow with capacity (compare smallest and
        # largest k per replacement, generous 50% envelope)
        "overhead_flat_in_k": all(
            rows[i + len(capacities) - 1]["access_overhead"]
            < 1.5 * rows[i]["access_overhead"]
            for i in (0, len(capacities))
        ),
        # 2-universal hashing keeps expected chains short
        "chains_short": max(r["max_chain"] for r in rows) <= 12,
    }
    return ExperimentOutput(
        experiment_id="lemma1",
        title="Lemma 1: fully-associative -> direct-mapped transformation",
        scale=scale,
        rows=rows,
        text=format_table(rows, title="Lemma 1 transformation overhead"),
        checks=checks,
        data={},
    )


def theorem4(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Concurrent front-insert takes O(log x) parallel steps."""
    require_scale(scale)
    xs = (1, 2, 4, 16, 64, 256) if scale == "smoke" else (1, 2, 4, 16, 64, 256, 1024, 4096)
    rows = []
    for x in xs:
        _, steps = concurrent_front_insert(list(range(5)), list(range(x)))
        rows.append(
            {
                "items": x,
                "steps": steps,
                "log2_bound": math.ceil(math.log2(x)) + 3 if x > 1 else 4,
            }
        )
    checks = {
        "steps_within_log_bound": all(r["steps"] <= r["log2_bound"] for r in rows),
        "steps_grow_sublinearly": rows[-1]["steps"] < xs[-1] / 4,
    }
    return ExperimentOutput(
        experiment_id="thm4",
        title="Theorem 4: concurrent list-front insertion",
        scale=scale,
        rows=rows,
        text=format_table(rows, title="Theorem 4 PRAM step counts"),
        checks=checks,
        data={},
    )


def response_bound(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Section 4's p*T response-time bound for Cycle Priority."""
    require_scale(scale)
    p = 8 if scale == "smoke" else 32
    repeats = 10 if scale == "smoke" else 40
    workload = make_workload("adversarial_cycle", threads=p, pages=32, repeats=repeats)
    k = p * 8
    rows = []
    ok = True
    for mult in (1, 5, 10):
        T = mult * k
        cfg = SimulationConfig(
            hbm_slots=k, arbitration="cycle_priority", remap_period=T, seed=seed
        )
        result = simulate(workload, cfg)
        bound = cycle_response_time_bound(p, T)
        holds = check_cycle_response_bound(result, p, T)
        ok = ok and holds
        rows.append(
            {
                "T": T,
                "max_response": result.max_response,
                "bound_pT_plus_2": bound,
                "holds": holds,
            }
        )
    return ExperimentOutput(
        experiment_id="response_bound",
        title="Section 4: Cycle Priority response-time bound p*T",
        scale=scale,
        rows=rows,
        text=format_table(rows, title="Cycle Priority response bound"),
        checks={"response_bound_holds": ok},
        data={},
    )
