"""Figure 5 and Table 1: the inconsistency-makespan-response tradeoff.

Paper protocol: at one contended configuration per dataset, run FIFO,
static Priority, and Dynamic/Cycle Priority for permutation intervals
``T in {k, 5k, 10k, 100k}``. Figure 5 scatters inconsistency (the
standard deviation of response time) against makespan; Table 1 lists
inconsistency and mean response time.

Paper findings reproduced as checks:

* FIFO has the worst makespan and the lowest inconsistency but the
  highest mean response time;
* Priority has the best mean response time and the highest
  inconsistency;
* the cycling schemes' inconsistency grows with T (toward Priority's)
  while mean response time falls; a broad mid range of T keeps
  Priority-like makespan at far lower inconsistency.

The response-time side is where fat records earn their keep: every job
requests ``PayloadRequest(response_histogram=True)``, so each record
carries the full response-time distribution (plus per-thread summary
stats) and the panels report tail percentiles straight from the cached
payload — no re-simulation, no separate instrumented run.
"""

from __future__ import annotations

from typing import Any

from ..analysis import (
    PayloadRequest,
    SweepJob,
    SweepRecord,
    WorkloadSpec,
    format_table,
    scatter_plot,
)
from ..core import SimulationConfig
from .base import Campaign, CampaignContext, ExperimentOutput, Reduction
from .figure2 import combine_panels

__all__ = ["figure5", "figure5a", "figure5b", "table1", "FIG5_SETTINGS"]

#: permutation-interval multipliers of the paper (T = mult * k)
T_MULTIPLIERS = (1, 5, 10, 100)

#: every tradeoff record carries its response-time distribution
_PAYLOAD = PayloadRequest(response_histogram=True)

FIG5_SETTINGS: dict[str, dict[str, dict[str, Any]]] = {
    "spgemm": {
        "smoke": dict(
            workload=dict(n=60, density=0.1, page_bytes=512, coalesce=True),
            threads=16,
            hbm_slots=60,
        ),
        "paper": dict(
            workload=dict(n=80, density=0.1, page_bytes=512, coalesce=True),
            threads=32,
            hbm_slots=100,
        ),
    },
    "sort": {
        # contended points where Priority beats FIFO on makespan, the
        # regime of the paper's Figure 5 panels
        "smoke": dict(
            workload=dict(n=1000, page_bytes=256, coalesce=True),
            threads=48,
            hbm_slots=48,
        ),
        "paper": dict(
            workload=dict(n=1500, page_bytes=256, coalesce=True),
            threads=64,
            hbm_slots=96,
        ),
    },
}


def _policy_label(record: SweepRecord, k: int) -> str:
    cfg = record.job.config
    if cfg.arbitration in ("fifo", "priority"):
        return cfg.arbitration
    mult = cfg.remap_period // k
    name = "dynamic" if cfg.arbitration == "dynamic_priority" else "cycle"
    return f"{name} T={mult}k"


def _tradeoff_jobs(dataset: str, ctx: CampaignContext) -> list[SweepJob]:
    settings = FIG5_SETTINGS[dataset][ctx.scale]
    k = settings["hbm_slots"]
    kind = "sort" if dataset == "sort" else "spgemm"
    spec = WorkloadSpec.make(
        kind, threads=settings["threads"], seed=ctx.seed, **settings["workload"]
    )
    jobs = [
        SweepJob(
            spec,
            SimulationConfig(hbm_slots=k, arbitration="fifo", seed=ctx.seed),
            payload=_PAYLOAD,
        ),
        SweepJob(
            spec,
            SimulationConfig(hbm_slots=k, arbitration="priority", seed=ctx.seed),
            payload=_PAYLOAD,
        ),
    ]
    for mult in T_MULTIPLIERS:
        for arb in ("dynamic_priority", "cycle_priority"):
            jobs.append(
                SweepJob(
                    spec,
                    SimulationConfig(
                        hbm_slots=k,
                        arbitration=arb,
                        remap_period=mult * k,
                        seed=ctx.seed,
                    ),
                    payload=_PAYLOAD,
                )
            )
    return jobs


def _tradeoff_checks(records: list[SweepRecord], k: int) -> dict[str, bool]:
    """The paper's qualitative Table 1 / Figure 5 claims.

    Comparisons against Priority use tolerances: the paper's own data
    has the longest cycling intervals (T = 100k) essentially merging
    with Priority, so exact extremal comparisons would test noise.
    """
    by_label = {_policy_label(r, k): r for r in records}
    fifo = by_label["fifo"]
    priority = by_label["priority"]
    dynamic = {m: by_label[f"dynamic T={m}k"] for m in T_MULTIPLIERS}
    return {
        # Table 1: "FIFO has lowest inconsistency and highest average
        # response time."
        "fifo_lowest_inconsistency": fifo.inconsistency
        == min(r.inconsistency for r in records),
        "fifo_highest_mean_response": fifo.mean_response
        == max(r.mean_response for r in records),
        # "Priority has highest inconsistency and lowest average
        # response time" (up to T=100k ties).
        "priority_highest_inconsistency": priority.inconsistency
        >= 0.9 * max(r.inconsistency for r in records),
        "priority_lowest_mean_response": priority.mean_response
        <= 1.05 * min(r.mean_response for r in records),
        # Figure 5: FIFO has the worst makespan at this contended point.
        "fifo_worst_makespan": fifo.makespan == max(r.makespan for r in records),
        # "Most of the inconsistency can be removed with minimal loss
        # in performance": short-to-mid dynamic intervals cut Priority's
        # inconsistency substantially...
        "dynamic_cuts_priority_inconsistency": min(
            dynamic[m].inconsistency for m in (1, 5, 10)
        )
        < 0.7 * priority.inconsistency,
        # ...while a broad T range keeps near-Priority makespan.
        "mid_T_keeps_makespan": any(
            dynamic[m].makespan <= 1.1 * priority.makespan for m in (5, 10, 100)
        ),
        # mean response falls from the T=k end toward Priority's as T
        # grows (Table 1's trend; small-noise tolerance)
        "dynamic_mean_response_trends_down": dynamic[100].mean_response
        <= dynamic[1].mean_response * 1.02,
        # inconsistency grows with T toward Priority's (endpoints)
        "dynamic_inconsistency_grows_with_T": dynamic[100].inconsistency
        > dynamic[1].inconsistency,
    }


def _tail_rows(records: list[SweepRecord], k: int) -> list[dict[str, Any]]:
    """Response-time tail percentiles from the carried histograms."""
    rows = []
    for r in records:
        if r.payload is None or r.payload.response_histogram is None:
            continue
        rows.append(
            {
                "policy": _policy_label(r, k),
                "p50_response": r.payload.response_percentile(0.50),
                "p95_response": r.payload.response_percentile(0.95),
                "p99_response": r.payload.response_percentile(0.99),
                "max_response": r.max_response,
            }
        )
    return rows


def _panel_campaign(experiment_id: str, title: str, dataset: str) -> Campaign:
    def build(ctx: CampaignContext) -> list[SweepJob]:
        return _tradeoff_jobs(dataset, ctx)

    def reduce(ctx: CampaignContext, records) -> Reduction:
        settings = FIG5_SETTINGS[dataset][ctx.scale]
        k = settings["hbm_slots"]
        rows = [
            {
                "policy": _policy_label(r, k),
                "makespan": r.makespan,
                "inconsistency": round(r.inconsistency, 3),
                "mean_response": round(r.mean_response, 3),
                "max_response": r.max_response,
                "hit_rate": round(r.hit_rate, 4),
            }
            for r in records
        ]
        plot = scatter_plot(
            {
                "fifo": [(r.makespan, r.inconsistency) for r in records
                         if _policy_label(r, k) == "fifo"],
                "priority": [(r.makespan, r.inconsistency) for r in records
                             if _policy_label(r, k) == "priority"],
                "dynamic": [(r.makespan, r.inconsistency) for r in records
                            if _policy_label(r, k).startswith("dynamic")],
                "cycle": [(r.makespan, r.inconsistency) for r in records
                          if _policy_label(r, k).startswith("cycle")],
            },
            title=f"{title} (threads={settings['threads']}, k={k})",
            xlabel="makespan",
            ylabel="inconsistency",
        )
        tails = _tail_rows(records, k)
        text = format_table(rows, title=title) + "\n\n" + plot
        if tails:
            text += "\n\n" + format_table(
                tails, title=f"{title} — response-time tails (payload histograms)"
            )
        return Reduction(
            rows=rows,
            checks=_tradeoff_checks(records, k),
            data={"records": records, "hbm_slots": k, "response_tails": tails},
            text=text,
        )

    return Campaign.sweep(experiment_id, title, build, reduce)


FIG5A = _panel_campaign(
    "fig5a", "Figure 5a / Table 1a: inconsistency vs makespan, SpGEMM", "spgemm"
)
FIG5B = _panel_campaign(
    "fig5b", "Figure 5b / Table 1b: inconsistency vs makespan, GNU sort", "sort"
)


def figure5a(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Figure 5a / Table 1a: tradeoff on SpGEMM."""
    return FIG5A.run(scale, processes, cache_dir, seed)


def figure5b(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Figure 5b / Table 1b: tradeoff on GNU sort."""
    return FIG5B.run(scale, processes, cache_dir, seed)


def figure5(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Both panels of Figure 5."""
    return combine_panels(
        "fig5",
        "Figure 5: inconsistency-makespan tradeoff",
        scale,
        {
            "5a": figure5a(scale, processes, cache_dir, seed),
            "5b": figure5b(scale, processes, cache_dir, seed),
        },
    )


def table1(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """Table 1: inconsistency and mean response time per policy.

    Same sweep as Figure 5; rendered in the paper's table layout
    (policy, inconsistency, response time) for both datasets.
    """
    from .base import merge_campaign_stats

    outputs = {
        "a (SpGEMM)": figure5a(scale, processes, cache_dir, seed),
        "b (GNU sort)": figure5b(scale, processes, cache_dir, seed),
    }
    rows = []
    texts = []
    checks: dict[str, bool] = {}
    for panel, out in outputs.items():
        table_rows = [
            {
                "panel": panel,
                "queuing_policy": r["policy"],
                "inconsistency": r["inconsistency"],
                "response_time": r["mean_response"],
            }
            for r in out.rows
        ]
        rows.extend(table_rows)
        texts.append(format_table(table_rows, title=f"Table 1{panel}"))
        checks.update({f"{panel[0]}_{k}": v for k, v in out.checks.items()})
    return ExperimentOutput(
        experiment_id="tab1",
        title="Table 1: inconsistency and average response time",
        scale=scale,
        rows=rows,
        text="\n\n".join(texts),
        checks=checks,
        data={
            **{k: v.data for k, v in outputs.items()},
            "campaign": merge_campaign_stats(
                [out.campaign for out in outputs.values()]
            ),
        },
    )
