"""Figure 2: FIFO vs (static) Priority makespan across thread counts.

Paper protocol: simulate both arbitration policies on SpGEMM (2a) and
GNU-sort (2b) workloads over a range of thread counts and HBM sizes;
plot the ratio FIFO-makespan / Priority-makespan. Values above 1.0
favour Priority. The paper finds FIFO ahead at low thread counts (up to
1.33x on SpGEMM, 1.37x on sort) and Priority ahead at high thread
counts (up to 3.3x on SpGEMM, 1.2x on sort).

Scaling note (EXPERIMENTS.md): the paper's instances (SpGEMM 600x600 at
10% density; sort of 500,000 ints) with a C++ simulator are scaled down
here (pure-Python tick simulation) with the same structure; the
thread-count axis therefore crosses over at different absolute p, but
the same three regimes appear in order: parity while the far channel is
idle, FIFO ahead under moderate contention, Priority dominant once FIFO
thrashes.
"""

from __future__ import annotations

from typing import Any

from ..analysis import (
    SweepJob,
    WorkloadSpec,
    format_table,
    line_plot,
    ratio_series,
    run_sweep,
)
from ..core import SimulationConfig
from .base import ExperimentOutput, require_scale

__all__ = ["figure2", "figure2a", "figure2b", "FIG2_SETTINGS"]

#: workload generator settings per dataset and scale
FIG2_SETTINGS: dict[str, dict[str, dict[str, Any]]] = {
    "spgemm": {
        "smoke": dict(
            workload=dict(n=60, density=0.1, page_bytes=512, coalesce=True),
            threads=(2, 8, 32),
            hbm_slots=(48,),
        ),
        "paper": dict(
            workload=dict(n=80, density=0.1, page_bytes=512, coalesce=True),
            threads=(2, 4, 8, 16, 32, 64),
            hbm_slots=(40, 100, 300),
        ),
    },
    "sort": {
        "smoke": dict(
            workload=dict(n=1000, page_bytes=256, coalesce=True),
            threads=(2, 16, 64),
            hbm_slots=(48,),
        ),
        "paper": dict(
            workload=dict(n=1500, page_bytes=256, coalesce=True),
            threads=(2, 4, 8, 16, 32, 64),
            hbm_slots=(48, 64, 96),
        ),
    },
}


def _build_jobs(
    dataset: str,
    settings: dict[str, Any],
    seed: int,
    arbitrations: tuple[str, ...],
    remap_multiplier: int | None = None,
) -> list[SweepJob]:
    kind = "sort" if dataset == "sort" else "spgemm"
    jobs = []
    for p in settings["threads"]:
        spec = WorkloadSpec.make(kind, threads=p, seed=seed, **settings["workload"])
        for k in settings["hbm_slots"]:
            for arb in arbitrations:
                remap = (
                    remap_multiplier * k
                    if remap_multiplier is not None
                    and arb
                    in (
                        "dynamic_priority",
                        "cycle_priority",
                        "cycle_reverse_priority",
                        "interleave_priority",
                    )
                    else None
                )
                jobs.append(
                    SweepJob(
                        spec,
                        SimulationConfig(
                            hbm_slots=k,
                            arbitration=arb,
                            remap_period=remap,
                            seed=seed,
                        ),
                        tag=dataset,
                    )
                )
    return jobs


def _ratio_experiment(
    experiment_id: str,
    title: str,
    dataset: str,
    numerator: str,
    denominator: str,
    scale: str,
    processes: int | None,
    cache_dir,
    seed: int,
    remap_multiplier: int | None = None,
) -> ExperimentOutput:
    settings = FIG2_SETTINGS[dataset][require_scale(scale)]
    jobs = _build_jobs(
        dataset, settings, seed, (numerator, denominator), remap_multiplier
    )
    records = run_sweep(jobs, processes=processes, cache_dir=cache_dir)

    by_k: dict[int, list[tuple[int, float]]] = {}
    for k in settings["hbm_slots"]:
        subset = [r for r in records if r.job.config.hbm_slots == k]
        by_k[k] = ratio_series(subset, numerator, denominator)

    rows = []
    makespans = {
        (r.job.workload.threads, r.job.config.hbm_slots, r.job.config.arbitration): r
        for r in records
    }
    for k, series in by_k.items():
        for p, ratio in series:
            num = makespans[(p, k, numerator)]
            den = makespans[(p, k, denominator)]
            rows.append(
                {
                    "threads": p,
                    "hbm_slots": k,
                    f"{numerator}_makespan": num.makespan,
                    f"{denominator}_makespan": den.makespan,
                    "ratio": round(ratio, 4),
                    f"{numerator}_hit_rate": round(num.hit_rate, 4),
                    f"{denominator}_hit_rate": round(den.hit_rate, 4),
                }
            )

    all_ratios = [ratio for series in by_k.values() for _, ratio in series]
    high_p_ratios = [series[-1][1] for series in by_k.values() if series]
    checks = {
        # Priority dominates at the highest thread count (the paper's
        # headline: up to 3.3x on SpGEMM).
        "priority_wins_at_high_threads": max(high_p_ratios, default=0) > 1.05,
        # Somewhere in the sweep the numerator (FIFO) is at least as
        # good - the paper's low-thread-count anomaly.
        "fifo_competitive_somewhere": min(all_ratios, default=9) <= 1.02,
        # The ratio grows from the low-p to the high-p end.
        "ratio_increases_with_threads": all(
            series[-1][1] >= series[0][1] for series in by_k.values() if series
        ),
    }

    plot = line_plot(
        {f"k={k}": series for k, series in by_k.items()},
        title=f"{title} — makespan ratio {numerator}/{denominator}",
        xlabel="threads",
        ylabel="ratio",
    )
    text = format_table(rows, title=title) + "\n\n" + plot
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"ratio_series": by_k},
    )


def figure2a(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 2a: FIFO vs Priority on SpGEMM."""
    return _ratio_experiment(
        "fig2a",
        "Figure 2a: FIFO/Priority makespan ratio, SpGEMM",
        "spgemm",
        "fifo",
        "priority",
        scale,
        processes,
        cache_dir,
        seed,
    )


def figure2b(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 2b: FIFO vs Priority on GNU sort."""
    return _ratio_experiment(
        "fig2b",
        "Figure 2b: FIFO/Priority makespan ratio, GNU sort",
        "sort",
        "fifo",
        "priority",
        scale,
        processes,
        cache_dir,
        seed,
    )


def figure2(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Both panels of Figure 2, concatenated."""
    a = figure2a(scale, processes, cache_dir, seed)
    b = figure2b(scale, processes, cache_dir, seed)
    return ExperimentOutput(
        experiment_id="fig2",
        title="Figure 2: FIFO vs Priority",
        scale=scale,
        rows=a.rows + b.rows,
        text=a.render() + "\n\n" + b.render(),
        checks={
            **{f"2a_{k}": v for k, v in a.checks.items()},
            **{f"2b_{k}": v for k, v in b.checks.items()},
        },
        data={"fig2a": a.data, "fig2b": b.data},
    )
