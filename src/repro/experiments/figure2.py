"""Figure 2: FIFO vs (static) Priority makespan across thread counts.

Paper protocol: simulate both arbitration policies on SpGEMM (2a) and
GNU-sort (2b) workloads over a range of thread counts and HBM sizes;
plot the ratio FIFO-makespan / Priority-makespan. Values above 1.0
favour Priority. The paper finds FIFO ahead at low thread counts (up to
1.33x on SpGEMM, 1.37x on sort) and Priority ahead at high thread
counts (up to 3.3x on SpGEMM, 1.2x on sort).

Scaling note (EXPERIMENTS.md): the paper's instances (SpGEMM 600x600 at
10% density; sort of 500,000 ints) with a C++ simulator are scaled down
here (pure-Python tick simulation) with the same structure; the
thread-count axis therefore crosses over at different absolute p, but
the same three regimes appear in order: parity while the far channel is
idle, FIFO ahead under moderate contention, Priority dominant once FIFO
thrashes.

Both panels (and Figure 4's, which reuses the grid with Dynamic
Priority) are :class:`~repro.experiments.base.Campaign` s built by
:func:`ratio_campaign`: one jobs builder for the policy-pair grid, one
reducer for the ratio rows, a parameterizable check set.
"""

from __future__ import annotations

from typing import Any, Callable

from ..analysis import (
    SweepJob,
    WorkloadSpec,
    format_table,
    line_plot,
    ratio_series,
)
from ..core import SimulationConfig
from .base import (
    Campaign,
    CampaignContext,
    ExperimentOutput,
    Reduction,
    merge_campaign_stats,
    require_scale,
)

__all__ = ["figure2", "figure2a", "figure2b", "FIG2_SETTINGS", "ratio_campaign"]

#: workload generator settings per dataset and scale
FIG2_SETTINGS: dict[str, dict[str, dict[str, Any]]] = {
    "spgemm": {
        "smoke": dict(
            workload=dict(n=60, density=0.1, page_bytes=512, coalesce=True),
            threads=(2, 8, 32),
            hbm_slots=(48,),
        ),
        "paper": dict(
            workload=dict(n=80, density=0.1, page_bytes=512, coalesce=True),
            threads=(2, 4, 8, 16, 32, 64),
            hbm_slots=(40, 100, 300),
        ),
    },
    "sort": {
        "smoke": dict(
            workload=dict(n=1000, page_bytes=256, coalesce=True),
            threads=(2, 16, 64),
            hbm_slots=(48,),
        ),
        "paper": dict(
            workload=dict(n=1500, page_bytes=256, coalesce=True),
            threads=(2, 4, 8, 16, 32, 64),
            hbm_slots=(48, 64, 96),
        ),
    },
}


def _build_jobs(
    dataset: str,
    settings: dict[str, Any],
    seed: int,
    arbitrations: tuple[str, ...],
    remap_multiplier: int | None = None,
) -> list[SweepJob]:
    kind = "sort" if dataset == "sort" else "spgemm"
    jobs = []
    for p in settings["threads"]:
        spec = WorkloadSpec.make(kind, threads=p, seed=seed, **settings["workload"])
        for k in settings["hbm_slots"]:
            for arb in arbitrations:
                remap = (
                    remap_multiplier * k
                    if remap_multiplier is not None
                    and arb
                    in (
                        "dynamic_priority",
                        "cycle_priority",
                        "cycle_reverse_priority",
                        "interleave_priority",
                    )
                    else None
                )
                jobs.append(
                    SweepJob(
                        spec,
                        SimulationConfig(
                            hbm_slots=k,
                            arbitration=arb,
                            remap_period=remap,
                            seed=seed,
                        ),
                        tag=dataset,
                    )
                )
    return jobs


def _default_ratio_checks(
    by_k: dict[int, list[tuple[int, float]]],
) -> dict[str, bool]:
    """Figure 2's claim set (who wins at which end of the thread axis)."""
    all_ratios = [ratio for series in by_k.values() for _, ratio in series]
    high_p_ratios = [series[-1][1] for series in by_k.values() if series]
    return {
        # Priority dominates at the highest thread count (the paper's
        # headline: up to 3.3x on SpGEMM).
        "priority_wins_at_high_threads": max(high_p_ratios, default=0) > 1.05,
        # Somewhere in the sweep the numerator (FIFO) is at least as
        # good - the paper's low-thread-count anomaly.
        "fifo_competitive_somewhere": min(all_ratios, default=9) <= 1.02,
        # The ratio grows from the low-p to the high-p end.
        "ratio_increases_with_threads": all(
            series[-1][1] >= series[0][1] for series in by_k.values() if series
        ),
    }


def ratio_campaign(
    experiment_id: str,
    title: str,
    dataset: str,
    numerator: str,
    denominator: str,
    remap_multiplier: int | None = None,
    checks_fn: Callable[[dict[int, list[tuple[int, float]]]], dict[str, bool]]
    | None = None,
) -> Campaign:
    """The makespan-ratio campaign shared by Figures 2 and 4.

    Jobs: the dataset's (threads x hbm_slots) grid under both policies.
    Reducer: per-k ratio series, one row per (p, k) point, the claim
    set from ``checks_fn`` (Figure 2's by default).
    """
    checks_fn = checks_fn or _default_ratio_checks

    def build(ctx: CampaignContext) -> list[SweepJob]:
        settings = FIG2_SETTINGS[dataset][ctx.scale]
        return _build_jobs(
            dataset, settings, ctx.seed, (numerator, denominator), remap_multiplier
        )

    def reduce(ctx: CampaignContext, records) -> Reduction:
        settings = FIG2_SETTINGS[dataset][ctx.scale]
        by_k: dict[int, list[tuple[int, float]]] = {}
        for k in settings["hbm_slots"]:
            subset = [r for r in records if r.job.config.hbm_slots == k]
            by_k[k] = ratio_series(subset, numerator, denominator)

        rows = []
        makespans = {
            (
                r.job.workload.threads,
                r.job.config.hbm_slots,
                r.job.config.arbitration,
            ): r
            for r in records
        }
        for k, series in by_k.items():
            for p, ratio in series:
                num = makespans[(p, k, numerator)]
                den = makespans[(p, k, denominator)]
                rows.append(
                    {
                        "threads": p,
                        "hbm_slots": k,
                        f"{numerator}_makespan": num.makespan,
                        f"{denominator}_makespan": den.makespan,
                        "ratio": round(ratio, 4),
                        f"{numerator}_hit_rate": round(num.hit_rate, 4),
                        f"{denominator}_hit_rate": round(den.hit_rate, 4),
                    }
                )

        plot = line_plot(
            {f"k={k}": series for k, series in by_k.items()},
            title=f"{title} — makespan ratio {numerator}/{denominator}",
            xlabel="threads",
            ylabel="ratio",
        )
        return Reduction(
            rows=rows,
            checks=checks_fn(by_k),
            data={"ratio_series": by_k},
            text=format_table(rows, title=title) + "\n\n" + plot,
        )

    return Campaign.sweep(experiment_id, title, build, reduce)


FIG2A = ratio_campaign(
    "fig2a",
    "Figure 2a: FIFO/Priority makespan ratio, SpGEMM",
    "spgemm",
    "fifo",
    "priority",
)

FIG2B = ratio_campaign(
    "fig2b",
    "Figure 2b: FIFO/Priority makespan ratio, GNU sort",
    "sort",
    "fifo",
    "priority",
)


def figure2a(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 2a: FIFO vs Priority on SpGEMM."""
    return FIG2A.run(scale, processes, cache_dir, seed)


def figure2b(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Figure 2b: FIFO vs Priority on GNU sort."""
    return FIG2B.run(scale, processes, cache_dir, seed)


def combine_panels(
    experiment_id: str,
    title: str,
    scale: str,
    panels: dict[str, ExperimentOutput],
) -> ExperimentOutput:
    """Concatenate per-panel outputs into one composite experiment.

    Check names are prefixed with the panel label; campaign telemetry
    is merged so a composite's manifest still reports total jobs and
    cache hits across every panel it ran.
    """
    require_scale(scale)
    outputs = list(panels.values())
    checks: dict[str, bool] = {}
    for label, out in panels.items():
        checks.update({f"{label}_{name}": ok for name, ok in out.checks.items()})
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        scale=scale,
        rows=[row for out in outputs for row in out.rows],
        text="\n\n".join(out.render() for out in outputs),
        checks=checks,
        data={
            **{out.experiment_id: out.data for out in outputs},
            "campaign": merge_campaign_stats([out.campaign for out in outputs]),
        },
    )


def figure2(
    scale: str = "smoke",
    processes: int | None = None,
    cache_dir=None,
    seed: int = 0,
) -> ExperimentOutput:
    """Both panels of Figure 2, concatenated."""
    return combine_panels(
        "fig2",
        "Figure 2: FIFO vs Priority",
        scale,
        {
            "2a": figure2a(scale, processes, cache_dir, seed),
            "2b": figure2b(scale, processes, cache_dir, seed),
        },
    )
