"""Policy zoo: the paper's Cycle Priority vs shipped arbiters.

ROADMAP item 4 asks how the paper's schemes stack up against arbiters
industry actually deployed. The zoo runs the paper's
fairness/makespan/inconsistency protocol over **all eleven** registered
arbitration policies — the paper's FIFO/Priority/remapping family, the
real-controller policies (FR-FCFS, round-robin, random), and the two
shipped schedulers added for this comparison:

* ``blacklist`` — the Blacklisting Memory Scheduler (Subramanian et
  al.): threads that stream consecutive grants get blacklisted and
  deprioritized, bounding streak-driven unfairness without per-thread
  ranking;
* ``dpq`` — the Dynamic Priority Queue SDRAM arbiter (Shah et al.):
  priority slots with implicit promotion on wait, giving the analytic
  worst-case response bound ``floor((p - 1) / q) + 2`` that
  :func:`repro.theory.check_latency_bound` verifies per sweep family.

Fairness is reported as the *slowdown spread*: the ratio of the worst
thread's mean response time to the best thread's, computed from the
per-thread summary statistics each fat record carries
(``PayloadRequest(response_histogram=True)``). A spread of 1.0 is
perfectly fair; static Priority's starvation shows up as a large
spread, which the blacklist scheduler is designed to compress.

Both zoo families keep ``hbm_slots >= threads + channels`` — with the
default ``protect_pending=True`` this guarantees the fetch limit is
never starved by eviction infeasibility, the regime in which the DPQ
latency bound is provable (see :func:`repro.theory.dpq_latency_bound`).
"""

from __future__ import annotations

from typing import Any

from ..analysis import (
    PayloadRequest,
    SweepJob,
    SweepRecord,
    WorkloadSpec,
    format_table,
    scatter_plot,
)
from ..core import ARBITRATION_POLICIES, SimulationConfig
from ..core.arbitration import _ARBITRATION_CLASSES
from ..theory import check_latency_bound, dpq_latency_bound
from .base import Campaign, CampaignContext, ExperimentOutput, Reduction

__all__ = ["zoo", "ZOO_SETTINGS", "slowdown_spread"]

#: every zoo record carries its response-time distribution and the
#: per-thread summaries the fairness column is computed from
_PAYLOAD = PayloadRequest(response_histogram=True)

#: permutation-interval multiplier for the remapping policies (T = 10k,
#: the paper's broad mid range that keeps Priority-like makespan)
T_MULTIPLIER = 10

ZOO_SETTINGS: dict[str, dict[str, dict[str, Any]]] = {
    # hbm_slots >= threads + channels in every cell: the DPQ-bound
    # regime (and still contended — total footprints far exceed k)
    "spgemm": {
        "smoke": dict(
            workload=dict(n=60, density=0.1, page_bytes=512, coalesce=True),
            threads=16,
            hbm_slots=60,
            channels=1,
        ),
        "paper": dict(
            workload=dict(n=80, density=0.1, page_bytes=512, coalesce=True),
            threads=32,
            hbm_slots=100,
            channels=1,
        ),
    },
    "sort": {
        "smoke": dict(
            workload=dict(n=1000, page_bytes=256, coalesce=True),
            threads=24,
            hbm_slots=64,
            channels=2,
        ),
        "paper": dict(
            workload=dict(n=1500, page_bytes=256, coalesce=True),
            threads=64,
            hbm_slots=96,
            channels=2,
        ),
    },
}


def slowdown_spread(record: SweepRecord) -> float:
    """Worst thread mean response over best thread mean response.

    Computed from the per-thread summaries carried by the record's
    payload; threads that issued no requests are excluded. Returns 1.0
    when fewer than two threads have data (nothing to be unfair about).
    """
    payload = record.payload
    if payload is None or payload.thread_stats is None:
        raise ValueError("record does not carry thread stats")
    means = [
        t["mean_response"] for t in payload.thread_stats if t["requests"] > 0
    ]
    if len(means) < 2:
        return 1.0
    return max(means) / min(means)


def _zoo_jobs(ctx: CampaignContext) -> list[SweepJob]:
    jobs: list[SweepJob] = []
    for family, scales in ZOO_SETTINGS.items():
        settings = scales[ctx.scale]
        k = settings["hbm_slots"]
        spec = WorkloadSpec.make(
            family,
            threads=settings["threads"],
            seed=ctx.seed,
            **settings["workload"],
        )
        for arb in ARBITRATION_POLICIES:
            kwargs: dict[str, Any] = dict(
                hbm_slots=k,
                channels=settings["channels"],
                arbitration=arb,
                seed=ctx.seed,
            )
            if _ARBITRATION_CLASSES[arb].requires_remap_period:
                kwargs["remap_period"] = T_MULTIPLIER * k
            jobs.append(SweepJob(spec, SimulationConfig(**kwargs), payload=_PAYLOAD))
    return jobs


def _family_of(record: SweepRecord) -> str:
    return record.job.workload.kind


def _zoo_checks(records: list[SweepRecord]) -> dict[str, bool]:
    checks: dict[str, bool] = {}
    for family, scales in ZOO_SETTINGS.items():
        fam = [r for r in records if _family_of(r) == family]
        by_policy = {r.job.config.arbitration: r for r in fam}
        checks[f"{family}_covers_all_policies"] = set(by_policy) == set(
            ARBITRATION_POLICIES
        )
        dpq = by_policy.get("dpq")
        if dpq is not None:
            p = dpq.job.workload.threads
            q = dpq.job.config.channels
            # the headline claim: measured worst response obeys the
            # analytic floor((p-1)/q)+2 bound
            checks[f"{family}_dpq_latency_bound"] = check_latency_bound(dpq, p, q)
        blacklist = by_policy.get("blacklist")
        priority = by_policy.get("priority")
        if blacklist is not None and priority is not None:
            # blacklisting exists to compress starvation-driven spread;
            # static Priority is the starvation-maximal baseline
            checks[f"{family}_blacklist_fairer_than_priority"] = (
                slowdown_spread(blacklist) <= slowdown_spread(priority)
            )
    return checks


def _zoo_reduce(ctx: CampaignContext, records: list[SweepRecord]) -> Reduction:
    rows = []
    for r in records:
        settings = ZOO_SETTINGS[_family_of(r)][ctx.scale]
        rows.append(
            {
                "family": _family_of(r),
                "policy": r.job.config.arbitration,
                "makespan": r.makespan,
                "fairness": round(slowdown_spread(r), 3),
                "inconsistency": round(r.inconsistency, 3),
                "mean_response": round(r.mean_response, 3),
                "max_response": r.max_response,
                "dpq_bound": dpq_latency_bound(
                    settings["threads"], settings["channels"]
                ),
                "hit_rate": round(r.hit_rate, 4),
            }
        )
    plot = scatter_plot(
        {
            family: [
                (r.makespan, r.inconsistency)
                for r in records
                if _family_of(r) == family
            ]
            for family in ZOO_SETTINGS
        },
        title="Policy zoo: inconsistency vs makespan",
        xlabel="makespan",
        ylabel="inconsistency",
    )
    text = (
        format_table(rows, title="Policy zoo: all registered arbiters")
        + "\n\n"
        + plot
    )
    return Reduction(
        rows=rows,
        checks=_zoo_checks(records),
        data={"records": records, "settings": ZOO_SETTINGS},
        text=text,
    )


ZOO = Campaign.sweep(
    "zoo",
    "Policy zoo: Cycle Priority vs shipped arbiters (BLISS + DPQ)",
    _zoo_jobs,
    _zoo_reduce,
)


def zoo(scale="smoke", processes=None, cache_dir=None, seed=0) -> ExperimentOutput:
    """The eleven-policy fairness/makespan/inconsistency comparison."""
    return ZOO.run(scale, processes, cache_dir, seed)
