"""Sapphire Rapids projection: replaying section 5 on the next machine.

The paper's closing motivation (sections 1 and 1.3): Intel's Sapphire
Rapids Xeon carries the HBM+DRAM hierarchy forward — up to "3.68 TB/s
of peak memory bandwidth with 128GB of HBM" [52] — and adds an HBM-only
boot mode. This experiment replays the pointer-chase and GLUPS
microbenchmarks on the projected SPR machine across all four modes
(flat DRAM, flat HBM, cache, HBM-only) plus the hybrid split, checking
that the model's four properties persist on the new part:

1. HBM2e latency stays within tens of ns of DDR5's;
2. the bandwidth advantage grows to ~12x (vs KNL's 4.8x) — the
   far-channel arbitration problem gets *more* acute, not less;
3. cache-mode misses still pay the double-access penalty;
4. the bandwidth cliff past HBM capacity persists, and HBM-only mode
   simply refuses allocations beyond 128 GiB.
"""

from __future__ import annotations

from ..analysis import format_table
from ..machine import (
    GIB,
    MIB,
    SPR_HBM_BYTES,
    SPR_PER_THREAD_MIB_S,
    SPR_THREADS,
    glups_curve,
    pointer_chase_curve,
    spr_hybrid_mode,
    spr_machines,
)
from .base import ExperimentOutput, require_scale

__all__ = ["sapphire_projection"]

_MODES = ("DRAM", "HBM", "Cache", "HBM-only")


def _label(nbytes: int) -> str:
    return f"{nbytes // GIB}GiB" if nbytes >= GIB else f"{nbytes // MIB}MiB"


def sapphire_projection(
    scale="smoke", processes=None, cache_dir=None, seed=0
) -> ExperimentOutput:
    """Section 5 microbenchmarks projected onto Sapphire Rapids."""
    require_scale(scale)
    operations = 1 << (12 if scale == "smoke" else 16)
    machines = spr_machines()
    lat_sizes = [64 * MIB, 1 * GIB, 16 * GIB, 64 * GIB, 128 * GIB, 512 * GIB]
    bw_sizes = [16 * GIB, 64 * GIB, 128 * GIB, 256 * GIB, 512 * GIB]

    latency = pointer_chase_curve(machines, lat_sizes, operations=operations, seed=seed)
    bandwidth = glups_curve(
        machines,
        bw_sizes,
        threads=SPR_THREADS,
        seed=seed,
        per_thread_mib_s=SPR_PER_THREAD_MIB_S,
    )
    hybrid = spr_hybrid_mode(0.5)

    rows = []
    for i, size in enumerate(lat_sizes):
        row: dict = {"metric": "latency_ns", "array_size": _label(size)}
        for mode in _MODES:
            r = latency[mode][i]
            row[mode] = round(r.mean_ns, 1) if r else None
        row["Hybrid50"] = round(hybrid.expected_latency_ns(size), 1)
        rows.append(row)
    for i, size in enumerate(bw_sizes):
        row = {"metric": "bandwidth_mib_s", "array_size": _label(size)}
        for mode in _MODES:
            r = bandwidth[mode][i]
            row[mode] = round(r.mib_per_s) if r else None
        row["Hybrid50"] = round(
            hybrid.streaming_bandwidth_mib_s(
                size, SPR_THREADS, per_thread_mib_s=SPR_PER_THREAD_MIB_S
            )
        )
        rows.append(row)

    def lat(mode, size):
        r = latency[mode][lat_sizes.index(size)]
        return r.mean_ns if r else None

    def bw(mode, size):
        r = bandwidth[mode][bw_sizes.index(size)]
        return r.mib_per_s if r else None

    checks = {
        # Property 1 persists on HBM2e
        "latency_gap_small": 5 < lat("HBM", 16 * GIB) - lat("DRAM", 16 * GIB) < 60,
        # Property 2 grows to ~12x (3.68 TB/s vs DDR5)
        "bandwidth_advantage_grows": 8.0
        < bw("HBM", 64 * GIB) / bw("DRAM", 64 * GIB)
        < 16.0,
        # Property 3: cache-mode penalty past HBM capacity
        "cache_penalty_persists": lat("Cache", 512 * GIB)
        > lat("DRAM", 512 * GIB) + 50,
        # Property 4: the cliff, still above DRAM
        "bandwidth_cliff_persists": bw("Cache", 256 * GIB)
        < 0.5 * bw("Cache", 128 * GIB)
        and bw("Cache", 256 * GIB) > bw("DRAM", 256 * GIB),
        # HBM-only mode hard-fails past 128 GiB
        "hbm_only_hard_limit": bw("HBM-only", 256 * GIB) is None
        and lat("HBM-only", 128 * GIB) is not None,
        # the hybrid split interpolates between flat and cache behaviour
        "hybrid_between_modes": lat("HBM", 64 * GIB)
        <= hybrid.expected_latency_ns(512 * GIB) + 1e9
        and hybrid.expected_latency_ns(64 * GIB) <= lat("Cache", 512 * GIB),
    }
    text = format_table(
        rows,
        title=(
            f"Sapphire Rapids projection ({SPR_THREADS} threads, "
            f"{SPR_HBM_BYTES // GIB}GiB HBM2e)"
        ),
    )
    return ExperimentOutput(
        experiment_id="sapphire",
        title="Sapphire Rapids projection of the section 5 microbenchmarks",
        scale=scale,
        rows=rows,
        text=text,
        checks=checks,
        data={"latency": latency, "bandwidth": bandwidth},
    )
