"""Pluggable result stores for sweep campaigns.

The package splits the historical ``repro.analysis.resultcache`` module
into a backend protocol (:class:`ResultStore`), the default
local-directory backend (:class:`DirectoryStore` — format-compatible
with the old ``ResultCache``), and a SQLite/WAL backend
(:class:`SQLiteStore`) for N concurrent campaign processes sharing one
store. ``repro.analysis.resultcache`` remains as a compatibility shim.
"""

from .base import (
    CHECKPOINT_SCHEMA,
    STORE_ENV,
    CampaignCheckpoint,
    ResultStore,
    campaign_id_for,
    default_store_uri,
    lease_is_stale,
    lease_owner,
    open_store,
    parse_store_uri,
    set_store_default,
    sweep_result_key,
)
from .dirstore import DirectoryStore
from .sqlitestore import SQLiteStore

__all__ = [
    "CHECKPOINT_SCHEMA",
    "STORE_ENV",
    "CampaignCheckpoint",
    "DirectoryStore",
    "ResultStore",
    "SQLiteStore",
    "campaign_id_for",
    "default_store_uri",
    "lease_is_stale",
    "lease_owner",
    "open_store",
    "parse_store_uri",
    "set_store_default",
    "sweep_result_key",
]
