"""Result-store protocol: the storage contract campaigns run against.

A *result store* is the durable half of a campaign. It holds

* **result entries** — one JSON payload per content-addressed key (see
  :func:`sweep_result_key`), written by the sweep harness as each job
  finishes and replayed on later runs;
* **campaign checkpoints** — the serialized job manifest plus the
  done-key frontier of a named campaign, updated atomically as records
  complete, so a killed *parent* process can resume where it stopped
  (:class:`CampaignCheckpoint`);
* **job leases** — short-lived ownership claims that let N sharded
  processes drain one frontier into one store without duplicating
  work.

Two backends implement the contract: the local-directory JSON store
(:class:`~repro.store.dirstore.DirectoryStore`, the default —
format-compatible with the historical ``ResultCache`` so existing
caches stay warm) and a SQLite/WAL database
(:class:`~repro.store.sqlitestore.SQLiteStore`) safe for concurrent
writers on one filesystem. Stores are selected by URI —
``dir:/path/to/results`` or ``sqlite:/path/to/store.db`` — via
:func:`open_store`; a bare path means the directory backend, so every
pre-URI call site keeps its meaning.

Keys are SHA-256 digests of a canonical JSON encoding of the workload
spec, the full config dict, and
:data:`repro.core.engine.ENGINE_SEMANTICS_VERSION`. The version tag is
the safety interlock: any PR that changes simulator *outputs* bumps it,
which atomically invalidates every stored record. Job ``tag`` s are
deliberately excluded — records are stored per (spec, config), so the
same simulation tagged differently by two figures is computed once.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..core.engine import ENGINE_SEMANTICS_VERSION

__all__ = [
    "CHECKPOINT_SCHEMA",
    "STORE_ENV",
    "CampaignCheckpoint",
    "ResultStore",
    "default_store_uri",
    "lease_is_stale",
    "lease_owner",
    "open_store",
    "set_store_default",
    "sweep_result_key",
]

#: environment variable naming the default store URI (CLI ``--store``
#: overrides it for the process via :func:`set_store_default`)
STORE_ENV = "REPRO_STORE"

#: bump when the checkpoint layout changes incompatibly
CHECKPOINT_SCHEMA = "repro.store.campaign/v1"

#: seconds a job lease stays valid without renewal (override with
#: REPRO_LEASE_TTL_S); expired leases may be re-claimed by anyone
DEFAULT_LEASE_TTL_S = 600.0


def lease_ttl_s() -> float:
    try:
        return float(os.environ.get("REPRO_LEASE_TTL_S", DEFAULT_LEASE_TTL_S))
    except ValueError:
        return DEFAULT_LEASE_TTL_S


def sweep_result_key(workload_spec, config, payload=None) -> str:
    """Stable content hash of one sweep job's inputs.

    ``workload_spec`` needs ``kind``/``threads``/``seed``/``params``
    attributes (:class:`~repro.analysis.sweep.WorkloadSpec`); ``config``
    needs ``to_dict()`` (:class:`~repro.core.SimulationConfig`);
    ``payload`` is an optional
    :class:`~repro.analysis.sweep.PayloadRequest`. A truthy payload
    request is hashed into the key so fat records (carrying response
    distributions, raw series, or probe samples) never collide with
    slim records of the same (spec, config); an empty/absent request
    leaves the key bit-identical to the historical slim format, so
    caches written before payloads existed stay warm.
    """
    blob_dict = {
        "workload": {
            "kind": workload_spec.kind,
            "threads": workload_spec.threads,
            "seed": workload_spec.seed,
            "params": list(workload_spec.params),
        },
        "config": config.to_dict(),
        "engine_semantics": ENGINE_SEMANTICS_VERSION,
    }
    if payload:
        blob_dict["payload"] = payload.to_dict()
    blob = json.dumps(blob_dict, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class CampaignCheckpoint:
    """Durable identity of one campaign: its job manifest and metadata.

    The checkpoint is written once when a campaign first starts and
    never rewritten; the mutable *frontier* (which job keys have
    finished) lives beside it in the store and is appended to as each
    record completes. ``jobs`` holds one JSON-able dict per sweep job —
    ``{"tag", "key", "workload", "config", "payload"}`` — enough to
    reconstruct the exact job list in another process with no access to
    the code that built it. ``meta`` carries whatever the submitter
    wants a resuming process to know (the CLI stores the experiment id,
    scale, and seed so ``repro run --resume <id>`` needs no further
    arguments).
    """

    campaign_id: str
    label: str = ""
    created_at: str = ""
    jobs: tuple[dict[str, Any], ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)
    schema: str = CHECKPOINT_SCHEMA

    @property
    def job_keys(self) -> set[str]:
        return {job["key"] for job in self.jobs}

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "campaign_id": self.campaign_id,
            "label": self.label,
            "created_at": self.created_at,
            "jobs": list(self.jobs),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignCheckpoint":
        return cls(
            campaign_id=data["campaign_id"],
            label=data.get("label", ""),
            created_at=data.get("created_at", ""),
            jobs=tuple(data.get("jobs", ())),
            meta=dict(data.get("meta", {})),
            schema=data.get("schema", CHECKPOINT_SCHEMA),
        )


def lease_owner() -> dict[str, Any]:
    """This process's lease identity (host + pid + claim time)."""
    return {"host": socket.gethostname(), "pid": os.getpid(), "ts": time.time()}


def lease_is_stale(lease: Mapping[str, Any], now: float | None = None) -> bool:
    """Whether a recorded lease no longer protects its job.

    A lease is stale once it expires, or earlier when its owner lived on
    *this* host and that process no longer exists — a crashed shard on
    the same machine releases its jobs immediately instead of blocking
    a resume for the full TTL. Cross-host owners cannot be probed, so
    only expiry frees their claims.
    """
    now = time.time() if now is None else now
    expires = lease.get("expires", 0.0)
    if expires <= now:
        return True
    if lease.get("host") == socket.gethostname():
        pid = lease.get("pid")
        if isinstance(pid, int) and pid > 0 and pid != os.getpid():
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                pass
    return False


class ResultStore(ABC):
    """Backend contract for campaign results, checkpoints, and leases.

    Implementations must make :meth:`put` atomic (a killed writer never
    leaves a half-written entry visible) and :meth:`mark_done` durable
    before returning, since the parent calls both as each record lands
    and may be SIGKILLed at any point between jobs.
    """

    # -- result entries -------------------------------------------------

    @abstractmethod
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload, or None on miss/corruption (never raises).

        A corrupt entry (present but undecodable) is *quarantined* on
        first detection — renamed/moved aside so warm passes stop
        re-reading it — and counted by :meth:`stats`.
        """

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        """Batched :meth:`get` for the campaign cache-probe phase.

        Returns only the keys that hit. The default loops :meth:`get`;
        backends with cheaper bulk reads override it.
        """
        found: dict[str, dict[str, Any]] = {}
        for key in keys:
            payload = self.get(key)
            if payload is not None:
                found[key] = payload
        return found

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically.

        Refuses payloads flagged as failed: a store entry asserts "this
        (spec, config) simulated successfully", and replaying a
        transient worker failure forever would poison every later
        campaign. The sweep harness never offers failed records; this
        guard catches any future caller that tries.
        """
        if payload.get("error"):
            raise ValueError(
                f"refusing to store failed sweep result under key {key!r}"
            )
        self._write(key, payload)

    @abstractmethod
    def _write(self, key: str, payload: Mapping[str, Any]) -> None:
        """Backend write; atomicity is the implementation's burden."""

    @abstractmethod
    def clear(self) -> int:
        """Delete every stored result (and quarantined/stale debris);
        returns the number of entries removed. Campaign checkpoints are
        cleared too — a store without its results cannot honestly claim
        any frontier progress."""

    @abstractmethod
    def stats(self) -> dict[str, Any]:
        """Entry count, on-disk footprint, quarantined-entry count, and
        backend identity, for campaign telemetry and ``repro cache``."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def describe(self) -> str:
        """Canonical URI for manifests/provenance (``dir:...`` etc.)."""

    # -- campaign checkpoints -------------------------------------------

    @abstractmethod
    def save_checkpoint(self, checkpoint: CampaignCheckpoint) -> None:
        """Persist a campaign's job manifest (write-once; saving an
        existing id with an identical job-key set is a no-op)."""

    @abstractmethod
    def load_checkpoint(self, campaign_id: str) -> CampaignCheckpoint | None: ...

    @abstractmethod
    def list_campaigns(self) -> list[str]: ...

    @abstractmethod
    def mark_done(self, campaign_id: str, key: str) -> None:
        """Record one finished job key in the campaign frontier."""

    @abstractmethod
    def done_keys(self, campaign_id: str) -> set[str]:
        """Every job key the campaign has durably completed."""

    # -- job leases -----------------------------------------------------

    @abstractmethod
    def claim(
        self, campaign_id: str, key: str, ttl_s: float | None = None
    ) -> bool:
        """Try to take ownership of one pending job for this process.

        Returns False when another live process holds the lease (or the
        job is already done). Stale leases — expired, or held by a dead
        process on this host — are taken over. Claims are advisory for
        correctness of *results* (records are pure functions of their
        job) and load-bearing only for avoiding duplicate work.
        """

    @abstractmethod
    def release(self, campaign_id: str, key: str) -> None:
        """Drop this process's lease on a job (after completion)."""

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""


# -- URI resolution and process-wide default ---------------------------

_STORE_DEFAULT: str | None = None


def set_store_default(uri: str | None) -> str | None:
    """Set the process-wide store URI default; returns the old value.

    Used by the CLI's ``--store`` flag (experiment runners have no
    store parameter). ``None`` restores the environment/``cache_dir``
    resolution order.
    """
    global _STORE_DEFAULT
    previous = _STORE_DEFAULT
    if uri is not None:
        parse_store_uri(uri)  # validate before installing
    _STORE_DEFAULT = uri
    return previous


def default_store_uri() -> str | None:
    """The process default store URI: ``--store`` value if set, else the
    ``REPRO_STORE`` environment variable, else None."""
    if _STORE_DEFAULT is not None:
        return _STORE_DEFAULT
    return os.environ.get(STORE_ENV) or None


def parse_store_uri(uri: str) -> tuple[str, str]:
    """Split a store URI into ``(scheme, path)``.

    ``dir:PATH`` and ``sqlite:PATH`` are the known schemes; a bare path
    (no scheme, or a Windows drive letter) means the directory backend,
    so pre-URI call sites keep their meaning.
    """
    scheme, sep, rest = uri.partition(":")
    if sep and len(scheme) > 1:  # len == 1 would be a drive letter
        scheme = scheme.lower()
        if scheme not in ("dir", "sqlite"):
            raise ValueError(
                f"unknown result-store scheme {scheme!r} in {uri!r}; "
                "expected dir:PATH or sqlite:PATH"
            )
        if not rest:
            raise ValueError(f"store URI {uri!r} names no path")
        return scheme, rest
    return "dir", uri


def open_store(target: "ResultStore | str | os.PathLike") -> ResultStore:
    """Resolve a store argument — an instance, a URI, or a bare path —
    into a live :class:`ResultStore`."""
    if isinstance(target, ResultStore):
        return target
    scheme, path = parse_store_uri(str(target))
    if scheme == "sqlite":
        from .sqlitestore import SQLiteStore

        return SQLiteStore(path)
    from .dirstore import DirectoryStore

    return DirectoryStore(path)


def campaign_id_for(label: str, keys: Iterable[str]) -> str:
    """Deterministic campaign id: label slug + digest of the job-key set.

    Re-running the same job list under the same label maps to the same
    campaign, which is what makes resume automatic — no id needs to be
    carried between invocations (though one can be, via ``--resume``).
    """
    slug = "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in (label or "sweep")
    ).strip("-") or "sweep"
    digest = hashlib.sha256(
        "\n".join(sorted(keys)).encode("utf-8")
    ).hexdigest()[:12]
    return f"{slug}-{digest}"
