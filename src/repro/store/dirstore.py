"""Local-directory result store: one JSON file per entry.

This is the historical ``ResultCache`` layout, unchanged byte for byte:
entries are ``<key>.json`` files written atomically via ``os.replace``
in a ``results/`` directory next to the workload cache's ``.npz``
files, so ``--cache-dir`` governs both caches, deleting the directory
resets both, and every cache written before the store abstraction
existed stays warm. The store keeps entries as plain metric dicts
rather than pickled records so they stay inspectable (``cat`` able),
diffable, and robust to refactors of the record class.

Campaign state lives out of band under ``campaigns/<id>/`` —
``manifest.json`` (the write-once job manifest), ``done.log`` (one
finished key per line, appended with ``O_APPEND`` so concurrent
markers never interleave within a line), and ``leases/<key>.json``
(ownership claims created with ``O_EXCL``). The layout keeps the
entry namespace exactly what it always was: ``*.json`` files at the
top level are results, nothing else.

Corrupt entries — present but undecodable, e.g. truncated by a dying
filesystem — are *quarantined* on first read: renamed to
``<key>.corrupt`` so every later warm pass misses cleanly instead of
re-reading and re-failing forever, and counted by :meth:`stats`.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Mapping

from .base import (
    CampaignCheckpoint,
    ResultStore,
    lease_is_stale,
    lease_owner,
    lease_ttl_s,
)

__all__ = ["DirectoryStore"]


class DirectoryStore(ResultStore):
    """Key -> JSON-payload store backed by one directory of files."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def describe(self) -> str:
        return f"dir:{self.directory}"

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _campaign_dir(self, campaign_id: str) -> Path:
        return self.directory / "campaigns" / campaign_id

    # -- result entries -------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload, or None on miss/corruption (never raises)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move an undecodable entry aside (kept for post-mortems)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass  # a concurrent reader may have quarantined it already

    def _write(self, key: str, payload: Mapping[str, Any]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(dict(payload), sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every stored result (plus quarantined entries, stale
        ``*.tmp*`` files left by killed writers, and campaign state);
        returns the number of entries removed."""
        removed = 0
        if self.directory.exists():
            stale = set(self.directory.glob("*.json"))
            stale.update(self.directory.glob("*.tmp*"))
            stale.update(self.directory.glob("*.corrupt"))
            for f in stale:
                f.unlink(missing_ok=True)
                removed += 1
            shutil.rmtree(self.directory / "campaigns", ignore_errors=True)
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> dict[str, Any]:
        """Entry count, footprint, and quarantine count for telemetry."""
        entries = 0
        size = 0
        corrupt = 0
        if self.directory.exists():
            for f in self.directory.glob("*.json"):
                entries += 1
                try:
                    size += f.stat().st_size
                except OSError:
                    pass
            corrupt = sum(1 for _ in self.directory.glob("*.corrupt"))
        return {
            "entries": entries,
            "bytes": size,
            "corrupt": corrupt,
            "backend": "dir",
        }

    # -- campaign checkpoints -------------------------------------------

    def save_checkpoint(self, checkpoint: CampaignCheckpoint) -> None:
        target = self._campaign_dir(checkpoint.campaign_id)
        path = target / "manifest.json"
        if path.exists():
            return  # write-once; the frontier carries all mutable state
        target.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(
            json.dumps(checkpoint.to_dict(), sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)

    def load_checkpoint(self, campaign_id: str) -> CampaignCheckpoint | None:
        path = self._campaign_dir(campaign_id) / "manifest.json"
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return CampaignCheckpoint.from_dict(data)

    def list_campaigns(self) -> list[str]:
        root = self.directory / "campaigns"
        if not root.exists():
            return []
        return sorted(
            p.name for p in root.iterdir() if (p / "manifest.json").exists()
        )

    def mark_done(self, campaign_id: str, key: str) -> None:
        target = self._campaign_dir(campaign_id)
        target.mkdir(parents=True, exist_ok=True)
        # O_APPEND: single-line writes from concurrent shards land whole
        with open(target / "done.log", "a", encoding="utf-8") as fh:
            fh.write(key + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def done_keys(self, campaign_id: str) -> set[str]:
        path = self._campaign_dir(campaign_id) / "done.log"
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return set()
        # a parent killed mid-append may leave a truncated final line;
        # it simply doesn't count as done and the job re-runs
        return {line.strip() for line in lines if len(line.strip()) == 32}

    # -- job leases -----------------------------------------------------

    def _lease_path(self, campaign_id: str, key: str) -> Path:
        return self._campaign_dir(campaign_id) / "leases" / f"{key}.json"

    def claim(
        self, campaign_id: str, key: str, ttl_s: float | None = None
    ) -> bool:
        if key in self.done_keys(campaign_id):
            return False
        path = self._lease_path(campaign_id, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        ttl = lease_ttl_s() if ttl_s is None else float(ttl_s)
        doc = {**lease_owner(), "expires": time.time() + ttl}
        blob = json.dumps(doc)
        try:
            # O_EXCL: exactly one creator wins a fresh claim
            with open(path, "x", encoding="utf-8") as fh:
                fh.write(blob)
            return True
        except FileExistsError:
            pass
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = {}
        if existing.get("pid") == os.getpid() and existing.get("host") == doc["host"]:
            return True  # already ours (re-claim after a pool rebuild)
        if not lease_is_stale(existing):
            return False
        # take over a stale lease; os.replace keeps the handoff atomic
        # (two racing claimants both "win", which costs duplicate work
        # on an already-orphaned job, never a wrong result)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            return False
        return True

    def release(self, campaign_id: str, key: str) -> None:
        try:
            self._lease_path(campaign_id, key).unlink(missing_ok=True)
        except OSError:
            pass
