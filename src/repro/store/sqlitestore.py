"""SQLite/WAL result store: one database safe for concurrent writers.

The directory backend is perfect for one process but N sharded
campaign parents hammering one NFS-exported tree of tiny JSON files is
where local-dir stores go to die. This backend keeps the exact same
*logical* contract — JSON payload per content-addressed key, write-once
campaign manifests, an append-only done frontier, job leases — in a
single SQLite database opened in WAL mode, so concurrent readers never
block the one writer and short write transactions from many processes
interleave safely on one (local) filesystem. Payloads are stored as
canonical JSON text, byte-identical to what the directory backend
writes into ``<key>.json``, so records replayed from either backend are
indistinguishable.

Connections are per-process and per-instance: a store object that
crosses a ``fork`` (e.g. pickled into a pool worker) transparently
reopens, because SQLite connections must never be shared across
processes. Claims use ``BEGIN IMMEDIATE`` so lease takeover is a real
transaction, not the directory backend's advisory ``O_EXCL`` dance.

Corrupt rows — undecodable payload text — are quarantined into a
``corrupt`` table on first read (mirroring the directory backend's
``*.corrupt`` rename) and counted by :meth:`stats`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from .base import (
    CampaignCheckpoint,
    ResultStore,
    lease_is_stale,
    lease_owner,
    lease_ttl_s,
)

__all__ = ["SQLiteStore"]

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS results ("
    " key TEXT PRIMARY KEY, payload TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS corrupt ("
    " key TEXT PRIMARY KEY, payload TEXT)",
    "CREATE TABLE IF NOT EXISTS campaigns ("
    " id TEXT PRIMARY KEY, manifest TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS done ("
    " campaign TEXT NOT NULL, key TEXT NOT NULL,"
    " PRIMARY KEY (campaign, key))",
    "CREATE TABLE IF NOT EXISTS leases ("
    " campaign TEXT NOT NULL, key TEXT NOT NULL,"
    " owner TEXT NOT NULL, expires REAL NOT NULL,"
    " PRIMARY KEY (campaign, key))",
)

#: keys per IN (...) clause in get_many (SQLite's parameter cap is 999
#: in older builds)
_CHUNK = 400


class SQLiteStore(ResultStore):
    """Key -> JSON-payload store backed by one SQLite/WAL database."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        self._lock = threading.Lock()

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    def _connection(self) -> sqlite3.Connection:
        # reopen after a fork: SQLite connections are process-private
        if self._conn is None or self._pid != os.getpid():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path,
                timeout=30.0,
                isolation_level=None,  # autocommit; explicit BEGIN where needed
                check_same_thread=False,  # guarded by self._lock
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            for statement in _SCHEMA:
                conn.execute(statement)
            self._conn = conn
            self._pid = os.getpid()
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._pid = None

    # pickling (into pool workers) ships only the path; the worker's
    # first use opens its own connection
    def __getstate__(self) -> dict[str, Any]:
        return {"path": self.path}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.path = state["path"]
        self._conn = None
        self._pid = None
        self._lock = threading.Lock()

    # -- result entries -------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            conn = self._connection()
            row = conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return None
            try:
                payload = json.loads(row[0])
            except ValueError:
                payload = None
            if not isinstance(payload, dict):
                self._quarantine(conn, key, row[0])
                return None
            return payload

    @staticmethod
    def _quarantine(conn: sqlite3.Connection, key: str, blob: Any) -> None:
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT OR REPLACE INTO corrupt (key, payload) VALUES (?, ?)",
                (key, blob if isinstance(blob, str) else None),
            )
            conn.execute("DELETE FROM results WHERE key = ?", (key,))
            conn.execute("COMMIT")
        except sqlite3.Error:
            conn.execute("ROLLBACK")

    def get_many(self, keys: Sequence[str]) -> dict[str, dict[str, Any]]:
        found: dict[str, dict[str, Any]] = {}
        bad: list[tuple[str, str]] = []
        with self._lock:
            conn = self._connection()
            for start in range(0, len(keys), _CHUNK):
                chunk = list(keys[start : start + _CHUNK])
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT key, payload FROM results WHERE key IN ({marks})",
                    chunk,
                ).fetchall()
                for key, blob in rows:
                    try:
                        payload = json.loads(blob)
                    except ValueError:
                        payload = None
                    if isinstance(payload, dict):
                        found[key] = payload
                    else:
                        bad.append((key, blob))
            for key, blob in bad:
                self._quarantine(conn, key, blob)
        return found

    def _write(self, key: str, payload: Mapping[str, Any]) -> None:
        blob = json.dumps(dict(payload), sort_keys=True)
        with self._lock:
            self._connection().execute(
                "INSERT OR REPLACE INTO results (key, payload) VALUES (?, ?)",
                (key, blob),
            )

    def clear(self) -> int:
        with self._lock:
            conn = self._connection()
            (removed,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
            conn.execute("BEGIN IMMEDIATE")
            try:
                for table in ("results", "corrupt", "campaigns", "done", "leases"):
                    conn.execute(f"DELETE FROM {table}")
                conn.execute("COMMIT")
            except sqlite3.Error:
                conn.execute("ROLLBACK")
                raise
        return removed

    def __len__(self) -> int:
        with self._lock:
            (count,) = (
                self._connection()
                .execute("SELECT COUNT(*) FROM results")
                .fetchone()
            )
        return count

    def stats(self) -> dict[str, Any]:
        with self._lock:
            conn = self._connection()
            (entries,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
            (size,) = conn.execute(
                "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM results"
            ).fetchone()
            (corrupt,) = conn.execute("SELECT COUNT(*) FROM corrupt").fetchone()
        return {
            "entries": entries,
            "bytes": size,
            "corrupt": corrupt,
            "backend": "sqlite",
        }

    # -- campaign checkpoints -------------------------------------------

    def save_checkpoint(self, checkpoint: CampaignCheckpoint) -> None:
        blob = json.dumps(checkpoint.to_dict(), sort_keys=True)
        with self._lock:
            # INSERT OR IGNORE: write-once, first manifest wins
            self._connection().execute(
                "INSERT OR IGNORE INTO campaigns (id, manifest) VALUES (?, ?)",
                (checkpoint.campaign_id, blob),
            )

    def load_checkpoint(self, campaign_id: str) -> CampaignCheckpoint | None:
        with self._lock:
            row = (
                self._connection()
                .execute(
                    "SELECT manifest FROM campaigns WHERE id = ?", (campaign_id,)
                )
                .fetchone()
            )
        if row is None:
            return None
        try:
            return CampaignCheckpoint.from_dict(json.loads(row[0]))
        except (ValueError, KeyError):
            return None

    def list_campaigns(self) -> list[str]:
        with self._lock:
            rows = (
                self._connection()
                .execute("SELECT id FROM campaigns ORDER BY id")
                .fetchall()
            )
        return [row[0] for row in rows]

    def mark_done(self, campaign_id: str, key: str) -> None:
        with self._lock:
            self._connection().execute(
                "INSERT OR IGNORE INTO done (campaign, key) VALUES (?, ?)",
                (campaign_id, key),
            )

    def done_keys(self, campaign_id: str) -> set[str]:
        with self._lock:
            rows = (
                self._connection()
                .execute(
                    "SELECT key FROM done WHERE campaign = ?", (campaign_id,)
                )
                .fetchall()
            )
        return {row[0] for row in rows}

    # -- job leases -----------------------------------------------------

    def claim(
        self, campaign_id: str, key: str, ttl_s: float | None = None
    ) -> bool:
        ttl = lease_ttl_s() if ttl_s is None else float(ttl_s)
        me = lease_owner()
        with self._lock:
            conn = self._connection()
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT 1 FROM done WHERE campaign = ? AND key = ?",
                    (campaign_id, key),
                ).fetchone()
                if row is not None:
                    conn.execute("ROLLBACK")
                    return False
                row = conn.execute(
                    "SELECT owner, expires FROM leases"
                    " WHERE campaign = ? AND key = ?",
                    (campaign_id, key),
                ).fetchone()
                if row is not None:
                    try:
                        holder = json.loads(row[0])
                    except ValueError:
                        holder = {}
                    holder["expires"] = row[1]
                    ours = (
                        holder.get("pid") == me["pid"]
                        and holder.get("host") == me["host"]
                    )
                    if not ours and not lease_is_stale(holder):
                        conn.execute("ROLLBACK")
                        return False
                conn.execute(
                    "INSERT OR REPLACE INTO leases"
                    " (campaign, key, owner, expires) VALUES (?, ?, ?, ?)",
                    (campaign_id, key, json.dumps(me), time.time() + ttl),
                )
                conn.execute("COMMIT")
                return True
            except sqlite3.Error:
                conn.execute("ROLLBACK")
                return False

    def release(self, campaign_id: str, key: str) -> None:
        with self._lock:
            try:
                self._connection().execute(
                    "DELETE FROM leases WHERE campaign = ? AND key = ?",
                    (campaign_id, key),
                )
            except sqlite3.Error:
                pass
