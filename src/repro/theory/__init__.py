"""Theory toolbox: lower bounds, adversaries, and guarantee validation."""

from .adversary import (
    GapPoint,
    fcfs_gap_experiment,
    fcfs_gap_jobs,
    fcfs_gap_points,
    fit_linear,
)
from .bounds import (
    LowerBoundReport,
    belady_misses,
    competitive_ratio,
    makespan_lower_bound,
    min_fetches_lower_bound,
)
from .validation import (
    CompetitivenessRow,
    check_cycle_response_bound,
    check_latency_bound,
    check_priority_competitiveness,
    cycle_response_time_bound,
    dpq_latency_bound,
)

__all__ = [
    "LowerBoundReport",
    "makespan_lower_bound",
    "min_fetches_lower_bound",
    "belady_misses",
    "competitive_ratio",
    "GapPoint",
    "fcfs_gap_experiment",
    "fcfs_gap_jobs",
    "fcfs_gap_points",
    "fit_linear",
    "CompetitivenessRow",
    "check_priority_competitiveness",
    "cycle_response_time_bound",
    "check_cycle_response_bound",
    "dpq_latency_bound",
    "check_latency_bound",
]
