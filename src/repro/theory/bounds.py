"""Makespan lower bounds for the HBM+DRAM model.

Competitive-ratio statements (Theorems 1 and 3) compare a policy's
makespan to the offline optimum. The optimum is intractable to compute
exactly, so the validation harness uses *certified lower bounds*: any
policy's ratio to a lower bound upper-bounds its ratio to OPT, making
"Priority stays within a small constant of the lower bound" a sound
empirical check of O(1)-competitiveness (and the FIFO adversary's ratio
to the same bound a sound demonstration of Omega(p)).

Bounds implemented:

* **serial bound** — a core serves at most one reference per tick, so
  ``makespan >= max_i L_i``; with a cold HBM the first reference of the
  longest trace also pays a miss, giving ``max_i L_i + 1``.
* **channel bound** — every distinct page must cross a far channel at
  least once (cold HBM), at most ``q`` per tick, and the last page
  fetched still needs one more tick to be served:
  ``makespan >= ceil(D / q) + 1`` for D total distinct pages.
* **capacity bound** — pages beyond HBM capacity must be fetched again.
  For disjoint workloads (model Property 1) we charge each thread its
  per-stream Belady (MIN) miss count at full HBM capacity: no policy
  can fetch thread i's pages fewer times than the offline-optimal
  replacement does when the thread has the *whole* HBM to itself, so
  ``sum_i belady_misses(R_i, k)`` lower-bounds total far-channel
  transfers, and dividing by ``q`` lower-bounds makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "LowerBoundReport",
    "makespan_lower_bound",
    "min_fetches_lower_bound",
    "belady_misses",
    "competitive_ratio",
]


@dataclass(frozen=True)
class LowerBoundReport:
    """All computed bounds plus their maximum (the certified bound)."""

    serial: int
    channel: int
    capacity: int

    @property
    def value(self) -> int:
        return max(self.serial, self.channel, self.capacity)


def _distinct_pages(traces: Sequence[np.ndarray]) -> int:
    if not traces:
        return 0
    non_empty = [np.asarray(t) for t in traces if len(t)]
    if not non_empty:
        return 0
    return len(np.unique(np.concatenate(non_empty)))


def belady_misses(trace: Sequence[int] | np.ndarray, capacity: int) -> int:
    """Miss count of Belady's MIN on a single stream with ``capacity``.

    MIN (evict the page whose next use is furthest in the future) is
    the offline optimum for a single reference stream, so this is the
    fewest fetches *any* policy can spend on this stream even given the
    whole HBM.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    trace = np.asarray(trace, dtype=np.int64)
    n = len(trace)
    if n == 0:
        return 0
    # next_use[j] = next position referencing trace[j], or n (infinity)
    next_use = np.full(n, n, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for j in range(n - 1, -1, -1):
        page = int(trace[j])
        next_use[j] = last_seen.get(page, n)
        last_seen[page] = j
    resident: dict[int, int] = {}  # page -> its current next-use position
    heap: list[tuple[int, int]] = []  # (-next_use, page), lazily stale
    misses = 0
    pages = trace.tolist()
    nxt = next_use.tolist()
    for j, page in enumerate(pages):
        if page in resident:
            resident[page] = nxt[j]
            heapq.heappush(heap, (-nxt[j], page))
            continue
        misses += 1
        if len(resident) >= capacity:
            while True:
                neg, victim = heapq.heappop(heap)
                if resident.get(victim) == -neg:
                    del resident[victim]
                    break
        resident[page] = nxt[j]
        heapq.heappush(heap, (-nxt[j], page))
    return misses


def min_fetches_lower_bound(
    traces: Sequence[np.ndarray],
    hbm_slots: int,
) -> int:
    """Minimum far-channel transfers any policy must perform.

    For disjoint workloads: the sum over threads of each stream's
    Belady (MIN) miss count at the *full* HBM capacity — a thread can
    never hold more than all of HBM, and MIN is per-stream optimal, so
    no arbitration/replacement pair beats this. The per-thread sums
    would double-count shared fetches, so non-disjoint workloads fall
    back to the compulsory bound (one fetch per distinct page).
    """
    total = _distinct_pages(traces)
    per_thread_unique = sum(
        len(np.unique(t)) for t in traces if len(np.asarray(t))
    )
    if per_thread_unique != total:
        return total
    fetches = 0
    for trace in traces:
        trace = np.asarray(trace)
        if len(trace) == 0:
            continue
        if len(np.unique(trace)) <= hbm_slots:
            fetches += len(np.unique(trace))  # compulsory only
        else:
            fetches += belady_misses(trace, hbm_slots)
    return fetches


def makespan_lower_bound(
    traces: Sequence[np.ndarray],
    hbm_slots: int,
    channels: int = 1,
) -> LowerBoundReport:
    """Certified makespan lower bound for a workload.

    All three bounds hold for any arbitration and replacement policy,
    including the offline optimum.
    """
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    if hbm_slots < 1:
        raise ValueError(f"hbm_slots must be >= 1, got {hbm_slots}")
    lengths = [len(t) for t in traces]
    longest = max(lengths, default=0)
    serial = longest + 1 if longest else 0

    distinct = _distinct_pages(traces)
    channel = -(-distinct // channels) + 1 if distinct else 0

    fetches = min_fetches_lower_bound(traces, hbm_slots)
    capacity = -(-fetches // channels) + 1 if fetches else 0

    return LowerBoundReport(serial=serial, channel=channel, capacity=capacity)


def competitive_ratio(makespan: int, bound: LowerBoundReport | int) -> float:
    """Makespan over the certified lower bound (an OPT-ratio upper bound)."""
    value = bound.value if isinstance(bound, LowerBoundReport) else int(bound)
    if value <= 0:
        raise ValueError("lower bound must be positive")
    return makespan / value
