"""The FCFS lower-bound family (paper Theorem 2 / Dataset 3).

Theorem 2 (Das et al. [24]): there exist p request sequences on which
FCFS+LRU is a Theta(p/ds) factor from optimal even with d memory
augmentation and s bandwidth augmentation. The construction: disjoint
cyclic streams whose joint working set exceeds HBM. FCFS round-robins
the far channel, spreading HBM "like butter scraped over too much
bread" — by the time a thread revisits a page it has been evicted, so
*every* reference misses and the makespan is the full reference count
serialized over q channels. Priority instead parks low threads and lets
high threads run from HBM.

:func:`fcfs_gap_jobs` builds the thread-count sweep holding per-thread
memory constant (the paper's Figure 3 protocol: k = fraction * total
unique pages); :func:`fcfs_gap_points` distills the resulting sweep
records — plus the certified lower bound recomputed from the traces —
into :class:`GapPoint` s; :func:`fit_linear` quantifies the paper's
"linearly worse" claim. :func:`fcfs_gap_experiment` is the one-call
convenience wrapper chaining the two through the sweep harness, so
theory harnesses share the experiments' result cache and engine
dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..analysis.sweep import SweepJob, SweepRecord, WorkloadSpec, run_sweep
from ..core import SimulationConfig
from ..traces import Workload
from ..traces.adversarial import fifo_adversarial_hbm_slots
from .bounds import competitive_ratio, makespan_lower_bound

__all__ = [
    "GapPoint",
    "fcfs_gap_experiment",
    "fcfs_gap_jobs",
    "fcfs_gap_points",
    "fit_linear",
]


@dataclass(frozen=True)
class GapPoint:
    """One thread-count sample of the FIFO-vs-Priority gap."""

    threads: int
    hbm_slots: int
    fifo_makespan: int
    priority_makespan: int
    fifo_hit_rate: float
    priority_hit_rate: float
    fifo_ratio_to_bound: float
    priority_ratio_to_bound: float

    @property
    def gap(self) -> float:
        return self.fifo_makespan / self.priority_makespan


def fcfs_gap_jobs(
    thread_counts: Sequence[int],
    pages_per_thread: int = 256,
    repeats: int = 100,
    hbm_fraction: float = 0.25,
    channels: int = 1,
    seed: int = 0,
) -> list[SweepJob]:
    """Sweep jobs for the Theorem 2 / Figure 3 protocol.

    Per-thread memory is held constant: HBM holds ``hbm_fraction`` of
    the total unique pages, so doubling p doubles both demand and k.
    Two jobs per thread count (FIFO, Priority), over the Dataset-3
    cyclic workload family.
    """
    jobs: list[SweepJob] = []
    for p in thread_counts:
        spec = WorkloadSpec.make(
            "adversarial_cycle",
            threads=p,
            seed=seed,
            pages=pages_per_thread,
            repeats=repeats,
        )
        k = fifo_adversarial_hbm_slots(p, pages_per_thread, hbm_fraction)
        for arb in ("fifo", "priority"):
            jobs.append(
                SweepJob(
                    spec,
                    SimulationConfig(
                        hbm_slots=k, channels=channels, arbitration=arb, seed=seed
                    ),
                    tag="fcfs_gap",
                )
            )
    return jobs


def fcfs_gap_points(
    records: Iterable[SweepRecord],
    channels: int = 1,
    build_workload: Callable[[WorkloadSpec], Workload] | None = None,
) -> list[GapPoint]:
    """Distill :func:`fcfs_gap_jobs` records into :class:`GapPoint` s.

    The certified lower bound is recomputed from the workload traces;
    ``build_workload`` lets callers route that rebuild through a
    workload cache (e.g. ``CampaignContext.build_workload``).
    """
    build = build_workload or (lambda spec: spec.build(None))
    by_p: dict[int, dict[str, SweepRecord]] = {}
    order: list[int] = []
    for record in records:
        p = record.job.workload.threads
        if p not in by_p:
            by_p[p] = {}
            order.append(p)
        by_p[p][record.job.config.arbitration] = record
    points: list[GapPoint] = []
    for p in order:
        fifo = by_p[p]["fifo"]
        prio = by_p[p]["priority"]
        k = fifo.job.config.hbm_slots
        workload = build(fifo.job.workload)
        bound = makespan_lower_bound(workload.traces, k, channels)
        points.append(
            GapPoint(
                threads=p,
                hbm_slots=k,
                fifo_makespan=fifo.makespan,
                priority_makespan=prio.makespan,
                fifo_hit_rate=fifo.hit_rate,
                priority_hit_rate=prio.hit_rate,
                fifo_ratio_to_bound=competitive_ratio(fifo.makespan, bound),
                priority_ratio_to_bound=competitive_ratio(prio.makespan, bound),
            )
        )
    return points


def fcfs_gap_experiment(
    thread_counts: Sequence[int],
    pages_per_thread: int = 256,
    repeats: int = 100,
    hbm_fraction: float = 0.25,
    channels: int = 1,
    seed: int = 0,
    cache_dir=None,
) -> list[GapPoint]:
    """Run the Theorem 2 / Figure 3 protocol over ``thread_counts``.

    Convenience wrapper: builds :func:`fcfs_gap_jobs`, runs them through
    the sweep harness (in-process, optionally against a persistent
    result cache), and reduces with :func:`fcfs_gap_points`.
    """
    records = run_sweep(
        fcfs_gap_jobs(
            thread_counts, pages_per_thread, repeats, hbm_fraction, channels, seed
        ),
        processes=1,
        cache_dir=cache_dir,
    )
    return fcfs_gap_points(records, channels=channels)


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares line fit; returns (slope, intercept, r_squared)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points to fit a line")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r2
