"""The FCFS lower-bound family (paper Theorem 2 / Dataset 3).

Theorem 2 (Das et al. [24]): there exist p request sequences on which
FCFS+LRU is a Theta(p/ds) factor from optimal even with d memory
augmentation and s bandwidth augmentation. The construction: disjoint
cyclic streams whose joint working set exceeds HBM. FCFS round-robins
the far channel, spreading HBM "like butter scraped over too much
bread" — by the time a thread revisits a page it has been evicted, so
*every* reference misses and the makespan is the full reference count
serialized over q channels. Priority instead parks low threads and lets
high threads run from HBM.

:func:`fcfs_gap_experiment` sweeps thread count holding per-thread
memory constant (the paper's Figure 3 protocol: k = fraction * total
unique pages) and reports both policies' makespans; :func:`fit_linear`
quantifies the paper's "linearly worse" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import SimulationConfig, simulate
from ..traces.adversarial import fifo_adversarial_hbm_slots, theorem2_workload
from .bounds import competitive_ratio, makespan_lower_bound

__all__ = ["GapPoint", "fcfs_gap_experiment", "fit_linear"]


@dataclass(frozen=True)
class GapPoint:
    """One thread-count sample of the FIFO-vs-Priority gap."""

    threads: int
    hbm_slots: int
    fifo_makespan: int
    priority_makespan: int
    fifo_hit_rate: float
    priority_hit_rate: float
    fifo_ratio_to_bound: float
    priority_ratio_to_bound: float

    @property
    def gap(self) -> float:
        return self.fifo_makespan / self.priority_makespan


def fcfs_gap_experiment(
    thread_counts: Sequence[int],
    pages_per_thread: int = 256,
    repeats: int = 100,
    hbm_fraction: float = 0.25,
    channels: int = 1,
    seed: int = 0,
) -> list[GapPoint]:
    """Run the Theorem 2 / Figure 3 protocol over ``thread_counts``.

    Per-thread memory is held constant: HBM holds ``hbm_fraction`` of
    the total unique pages, so doubling p doubles both demand and k.
    """
    points: list[GapPoint] = []
    for p in thread_counts:
        workload = theorem2_workload(p, pages_per_thread, repeats)
        k = fifo_adversarial_hbm_slots(p, pages_per_thread, hbm_fraction)
        bound = makespan_lower_bound(workload.traces, k, channels)
        results = {}
        for arb in ("fifo", "priority"):
            cfg = SimulationConfig(
                hbm_slots=k, channels=channels, arbitration=arb, seed=seed
            )
            results[arb] = simulate(workload, cfg)
        points.append(
            GapPoint(
                threads=p,
                hbm_slots=k,
                fifo_makespan=results["fifo"].makespan,
                priority_makespan=results["priority"].makespan,
                fifo_hit_rate=results["fifo"].hit_rate,
                priority_hit_rate=results["priority"].hit_rate,
                fifo_ratio_to_bound=competitive_ratio(
                    results["fifo"].makespan, bound
                ),
                priority_ratio_to_bound=competitive_ratio(
                    results["priority"].makespan, bound
                ),
            )
        )
    return points


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares line fit; returns (slope, intercept, r_squared)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two points to fit a line")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r2
