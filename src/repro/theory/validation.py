"""Empirical validation of the paper's theoretical guarantees.

* Theorem 1: Priority is O(1)-competitive for q = 1.
* Theorem 3: Priority is O(q)-competitive for q channels.
* Section 4: cycling schemes bound response time by ``p * T`` (a thread
  reaches the top priority within p permutations), plus the two ticks a
  top-priority request needs to be fetched and served.

Because OPT is intractable, competitiveness is checked against the
certified lower bounds of :mod:`repro.theory.bounds` — ratios to a lower
bound upper-bound ratios to OPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import SimulationConfig, SimulationResult, simulate
from ..obs.log import get_logger, warn_once
from ..traces.base import Workload
from .bounds import LowerBoundReport, competitive_ratio, makespan_lower_bound

__all__ = [
    "CompetitivenessRow",
    "check_priority_competitiveness",
    "cycle_response_time_bound",
    "check_cycle_response_bound",
    "dpq_latency_bound",
    "check_latency_bound",
]


@dataclass(frozen=True)
class CompetitivenessRow:
    """Ratio of one policy's makespan to the certified lower bound."""

    workload: str
    threads: int
    hbm_slots: int
    channels: int
    arbitration: str
    makespan: int
    lower_bound: int
    ratio: float


def check_priority_competitiveness(
    workloads: Sequence[Workload],
    hbm_slots: Sequence[int],
    channels: Sequence[int] = (1,),
    arbitration: str = "priority",
    remap_period: int | None = None,
    seed: int = 0,
) -> list[CompetitivenessRow]:
    """Measure makespan / lower-bound across a workload x k x q grid.

    Theorems 1 and 3 predict the ratios stay bounded by a constant
    (times q) for Priority; callers assert a concrete envelope.
    """
    rows: list[CompetitivenessRow] = []
    for workload in workloads:
        for k in hbm_slots:
            bound_cache: dict[int, LowerBoundReport] = {}
            for q in channels:
                bound = bound_cache.get(q)
                if bound is None:
                    bound = makespan_lower_bound(workload.traces, k, q)
                    bound_cache[q] = bound
                if bound.value <= 0:
                    # Degenerate (e.g. empty-trace) workloads certify a
                    # zero lower bound; a ratio to it is undefined, so
                    # skip the cell instead of crashing the whole grid.
                    warn_once(
                        get_logger("theory"),
                        f"competitiveness-zero-bound:{workload.name}",
                        "workload %r certifies a zero makespan lower "
                        "bound; skipping its competitiveness rows",
                        workload.name,
                    )
                    continue
                cfg = SimulationConfig(
                    hbm_slots=k,
                    channels=q,
                    arbitration=arbitration,
                    remap_period=remap_period,
                    seed=seed,
                )
                result = simulate(workload, cfg)
                rows.append(
                    CompetitivenessRow(
                        workload=workload.name,
                        threads=workload.num_threads,
                        hbm_slots=k,
                        channels=q,
                        arbitration=arbitration,
                        makespan=result.makespan,
                        lower_bound=bound.value,
                        ratio=competitive_ratio(result.makespan, bound),
                    )
                )
    return rows


def cycle_response_time_bound(threads: int, remap_period: int, channels: int = 1) -> int:
    """Paper section 4's trivial response-time bound for Cycle Priority.

    A thread becomes top priority within p permutations, i.e. within
    ``p * T`` ticks of entering the queue; once on top it is granted a
    channel on the next selection and served one tick later. With q
    channels the top *q* ranks are all granted per selection, so a
    thread only needs to climb into the top q — at most ``ceil(p / q)``
    permutations — giving ``ceil(p / q) * T + 2``. For q = 1 this is
    the paper's ``p * T + 2``.
    """
    if threads < 1 or remap_period < 1 or channels < 1:
        raise ValueError("threads, remap_period, channels must be >= 1")
    return -(-threads // channels) * remap_period + 2


def check_cycle_response_bound(
    result: SimulationResult,
    threads: int,
    remap_period: int,
    channels: int = 1,
) -> bool:
    """True iff the observed worst response time obeys the p*T+2 bound."""
    return result.max_response <= cycle_response_time_bound(
        threads, remap_period, channels
    )


def dpq_latency_bound(threads: int, channels: int = 1) -> int:
    """Worst-case per-request response time for the DPQ arbiter.

    In the dynamic-priority-queue scheme every granted requestor drops
    to the lowest slot, implicitly promoting everyone it passed. While a
    request waits, each of the ``q`` grants per tick goes to a thread
    ahead of it in the slot order, and a granted thread cannot be ahead
    of it again until it is served — so a request is denied for at most
    ``floor((p - 1) / q)`` ticks before its thread reaches the top q.
    Add the fetch tick and the serve tick for

    ``w <= floor((p - 1) / q) + 2``.

    The bound assumes the fetch limit is not starved by eviction
    infeasibility — ample HBM (``k >= p + q``) together with the
    default ``protect_pending=True`` guarantees it.
    """
    if threads < 1 or channels < 1:
        raise ValueError("threads and channels must be >= 1")
    return (threads - 1) // channels + 2


def check_latency_bound(
    result: SimulationResult,
    threads: int,
    channels: int = 1,
) -> bool:
    """True iff measured ``max_response`` obeys :func:`dpq_latency_bound`.

    Follows the :func:`check_cycle_response_bound` shape so campaign
    reducers can assert it per sweep row.
    """
    return result.max_response <= dpq_latency_bound(threads, channels)
