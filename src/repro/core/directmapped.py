"""Direct-mapped HBM and the Lemma 1 transformation (paper section 2).

Practical HBM implementations are direct mapped (KNL, Sapphire Rapids),
while the theory assumes full associativity. Lemma 1 shows how to
simulate a size-k fully-associative HBM with LRU (or FIFO) replacement
on a direct-mapped cache of size Theta(k), using two data structures
kept *in simulated memory* (so their accesses themselves go through the
direct-mapped cache):

* a size-k hash table with chaining under a 2-universal hash family
  [45], mapping user DRAM addresses to "Cache DRAM addresses" (the
  fixed bijection partners of the direct-mapped slots); and
* a doubly-linked list ordered by eviction priority (front = victim).

This module implements that machinery concretely and counts the induced
direct-mapped hits and misses, letting the Lemma's O(1) expected
overhead be checked empirically (see ``benchmarks/test_bench_directmapped.py``).

It also implements the Theorem 4 concurrent-front-insert primitive: x
processors move x items to the list front in O(log x) PRAM steps via a
prefix-sums rank assignment, with an explicit step counter so tests can
assert the logarithmic bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .replacement import LRUPolicy, FIFOReplacementPolicy

__all__ = [
    "DirectMappedCache",
    "TwoUniversalHash",
    "TransformedCacheSimulator",
    "TransformReport",
    "simulate_fully_associative",
    "transform_overhead",
    "concurrent_front_insert",
]

_MERSENNE_PRIME = (1 << 61) - 1


class TwoUniversalHash:
    """Carter-Wegman 2-universal hash: ``((a*x + b) mod p) mod m``."""

    def __init__(self, buckets: int, rng: np.random.Generator) -> None:
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.buckets = buckets
        self.a = int(rng.integers(1, _MERSENNE_PRIME))
        self.b = int(rng.integers(0, _MERSENNE_PRIME))

    def __call__(self, key: int) -> int:
        return ((self.a * key + self.b) % _MERSENNE_PRIME) % self.buckets


class DirectMappedCache:
    """A direct-mapped cache of ``slots`` page frames.

    Each page maps to exactly one frame (``hash(page) % slots`` with a
    2-universal hash so adversarial address patterns cannot force
    systematic conflicts, mirroring how hardware scrambles index bits).
    """

    def __init__(self, slots: int, rng: np.random.Generator | None = None) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        self._hash = TwoUniversalHash(
            slots, rng if rng is not None else np.random.default_rng()
        )
        self._tags: list[int | None] = [None] * slots
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        """Touch ``page``; return True on hit. Misses install the page."""
        slot = self._hash(page)
        if self._tags[slot] == page:
            self.hits += 1
            return True
        self._tags[slot] = page
        self.misses += 1
        return False

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


def simulate_fully_associative(
    trace: Sequence[int] | np.ndarray,
    capacity: int,
    replacement: str = "lru",
) -> tuple[int, int]:
    """(hits, misses) of a fully-associative cache over ``trace``."""
    if replacement == "lru":
        policy = LRUPolicy(capacity)
    elif replacement == "fifo":
        policy = FIFOReplacementPolicy(capacity)
    else:
        raise ValueError("replacement must be 'lru' or 'fifo'")
    hits = misses = 0
    residency = policy.residency
    for page in np.asarray(trace, dtype=np.int64).tolist():
        if page in residency:
            policy.touch(page)
            hits += 1
        else:
            misses += 1
            if len(residency) >= capacity:
                policy.evict()
            policy.insert(page)
    return hits, misses


@dataclass(frozen=True)
class TransformReport:
    """Accounting for one transformed-program replay (Lemma 1)."""

    original_hits: int
    original_misses: int
    transformed_accesses: int
    transformed_hits: int
    transformed_misses: int
    max_chain_length: int

    @property
    def miss_overhead(self) -> float:
        """Transformed misses per original miss (Lemma 1 claims O(1))."""
        if self.original_misses == 0:
            return 0.0
        return self.transformed_misses / self.original_misses

    @property
    def access_overhead(self) -> float:
        """Transformed accesses per original reference (Lemma 1: O(1))."""
        total = self.original_hits + self.original_misses
        return self.transformed_accesses / total if total else 0.0


class TransformedCacheSimulator:
    """Replay of the Lemma 1 transformed program on a direct-mapped cache.

    Layout of the simulated address space (all page-granular):

    * **metadata region** — hash-bucket heads and linked-list nodes,
      packed ``node_per_page`` to a page; every pointer chase is an
      access to the owning metadata page, which goes through the
      direct-mapped cache.
    * **program-data region** — k "Cache DRAM" pages in bijection with
      the logical cache slots; the user's data access lands on the slot
      page currently assigned to its user page.

    The direct-mapped cache is sized ``slack * k`` pages (the Theta(k)
    of the lemma; ``slack >= 2`` covers metadata + data).
    """

    def __init__(
        self,
        capacity: int,
        replacement: str = "lru",
        slack: int = 4,
        nodes_per_page: int = 32,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if replacement not in ("lru", "fifo"):
            raise ValueError("replacement must be 'lru' or 'fifo'")
        if slack < 2:
            raise ValueError(f"slack must be >= 2, got {slack}")
        self.capacity = capacity
        self.replacement = replacement
        self.nodes_per_page = nodes_per_page
        rng = np.random.default_rng(seed)
        self.cache = DirectMappedCache(slack * capacity, rng=rng)
        self.hash = TwoUniversalHash(capacity, rng=rng)

        # hash table: bucket -> chain of nodes. Nodes double as the
        # linked-list entries (key, slot, chain-next, list-prev/next).
        self._buckets: list[int | None] = [None] * capacity
        self._node_key: dict[int, int] = {}
        self._node_slot: dict[int, int] = {}
        self._node_cnext: dict[int, int | None] = {}
        self._list_prev: dict[int, int | None] = {}
        self._list_next: dict[int, int | None] = {}
        self._list_front: int | None = None  # victim end
        self._list_back: int | None = None  # most-recent end
        self._free_slots = list(range(capacity - 1, -1, -1))
        self._next_node_id = 0
        self.max_chain = 0

        # address map: bucket-head pages first, then node pages, then
        # the k program-data pages (see _touch_data).
        self._node_page_base = -(-capacity // nodes_per_page)

    # -- simulated-memory touches ------------------------------------------
    def _touch_bucket(self, bucket: int) -> None:
        self.cache.access(bucket // self.nodes_per_page)

    def _touch_node(self, node: int) -> None:
        self.cache.access(self._node_page_base + node // self.nodes_per_page)

    def _touch_data(self, slot: int) -> None:
        # Program-data pages live after a metadata region generously
        # sized for capacity nodes.
        node_pages = -(-self.capacity // self.nodes_per_page) + 1
        self.cache.access(self._node_page_base + node_pages + slot)

    # -- hash table / list operations ---------------------------------------
    def _find(self, page: int) -> int | None:
        """Chain walk; returns node id or None. Touches every node read."""
        bucket = self.hash(page)
        self._touch_bucket(bucket)
        node = self._buckets[bucket]
        chain = 0
        while node is not None:
            chain += 1
            self._touch_node(node)
            if self._node_key[node] == page:
                break
            node = self._node_cnext[node]
        self.max_chain = max(self.max_chain, chain)
        return node

    def _list_unlink(self, node: int) -> None:
        prev, nxt = self._list_prev[node], self._list_next[node]
        self._touch_node(node)
        if prev is not None:
            self._touch_node(prev)
            self._list_next[prev] = nxt
        else:
            self._list_front = nxt
        if nxt is not None:
            self._touch_node(nxt)
            self._list_prev[nxt] = prev
        else:
            self._list_back = prev

    def _list_push_back(self, node: int) -> None:
        self._touch_node(node)
        self._list_prev[node] = self._list_back
        self._list_next[node] = None
        if self._list_back is not None:
            self._touch_node(self._list_back)
            self._list_next[self._list_back] = node
        else:
            self._list_front = node
        self._list_back = node

    def _chain_remove(self, page: int, node: int) -> None:
        bucket = self.hash(page)
        self._touch_bucket(bucket)
        cur = self._buckets[bucket]
        if cur == node:
            self._buckets[bucket] = self._node_cnext[node]
            return
        while cur is not None:
            self._touch_node(cur)
            nxt = self._node_cnext[cur]
            if nxt == node:
                self._node_cnext[cur] = self._node_cnext[node]
                return
            cur = nxt
        raise AssertionError("node missing from its chain")

    def _evict_front(self) -> int:
        """Evict the victim-end node; return the freed slot."""
        node = self._list_front
        assert node is not None, "evict on empty cache"
        self._touch_node(node)
        page, slot = self._node_key[node], self._node_slot[node]
        self._list_unlink(node)
        self._chain_remove(page, node)
        # copy data back from Cache DRAM address to user DRAM address
        self._touch_data(slot)
        del self._node_key[node], self._node_slot[node], self._node_cnext[node]
        del self._list_prev[node], self._list_next[node]
        return slot

    # -- public API ----------------------------------------------------------
    def access(self, page: int) -> bool:
        """One user reference; returns True if it was a simulated hit."""
        node = self._find(page)
        if node is not None:
            if self.replacement == "lru":
                self._list_unlink(node)
                self._list_push_back(node)
            self._touch_data(self._node_slot[node])
            return True
        # miss: make room, assign a slot, insert into table and list
        if not self._free_slots:
            slot = self._evict_front()
        else:
            slot = self._free_slots.pop()
        node = self._next_node_id
        self._next_node_id += 1
        # reuse node ids modulo capacity so the metadata region stays Theta(k)
        node %= self.capacity
        while node in self._node_key:
            node = (node + 1) % self.capacity
        bucket = self.hash(page)
        self._touch_bucket(bucket)
        self._touch_node(node)
        self._node_key[node] = page
        self._node_slot[node] = slot
        self._node_cnext[node] = self._buckets[bucket]
        self._buckets[bucket] = node
        self._list_prev[node] = None
        self._list_next[node] = None
        self._list_push_back(node)
        # copy user DRAM -> Cache DRAM, then the access itself
        self._touch_data(slot)
        return False

    def replay(self, trace: Sequence[int] | np.ndarray) -> TransformReport:
        """Replay a trace and compare against the untransformed program."""
        orig_hits, orig_misses = simulate_fully_associative(
            trace, self.capacity, self.replacement
        )
        self.cache.reset_counters()
        sim_hits = sim_misses = 0
        for page in np.asarray(trace, dtype=np.int64).tolist():
            if self.access(page):
                sim_hits += 1
            else:
                sim_misses += 1
        if (sim_hits, sim_misses) != (orig_hits, orig_misses):
            raise AssertionError(
                "transformed program's logical hit/miss sequence diverged "
                f"from the fully-associative original: {(sim_hits, sim_misses)} "
                f"vs {(orig_hits, orig_misses)}"
            )
        return TransformReport(
            original_hits=orig_hits,
            original_misses=orig_misses,
            transformed_accesses=self.cache.hits + self.cache.misses,
            transformed_hits=self.cache.hits,
            transformed_misses=self.cache.misses,
            max_chain_length=self.max_chain,
        )


def transform_overhead(
    trace: Sequence[int] | np.ndarray,
    capacity: int,
    replacement: str = "lru",
    slack: int = 4,
    seed: int = 0,
) -> TransformReport:
    """Convenience wrapper: replay ``trace`` through the transformation."""
    sim = TransformedCacheSimulator(
        capacity, replacement=replacement, slack=slack, seed=seed
    )
    return sim.replay(trace)


def concurrent_front_insert(
    items: list[int],
    new_items: Sequence[int],
) -> tuple[list[int], int]:
    """Theorem 4's primitive: insert x items at the list front concurrently.

    Simulates the PRAM algorithm: each of the x processors obtains a
    unique rank via a binary prefix-sums tree (O(log x) steps), writes
    its item into the auxiliary array, links to its neighbours in O(1),
    and the mini-list is spliced onto the front in O(1).

    Returns the new list and the number of *parallel steps* consumed,
    which tests check is O(log x) + O(1).
    """
    x = len(new_items)
    if x == 0:
        return list(items), 0
    steps = 0
    # prefix-sums rank assignment: log2(x) rounds of pairwise combines
    width = 1
    ranks = list(range(x))  # the result the tree computes
    while width < x:
        width *= 2
        steps += 1  # one PRAM round per tree level
    aux = [None] * x
    for rank, item in zip(ranks, new_items):
        aux[rank] = item
    steps += 1  # concurrent writes into the auxiliary array
    steps += 1  # concurrent neighbour linking builds the mini-list
    steps += 1  # splice mini-list onto the master list front
    assert all(v is not None for v in aux), "rank assignment must be unique"
    return list(new_items) + list(items), steps
