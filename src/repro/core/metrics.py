"""Metrics for HBM simulations: makespan, response time, inconsistency.

Definitions (paper section 4, "Quantifying thread starvation"):

* The **response time** ``w`` of a page reference is the number of
  simulation ticks between the request and the serve. An HBM hit has
  ``w = 1``; a miss has ``w >= 2``.
* **Inconsistency** is the standard deviation of ``w`` over *all*
  references of all threads.
* **Makespan** is the tick count at which the last thread completes.

The collector keeps one exact response-time histogram per thread
(``dict[w] -> count``). This is the cheapest faithful scheme for the
serve hot path — one dict increment per served request — and it makes
every downstream statistic (mean, variance, max, percentiles, hit
counts) exact integer arithmetic rather than floating accumulation.
The global histogram is the merge of the per-thread ones, so a hit
count is simply ``histogram[1]`` (hits are exactly the ``w == 1``
references).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = [
    "HistogramStats",
    "histogram_stats",
    "histogram_percentile",
    "histogram_to_json",
    "histogram_from_json",
    "merge_histograms",
    "ThreadStats",
    "SimulationResult",
    "MetricsCollector",
]


@dataclass(frozen=True)
class HistogramStats:
    """Moments of an integer-keyed histogram."""

    count: int
    mean: float
    std: float
    min: int
    max: int

    @property
    def variance(self) -> float:
        return self.std * self.std


def histogram_stats(hist: Mapping[int, int]) -> HistogramStats:
    """Exact count/mean/population-std/min/max of a ``value -> count`` map.

    Iterates values in sorted order so the floating-point variance sum
    is independent of dict insertion order — engines that build the
    same histogram differently must report bit-identical statistics.
    """
    if not hist:
        return HistogramStats(0, 0.0, 0.0, 0, 0)
    items = sorted(hist.items())
    count = sum(c for _, c in items)
    total = sum(v * c for v, c in items)
    mean = total / count
    var = sum(c * (v - mean) ** 2 for v, c in items) / count
    return HistogramStats(count, mean, math.sqrt(max(var, 0.0)), items[0][0], items[-1][0])


def merge_histograms(hists: list[dict[int, int]]) -> dict[int, int]:
    """Merge ``value -> count`` maps by summing counts."""
    merged: dict[int, int] = {}
    for hist in hists:
        for value, count in hist.items():
            merged[value] = merged.get(value, 0) + count
    return merged


def histogram_percentile(hist: Mapping[int, int], fraction: float) -> int:
    """Smallest value v such that at least ``fraction`` of mass is <= v."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not hist:
        raise ValueError("empty histogram has no percentiles")
    total = sum(hist.values())
    threshold = fraction * total
    running = 0
    last = 0
    for value in sorted(hist):
        running += hist[value]
        last = value
        if running >= threshold:
            return value
    return last


def histogram_to_json(hist: Mapping[int, int]) -> dict[str, int]:
    """JSON-object form of a ``value -> count`` map (keys stringified).

    JSON objects only carry string keys, so persisting a response
    histogram (e.g. in a sweep result-cache entry) needs an explicit
    round-trip; :func:`histogram_from_json` is the inverse.
    """
    return {str(value): count for value, count in sorted(hist.items())}


def histogram_from_json(data: Mapping[str, int]) -> dict[int, int]:
    """Inverse of :func:`histogram_to_json`."""
    return {int(value): int(count) for value, count in data.items()}


@dataclass(frozen=True)
class ThreadStats:
    """Per-thread summary: the unit of the paper's fairness analysis."""

    thread: int
    requests: int
    hits: int
    completion_tick: int
    response: HistogramStats

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def starvation(self) -> int:
        """Worst response time the thread experienced (its longest stall)."""
        return self.response.max


@dataclass(frozen=True)
class SimulationResult:
    """Complete outcome of one simulator run.

    Attributes mirror the paper's reported quantities: ``makespan``,
    ``mean_response`` ("Response Time" columns of Table 1),
    ``inconsistency`` (std of response time, Table 1 / Figure 5), plus
    hit/miss/eviction accounting and per-thread breakdowns.
    """

    makespan: int
    ticks: int
    num_threads: int
    total_requests: int
    hits: int
    fetches: int
    evictions: int
    mean_response: float
    inconsistency: float
    max_response: int
    thread_stats: tuple[ThreadStats, ...]
    response_histogram: dict[int, int]
    remap_count: int = 0
    config: Any = None
    wall_time_s: float = 0.0
    response_log: tuple[np.ndarray, ...] | None = None
    timeline: np.ndarray | None = None
    #: quiescent-interval fast-forward stats: intervals bulk-drained and
    #: ticks they covered. Pure execution-strategy accounting — results
    #: are bit-identical with fast-forward on or off.
    ff_intervals: int = 0
    ff_elided_ticks: int = 0

    @property
    def ff_elided_fraction(self) -> float:
        """Fraction of the run's ticks covered by fast-forwarded intervals."""
        return self.ff_elided_ticks / self.ticks if self.ticks else 0.0

    @property
    def misses(self) -> int:
        return self.total_requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total_requests if self.total_requests else 0.0

    @property
    def completion_ticks(self) -> np.ndarray:
        return np.array([t.completion_tick for t in self.thread_stats])

    @property
    def starvation(self) -> int:
        """Worst response time across all threads."""
        return self.max_response

    def response_percentile(self, fraction: float) -> int:
        return histogram_percentile(self.response_histogram, fraction)

    def summary(self) -> str:
        """Human-readable one-screen digest."""
        lines = [
            f"makespan        : {self.makespan}",
            f"threads         : {self.num_threads}",
            f"requests        : {self.total_requests}"
            f" (hits {self.hits}, misses {self.misses},"
            f" hit rate {self.hit_rate:.3f})",
            f"fetches/evicts  : {self.fetches} / {self.evictions}",
            f"mean response   : {self.mean_response:.3f}",
            f"inconsistency   : {self.inconsistency:.3f}",
            f"max response    : {self.max_response}",
            f"remaps          : {self.remap_count}",
        ]
        if self.config is not None:
            lines.insert(0, f"config          : {self.config}")
        return "\n".join(lines)


class MetricsCollector:
    """Streaming metrics sink for the engine's serve hot path."""

    def __init__(self, num_threads: int, record_responses: bool = False) -> None:
        self.num_threads = num_threads
        self.histograms: list[dict[int, int]] = [{} for _ in range(num_threads)]
        self.completion_ticks = [0] * num_threads
        self.fetches = 0
        self.evictions = 0
        #: per-thread raw response logs when record_responses is on; the
        #: engine appends to these directly in its hot loop.
        self.response_logs: list[list[int]] | None = (
            [[] for _ in range(num_threads)] if record_responses else None
        )

    def record_serve(self, thread: int, response: int) -> None:
        """Record one served request; called once per page reference.

        The engine inlines this logic in its hot loop; the method exists
        for tests and alternative engines.
        """
        hist = self.histograms[thread]
        hist[response] = hist.get(response, 0) + 1
        if self.response_logs is not None:
            self.response_logs[thread].append(response)

    def record_completion(self, thread: int, tick: int) -> None:
        self.completion_ticks[thread] = tick

    def finalize(
        self,
        makespan: int,
        ticks: int,
        remap_count: int = 0,
        config: Any = None,
        wall_time_s: float = 0.0,
        timeline: np.ndarray | None = None,
        ff_intervals: int = 0,
        ff_elided_ticks: int = 0,
    ) -> SimulationResult:
        """Freeze the accumulated counters into a :class:`SimulationResult`."""
        thread_stats = []
        for i, hist in enumerate(self.histograms):
            stats = histogram_stats(hist)
            thread_stats.append(
                ThreadStats(
                    thread=i,
                    requests=stats.count,
                    hits=hist.get(1, 0),
                    completion_tick=self.completion_ticks[i],
                    response=stats,
                )
            )
        merged = merge_histograms(self.histograms)
        overall = histogram_stats(merged)
        logs = None
        if self.response_logs is not None:
            logs = tuple(
                np.asarray(log, dtype=np.int64) for log in self.response_logs
            )
        return SimulationResult(
            makespan=makespan,
            ticks=ticks,
            num_threads=self.num_threads,
            total_requests=overall.count,
            hits=merged.get(1, 0),
            fetches=self.fetches,
            evictions=self.evictions,
            mean_response=overall.mean,
            inconsistency=overall.std,
            max_response=overall.max,
            thread_stats=tuple(thread_stats),
            response_histogram=merged,
            remap_count=remap_count,
            config=config,
            wall_time_s=wall_time_s,
            response_log=logs,
            timeline=timeline,
            ff_intervals=ff_intervals,
            ff_elided_ticks=ff_elided_ticks,
        )
