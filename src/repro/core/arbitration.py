"""Far-channel arbitration policies (DRAM request-queue disciplines).

This is the paper's central object of study. Each core has at most one
outstanding DRAM request (it blocks until its current page is served),
so the request queue holds at most ``p`` entries and arbitration means:
*each tick, grant up to* ``q`` *of the waiting cores a far channel*.

Policies:

* :class:`FIFOArbitration` — First-Come-First-Served, the FCFS baseline
  used by real DRAM controllers (and provably Omega(p)-bad, Theorem 2).
* :class:`PriorityArbitration` — static strict priority order
  (O(1)-competitive for q=1, Theorem 1; O(q) for q channels, Theorem 3).
* :class:`DynamicPriorityArbitration` — the paper's proposal: re-draw a
  uniformly random priority permutation every ``T`` ticks.
* :class:`CyclePriorityArbitration` — deterministic variant:
  ``pi'(i) = (pi(i) + 1) mod p`` every ``T`` ticks (Definition 1).
* :class:`CycleReversePriorityArbitration` — cycles the other way
  (``pi'(i) = (pi(i) - 1) mod p``); listed in the paper's sweep.
* :class:`InterleavePriorityArbitration` — deterministic riffle of the
  priority order every ``T`` ticks; listed in the paper's sweep. The
  paper does not spell out the permutation; we use the perfect
  out-riffle (top half interleaved with bottom half), which moves
  every thread far from its previous rank without randomness.
* :class:`RandomArbitration` — grants channels to uniformly random
  waiting cores; the ``T -> 1`` limit of Dynamic Priority (section 4).
* :class:`RoundRobinArbitration` — cyclic scan over core ids, a common
  fair hardware arbiter, included as an extra baseline.
* :class:`FRFCFSArbitration` — first-ready FCFS [49], the discipline of
  real DRAM controllers (section 1.3): open-row ("ready") requests are
  served before older row-missing ones, using the bank/row geometry of
  :mod:`repro.core.dram`.

Priorities follow the paper's Definition 1: ``pi`` maps thread ids to
priority ranks, and *smaller rank = higher priority* (static Priority is
the identity, so thread 0 is served first).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque

import numpy as np

__all__ = [
    "ArbitrationPolicy",
    "DrainPlan",
    "FIFOArbitration",
    "PriorityArbitration",
    "DynamicPriorityArbitration",
    "CyclePriorityArbitration",
    "CycleReversePriorityArbitration",
    "InterleavePriorityArbitration",
    "RandomArbitration",
    "RoundRobinArbitration",
    "FRFCFSArbitration",
    "make_arbitration_policy",
    "register_arbitration_policy",
    "arbitration_policy_names",
    "riffle_permutation",
]


def riffle_permutation(ranks: np.ndarray) -> np.ndarray:
    """Perfect out-riffle of a rank array.

    Threads ranked ``0..ceil(p/2)-1`` go to even ranks ``0,2,4,...`` and
    the rest to odd ranks ``1,3,5,...``, i.e. the top and bottom halves
    of the priority order are interleaved.
    """
    p = len(ranks)
    half = (p + 1) // 2
    new_ranks = np.where(ranks < half, 2 * ranks, 2 * (ranks - half) + 1)
    return new_ranks.astype(ranks.dtype, copy=False)


class ArbitrationPolicy(ABC):
    """Interface shared by all far-channel arbitration policies."""

    name: str = ""

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads

    @abstractmethod
    def __len__(self) -> int:
        """Number of waiting requests."""

    @abstractmethod
    def enqueue(self, thread: int, page: int | None = None) -> None:
        """Add ``thread``'s (single) outstanding request to the queue.

        ``page`` is the requested page; only address-aware policies
        (FR-FCFS) use it, the rest ignore it.
        """

    @abstractmethod
    def select(self, limit: int) -> list[int]:
        """Remove and return up to ``limit`` threads to be granted channels."""

    def begin_tick(self, tick: int) -> None:
        """Step 1 of the simulation tick; remapping policies override."""

    def priorities(self) -> np.ndarray | None:
        """Current thread-id -> rank map, or ``None`` for rankless policies."""
        return None

    def drain_plan(self, limit: int, horizon: int) -> "DrainPlan | None":
        """A committable snapshot of future grant order, or ``None``.

        The engines' quiescent-interval fast-forward asks the policy to
        predict its own ``select`` sequence: the returned plan must pop
        and push exactly as the live policy would over ticks in
        ``[now, plan.horizon)``, assuming ``begin_tick`` has no
        observable effect in that range (the plan caps its ``horizon``
        at the next remap boundary to guarantee this). ``limit`` is the
        per-tick grant cap the engine will use.

        The default is ``None``: the engine falls back to per-tick
        execution, which is always correct. Stateless-per-tick policies
        (FIFO, the priority family) override this; custom policies may
        opt in the same way, and subclasses of an opted-in policy that
        add per-tick ``begin_tick`` effects must override it back to
        ``None``.
        """
        return None


class DrainPlan:
    """Interface of the object :meth:`ArbitrationPolicy.drain_plan` returns.

    A plan owns a *copy* of the policy's queue state. The engine pops
    and pushes against the copy while planning an interval; if the
    interval is committed, :meth:`commit` installs the final state back
    into the policy in one step, otherwise the plan is discarded and
    the policy is untouched.
    """

    #: first tick (exclusive bound) the plan's grant order may be wrong
    #: at — e.g. the policy's next remap boundary.
    horizon: int = 0

    #: True when the plan is a pure FIFO stream: grants come off the
    #: front in stored order and arrival batches append at the back.
    #: Enables the planner's vectorized steady-state segment
    #: (:func:`repro.core.drain.plan_drain`), which then reads the
    #: whole order via :meth:`snapshot` and installs the post-segment
    #: order via :meth:`replace`. Rank-driven plans must leave this
    #: False — their grant order is not a function of arrival order.
    supports_bulk: bool = False

    def __len__(self) -> int:  # pragma: no cover - interface default
        raise NotImplementedError

    def snapshot(self) -> "list[int] | None":
        """The full pending order front-to-back (bulk-capable plans only)."""
        return None

    def replace(self, threads: "list[int]") -> None:
        """Overwrite the pending order (bulk-capable plans only)."""
        raise NotImplementedError

    def pop(self, limit: int) -> list[int]:
        """What ``select(limit)`` would return next."""
        raise NotImplementedError

    def push(self, threads: list[int]) -> None:
        """Mirror of ``enqueue`` for a same-tick batch (core-id sorted)."""
        raise NotImplementedError

    def commit(self) -> None:
        """Install the planned end state into the live policy."""
        raise NotImplementedError


class _FifoDrainPlan(DrainPlan):
    """FIFO grants in queue order; arrival batches append."""

    __slots__ = ("_policy", "_queue", "horizon")

    supports_bulk = True

    def __init__(self, policy: "FIFOArbitration", horizon: int) -> None:
        self._policy = policy
        self._queue: deque[int] = deque(policy._queue)
        self.horizon = horizon

    def __len__(self) -> int:
        return len(self._queue)

    def pop(self, limit: int) -> list[int]:
        queue = self._queue
        n = min(limit, len(queue))
        return [queue.popleft() for _ in range(n)]

    def push(self, threads: list[int]) -> None:
        self._queue.extend(threads)

    def snapshot(self) -> list[int]:
        return list(self._queue)

    def replace(self, threads: list[int]) -> None:
        self._queue = deque(threads)

    def commit(self) -> None:
        self._policy._queue = self._queue


class _PriorityDrainPlan(DrainPlan):
    """Priority-family grants in (rank, thread) order.

    Built from the waiting set with a fresh heap, which is equivalent
    to the policy's lazily-cleaned heap: stale entries only ever get
    skipped. Valid while ranks do not change, which the horizon cap at
    the next remap boundary guarantees.
    """

    __slots__ = ("_policy", "_waiting", "_heap", "_ranks", "horizon")

    def __init__(self, policy: "PriorityArbitration", horizon: int) -> None:
        self._policy = policy
        self._ranks = policy._ranks
        self._waiting = set(policy._waiting)
        self._heap = [(int(self._ranks[t]), t) for t in self._waiting]
        heapq.heapify(self._heap)
        self.horizon = horizon

    def __len__(self) -> int:
        return len(self._waiting)

    def pop(self, limit: int) -> list[int]:
        granted: list[int] = []
        heap, waiting = self._heap, self._waiting
        while heap and len(granted) < limit:
            _, thread = heapq.heappop(heap)
            if thread in waiting:
                waiting.discard(thread)
                granted.append(thread)
        return granted

    def push(self, threads: list[int]) -> None:
        heap, waiting, ranks = self._heap, self._waiting, self._ranks
        for thread in threads:
            waiting.add(thread)
            heapq.heappush(heap, (int(ranks[thread]), thread))

    def commit(self) -> None:
        policy = self._policy
        policy._waiting = self._waiting
        heap = [(int(self._ranks[t]), t) for t in self._waiting]
        heapq.heapify(heap)
        policy._heap = heap


class FIFOArbitration(ArbitrationPolicy):
    """First-Come-First-Served: grant channels in arrival order.

    Ties within a tick are broken by thread id (the engine enqueues
    same-tick misses in id order).
    """

    name = "fifo"

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        self._queue: deque[int] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._queue.append(thread)

    def select(self, limit: int) -> list[int]:
        queue = self._queue
        n = min(limit, len(queue))
        return [queue.popleft() for _ in range(n)]

    def drain_plan(self, limit: int, horizon: int) -> _FifoDrainPlan:
        return _FifoDrainPlan(self, horizon)


class PriorityArbitration(ArbitrationPolicy):
    """Static strict-priority arbitration (identity permutation).

    Base class for every priority-family policy: holds the current rank
    array and a lazily rebuilt min-heap of waiting ``(rank, thread)``
    pairs. Subclasses permute ranks in :meth:`remap`.
    """

    name = "priority"

    def __init__(
        self,
        num_threads: int,
        remap_period: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(num_threads)
        self.remap_period = remap_period
        self._rng = rng if rng is not None else np.random.default_rng()
        self._ranks = np.arange(num_threads, dtype=np.int64)
        self._waiting: set[int] = set()
        self._heap: list[tuple[int, int]] = []
        self.remap_count = 0
        self._last_tick = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def priorities(self) -> np.ndarray:
        return self._ranks.copy()

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._waiting.add(thread)
        heapq.heappush(self._heap, (int(self._ranks[thread]), thread))

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        heap, waiting = self._heap, self._waiting
        while heap and len(granted) < limit:
            _, thread = heapq.heappop(heap)
            if thread in waiting:
                waiting.discard(thread)
                granted.append(thread)
        return granted

    def begin_tick(self, tick: int) -> None:
        self._last_tick = tick
        period = self.remap_period
        if period is not None and tick % period == 0:
            self.remap()

    def drain_plan(self, limit: int, horizon: int) -> _PriorityDrainPlan:
        period = self.remap_period
        if period is not None:
            # Ranks are stable only until the next remap boundary
            # strictly after the current tick (whose begin_tick,
            # including any remap, has already run).
            boundary = (self._last_tick // period + 1) * period
            if boundary < horizon:
                horizon = boundary
        return _PriorityDrainPlan(self, horizon)

    def remap(self) -> None:
        """Permute ranks and rebuild the waiting heap.

        Static Priority keeps the identity permutation; subclasses
        override :meth:`_permute`.
        """
        self._permute()
        self.remap_count += 1
        ranks = self._ranks
        self._heap = [(int(ranks[t]), t) for t in self._waiting]
        heapq.heapify(self._heap)

    def _permute(self) -> None:
        pass  # static priority: ranks never change


class DynamicPriorityArbitration(PriorityArbitration):
    """Dynamic Priority: a fresh uniformly random permutation every T ticks."""

    name = "dynamic_priority"

    def _permute(self) -> None:
        self._ranks = self._rng.permutation(self.num_threads).astype(np.int64)


class CyclePriorityArbitration(PriorityArbitration):
    """Cycle Priority (Definition 1): ``pi'(i) = (pi(i) + 1) mod p``."""

    name = "cycle_priority"

    def _permute(self) -> None:
        np.add(self._ranks, 1, out=self._ranks)
        np.mod(self._ranks, self.num_threads, out=self._ranks)


class CycleReversePriorityArbitration(PriorityArbitration):
    """Reverse cycling: ``pi'(i) = (pi(i) - 1) mod p`` (paper's sweep)."""

    name = "cycle_reverse_priority"

    def _permute(self) -> None:
        np.add(self._ranks, self.num_threads - 1, out=self._ranks)
        np.mod(self._ranks, self.num_threads, out=self._ranks)


class InterleavePriorityArbitration(PriorityArbitration):
    """Interleave scheme: perfect out-riffle of the rank order every T ticks."""

    name = "interleave_priority"

    def _permute(self) -> None:
        self._ranks = riffle_permutation(self._ranks)


class RandomArbitration(ArbitrationPolicy):
    """Grant channels to uniformly random waiting cores each tick.

    Section 4: the ``T -> 1`` limit of Dynamic Priority "approaches
    purely random selection, which has the same expected waiting time
    in the DRAM queue for each thread as FIFO".
    """

    name = "random"

    def __init__(
        self,
        num_threads: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(num_threads)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._threads: list[int] = []
        self._index: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._threads)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._index[thread] = len(self._threads)
        self._threads.append(thread)

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        threads, index = self._threads, self._index
        rng = self._rng
        for _ in range(min(limit, len(threads))):
            pos = int(rng.integers(len(threads)))
            thread = threads[pos]
            last = threads.pop()
            if last != thread:
                threads[pos] = last
                index[last] = pos
            del index[thread]
            granted.append(thread)
        return granted


class RoundRobinArbitration(ArbitrationPolicy):
    """Grant channels in cyclic thread-id order after the last grant."""

    name = "round_robin"

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        self._waiting = np.zeros(num_threads, dtype=bool)
        self._count = 0
        self._next = 0

    def __len__(self) -> int:
        return self._count

    def enqueue(self, thread: int, page: int | None = None) -> None:
        if not self._waiting[thread]:
            self._waiting[thread] = True
            self._count += 1

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        waiting = self._waiting
        p = self.num_threads
        pos = self._next
        scanned = 0
        target = min(limit, self._count)
        while len(granted) < target and scanned < p:
            if waiting[pos]:
                waiting[pos] = False
                granted.append(pos)
            pos = (pos + 1) % p
            scanned += 1
        self._count -= len(granted)
        self._next = pos
        return granted


class FRFCFSArbitration(ArbitrationPolicy):
    """First-Ready FCFS: the discipline of real DRAM controllers [49].

    Among waiting requests, those hitting a bank's open row ("ready")
    are granted first, oldest ready first; when nothing is ready, plain
    FCFS order applies. In the HBM+DRAM model every transfer still
    costs one tick — FR-FCFS matters here purely as a *reordering* of
    the queue, letting the row-locality heuristic real hardware uses be
    compared against FIFO and the priority schemes (section 1.3).
    """

    name = "fr_fcfs"

    def __init__(
        self,
        num_threads: int,
        geometry: "DramGeometry | None" = None,
    ) -> None:
        super().__init__(num_threads)
        from .dram import BankState, DramGeometry

        self.geometry = geometry if geometry is not None else DramGeometry()
        self._banks = BankState(self.geometry)
        self._queue: deque[tuple[int, int]] = deque()  # (thread, page)

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        if page is None:
            raise ValueError("fr_fcfs requires the requested page on enqueue")
        self._queue.append((thread, page))

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        queue, banks = self._queue, self._banks
        is_row_hit = banks.is_row_hit
        while queue and len(granted) < limit:
            chosen = None
            for idx, (_, page) in enumerate(queue):
                if is_row_hit(page):
                    chosen = idx
                    break
            if chosen is None:
                chosen = 0  # no ready request: oldest wins
            thread, page = queue[chosen]
            del queue[chosen]
            banks.access(page)
            granted.append(thread)
        return granted


_ARBITRATION_CLASSES: dict[str, type[ArbitrationPolicy]] = {
    cls.name: cls
    for cls in (
        FIFOArbitration,
        PriorityArbitration,
        DynamicPriorityArbitration,
        CyclePriorityArbitration,
        CycleReversePriorityArbitration,
        InterleavePriorityArbitration,
        RandomArbitration,
        RoundRobinArbitration,
        FRFCFSArbitration,
    )
}

#: policies whose constructor takes (num_threads, remap_period, rng)
_REMAPPING_NAMES = {
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
}


def register_arbitration_policy(cls: type[ArbitrationPolicy]) -> type[ArbitrationPolicy]:
    """Register a custom arbitration policy under ``cls.name``.

    Usable as a class decorator; the policy becomes constructible by
    name via :func:`make_arbitration_policy` and therefore usable in
    :class:`~repro.core.config.SimulationConfig`. The constructor must
    accept ``(num_threads)``; keyword parameters named ``remap_period``,
    ``rng``, or ``geometry`` are forwarded when present.
    """
    if not cls.name:
        raise ValueError("policy class must set a non-empty `name`")
    if cls.name in _ARBITRATION_CLASSES and _ARBITRATION_CLASSES[cls.name] is not cls:
        raise ValueError(f"arbitration policy {cls.name!r} already registered")
    _ARBITRATION_CLASSES[cls.name] = cls
    return cls


def arbitration_policy_names() -> tuple[str, ...]:
    """Registered arbitration policy names (built-in + custom)."""
    return tuple(sorted(_ARBITRATION_CLASSES))


def make_arbitration_policy(
    name: str,
    num_threads: int,
    remap_period: int | None = None,
    rng: np.random.Generator | None = None,
    dram_geometry=None,
) -> ArbitrationPolicy:
    """Instantiate an arbitration policy by registry name.

    ``remap_period`` applies to the remapping priority schemes; ``rng``
    to the stochastic ones; ``dram_geometry`` to FR-FCFS. Parameters a
    policy's constructor does not declare are omitted.
    """
    try:
        cls = _ARBITRATION_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown arbitration policy {name!r}; expected one of "
            f"{arbitration_policy_names()}"
        ) from None
    if name in _REMAPPING_NAMES and remap_period is None:
        raise ValueError(f"{name} requires remap_period (the paper's T)")
    import inspect

    params = inspect.signature(cls).parameters
    kwargs = {}
    if "remap_period" in params:
        kwargs["remap_period"] = remap_period
    if "rng" in params:
        kwargs["rng"] = rng
    if "geometry" in params:
        kwargs["geometry"] = dram_geometry
    return cls(num_threads, **kwargs)
