"""Far-channel arbitration policies (DRAM request-queue disciplines).

This is the paper's central object of study. Each core has at most one
outstanding DRAM request (it blocks until its current page is served),
so the request queue holds at most ``p`` entries and arbitration means:
*each tick, grant up to* ``q`` *of the waiting cores a far channel*.

Policies:

* :class:`FIFOArbitration` — First-Come-First-Served, the FCFS baseline
  used by real DRAM controllers (and provably Omega(p)-bad, Theorem 2).
* :class:`PriorityArbitration` — static strict priority order
  (O(1)-competitive for q=1, Theorem 1; O(q) for q channels, Theorem 3).
* :class:`DynamicPriorityArbitration` — the paper's proposal: re-draw a
  uniformly random priority permutation every ``T`` ticks.
* :class:`CyclePriorityArbitration` — deterministic variant:
  ``pi'(i) = (pi(i) + 1) mod p`` every ``T`` ticks (Definition 1).
* :class:`CycleReversePriorityArbitration` — cycles the other way
  (``pi'(i) = (pi(i) - 1) mod p``); listed in the paper's sweep.
* :class:`InterleavePriorityArbitration` — deterministic riffle of the
  priority order every ``T`` ticks; listed in the paper's sweep. The
  paper does not spell out the permutation; we use the perfect
  out-riffle (top half interleaved with bottom half), which moves
  every thread far from its previous rank without randomness.
* :class:`RandomArbitration` — grants channels to uniformly random
  waiting cores; the ``T -> 1`` limit of Dynamic Priority (section 4).
* :class:`RoundRobinArbitration` — cyclic scan over core ids, a common
  fair hardware arbiter, included as an extra baseline.
* :class:`FRFCFSArbitration` — first-ready FCFS [49], the discipline of
  real DRAM controllers (section 1.3): open-row ("ready") requests are
  served before older row-missing ones, using the bank/row geometry of
  :mod:`repro.core.dram`.
* :class:`BlacklistingArbitration` — the Blacklisting memory scheduler
  (Subramanian et al.): FCFS, except threads whose requests were served
  in long consecutive streaks are blacklisted and deprioritized until
  the periodic clearing interval; application-aware fairness without
  per-thread ranking hardware.
* :class:`DynamicPriorityQueueArbitration` — the Dynamic Priority Queue
  SDRAM arbiter (Shah et al.): requestors occupy priority slots; a
  served requestor drops to the lowest slot and every other requestor
  implicitly promotes, which yields an analytic worst-case per-request
  latency bound (see :func:`repro.theory.dpq_latency_bound`).

Priorities follow the paper's Definition 1: ``pi`` maps thread ids to
priority ranks, and *smaller rank = higher priority* (static Priority is
the identity, so thread 0 is served first).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque

import numpy as np

__all__ = [
    "ArbitrationPolicy",
    "DrainPlan",
    "FIFOArbitration",
    "PriorityArbitration",
    "DynamicPriorityArbitration",
    "CyclePriorityArbitration",
    "CycleReversePriorityArbitration",
    "InterleavePriorityArbitration",
    "RandomArbitration",
    "RoundRobinArbitration",
    "FRFCFSArbitration",
    "BlacklistingArbitration",
    "DynamicPriorityQueueArbitration",
    "make_arbitration_policy",
    "register_arbitration_policy",
    "arbitration_policy_names",
    "riffle_permutation",
]


def riffle_permutation(ranks: np.ndarray) -> np.ndarray:
    """Perfect out-riffle of a rank array.

    Threads ranked ``0..ceil(p/2)-1`` go to even ranks ``0,2,4,...`` and
    the rest to odd ranks ``1,3,5,...``, i.e. the top and bottom halves
    of the priority order are interleaved.
    """
    p = len(ranks)
    half = (p + 1) // 2
    new_ranks = np.where(ranks < half, 2 * ranks, 2 * (ranks - half) + 1)
    return new_ranks.astype(ranks.dtype, copy=False)


class ArbitrationPolicy(ABC):
    """Interface shared by all far-channel arbitration policies."""

    name: str = ""

    #: True for policies that cannot operate without the paper's T:
    #: :func:`make_arbitration_policy` rejects construction with
    #: ``remap_period=None`` up front instead of letting the policy fail
    #: deep in its constructor. Honored for custom registrations too —
    #: set it on any policy whose constructor requires ``remap_period``.
    requires_remap_period: bool = False

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads

    @abstractmethod
    def __len__(self) -> int:
        """Number of waiting requests."""

    @abstractmethod
    def enqueue(self, thread: int, page: int | None = None) -> None:
        """Add ``thread``'s (single) outstanding request to the queue.

        ``page`` is the requested page; only address-aware policies
        (FR-FCFS) use it, the rest ignore it.
        """

    @abstractmethod
    def select(self, limit: int) -> list[int]:
        """Remove and return up to ``limit`` threads to be granted channels."""

    def begin_tick(self, tick: int) -> None:
        """Step 1 of the simulation tick; remapping policies override."""

    def priorities(self) -> np.ndarray | None:
        """Current thread-id -> rank map, or ``None`` for rankless policies."""
        return None

    def drain_plan(self, limit: int, horizon: int) -> "DrainPlan | None":
        """A committable snapshot of future grant order, or ``None``.

        The engines' quiescent-interval fast-forward asks the policy to
        predict its own ``select`` sequence: the returned plan must pop
        and push exactly as the live policy would over ticks in
        ``[now, plan.horizon)``. ``begin_tick`` effects inside that
        range must either be absent, or replayed by the plan itself via
        its ``tick_hook`` (the priority family replays remaps this
        way). ``limit`` is the per-tick grant cap the engine will use.

        The default is ``None``: the engine falls back to per-tick
        execution, which is always correct. Every built-in policy
        except ``random`` overrides this; custom policies may opt in
        the same way, and subclasses of an opted-in policy that add
        per-tick ``begin_tick`` effects must override it back to
        ``None``.
        """
        return None

    def skip_idle_ticks(self, start: int, end: int) -> bool:
        """Apply ``begin_tick`` effects for elided ticks ``(start, end)``.

        The engines' guaranteed-*hit* fast-forward never touches the
        request queue (it stays empty for the whole interval), so the
        only policy state that can drift is whatever ``begin_tick``
        mutates. Implementations must either apply those effects for
        every tick strictly between ``start`` and ``end`` and return
        True, or mutate nothing and return False — a False return
        makes the engine fall back to per-tick execution.

        The base implementation returns True exactly when the policy
        inherits the no-op ``begin_tick`` (nothing to replay); policies
        that override ``begin_tick`` must override this too to stay
        hit-fast-forwardable.
        """
        return type(self).begin_tick is ArbitrationPolicy.begin_tick


class DrainPlan:
    """Interface of the object :meth:`ArbitrationPolicy.drain_plan` returns.

    A plan owns a *copy* of the policy's queue state. The engine pops
    and pushes against the copy while planning an interval; if the
    interval is committed, :meth:`commit` installs the final state back
    into the policy in one step, otherwise the plan is discarded and
    the policy is untouched.
    """

    #: first tick (exclusive bound) the plan's grant order may be wrong
    #: at — e.g. the policy's next remap boundary.
    horizon: int = 0

    #: True when the plan is a pure FIFO stream: grants come off the
    #: front in stored order and arrival batches append at the back.
    #: Enables the planner's vectorized steady-state segment
    #: (:func:`repro.core.drain.plan_drain`), which then reads the
    #: whole order via :meth:`snapshot` and installs the post-segment
    #: order via :meth:`replace`. Rank-driven plans must leave this
    #: False — their grant order is not a function of arrival order.
    supports_bulk: bool = False

    #: Optional per-tick callback ``tick_hook(tau)``: the planner calls
    #: it once per planned tick (mirroring where ``begin_tick`` runs in
    #: the live loop) so a plan can replay deterministic ``begin_tick``
    #: effects — e.g. remap-boundary rank permutations — inside the
    #: planned copy. ``None`` means the plan has nothing to replay.
    tick_hook = None

    #: True when :meth:`push` needs the requested page for each pushed
    #: thread (address-aware plans, e.g. FR-FCFS). The planner then
    #: passes per-thread page streams; engines that cannot supply pages
    #: must treat such a plan as unavailable.
    needs_pages: bool = False

    def __len__(self) -> int:  # pragma: no cover - interface default
        raise NotImplementedError

    def snapshot(self) -> "list[int] | None":
        """The full pending order front-to-back (bulk-capable plans only)."""
        return None

    def replace(self, threads: "list[int]") -> None:
        """Overwrite the pending order (bulk-capable plans only)."""
        raise NotImplementedError

    def pop(self, limit: int) -> list[int]:
        """What ``select(limit)`` would return next."""
        raise NotImplementedError

    def push(self, threads: list[int], pages: "list[int] | None" = None) -> None:
        """Mirror of ``enqueue`` for a same-tick batch (core-id sorted).

        ``pages`` carries the requested page per thread; only plans
        with :attr:`needs_pages` set consume it.
        """
        raise NotImplementedError

    def commit(self) -> None:
        """Install the planned end state into the live policy."""
        raise NotImplementedError


class _FifoDrainPlan(DrainPlan):
    """FIFO grants in queue order; arrival batches append."""

    __slots__ = ("_policy", "_queue", "horizon")

    supports_bulk = True

    def __init__(self, policy: "FIFOArbitration", horizon: int) -> None:
        self._policy = policy
        self._queue: deque[int] = deque(policy._queue)
        self.horizon = horizon

    def __len__(self) -> int:
        return len(self._queue)

    def pop(self, limit: int) -> list[int]:
        queue = self._queue
        n = min(limit, len(queue))
        return [queue.popleft() for _ in range(n)]

    def push(self, threads: list[int], pages: list[int] | None = None) -> None:
        self._queue.extend(threads)

    def snapshot(self) -> list[int]:
        return list(self._queue)

    def replace(self, threads: list[int]) -> None:
        self._queue = deque(threads)

    def commit(self) -> None:
        self._policy._queue = self._queue


class _PriorityDrainPlan(DrainPlan):
    """Priority-family grants in (rank, thread) order.

    Built from the waiting set with a fresh heap, which is equivalent
    to the policy's lazily-cleaned heap: stale entries only ever get
    skipped.

    With ``cross_period`` set, the plan spans remap boundaries: its
    ``tick_hook`` applies the policy's deterministic rank permutation
    (:meth:`PriorityArbitration._permute_ranks`, fed by a cloned rng so
    Dynamic Priority's random draws replay exactly) at every boundary
    tick inside the planned interval, so the grant order stays exact
    across arbitrarily many remaps. :meth:`commit` then installs the
    final ranks, advances ``remap_count`` in bulk, and syncs the live
    rng to the clone; discarding the plan rolls everything back for
    free because the policy was never touched. Without ``cross_period``
    the plan is only valid while ranks are fixed, and the caller must
    cap ``horizon`` at the next remap boundary (legacy behavior kept
    for subclasses that override ``_permute`` rather than
    ``_permute_ranks``).
    """

    __slots__ = (
        "_policy",
        "_waiting",
        "_heap",
        "_ranks",
        "_period",
        "_remaps",
        "_rng",
        "horizon",
    )

    def __init__(
        self,
        policy: "PriorityArbitration",
        horizon: int,
        cross_period: int | None = None,
    ) -> None:
        self._policy = policy
        self._ranks = policy._ranks
        self._waiting = set(policy._waiting)
        self._heap = [(int(self._ranks[t]), t) for t in self._waiting]
        heapq.heapify(self._heap)
        self.horizon = horizon
        self._period = cross_period
        self._remaps = 0
        self._rng: np.random.Generator | None = None
        if cross_period is not None:
            bit_gen = policy._rng.bit_generator
            clone = type(bit_gen)()
            clone.state = bit_gen.state
            self._rng = np.random.Generator(clone)
            self.tick_hook = self._tick_hook

    def __len__(self) -> int:
        return len(self._waiting)

    def _tick_hook(self, tau: int) -> None:
        if tau % self._period:
            return
        # Mirror of PriorityArbitration.remap() on the planned copy:
        # permute ranks (a pure function of the old ranks + cloned rng)
        # and rebuild the heap from the waiting set.
        self._ranks = self._policy._permute_ranks(self._ranks, self._rng)
        self._remaps += 1
        ranks = self._ranks
        self._heap = [(int(ranks[t]), t) for t in self._waiting]
        heapq.heapify(self._heap)

    def pop(self, limit: int) -> list[int]:
        granted: list[int] = []
        heap, waiting = self._heap, self._waiting
        while heap and len(granted) < limit:
            _, thread = heapq.heappop(heap)
            if thread in waiting:
                waiting.discard(thread)
                granted.append(thread)
        return granted

    def push(self, threads: list[int], pages: list[int] | None = None) -> None:
        heap, waiting, ranks = self._heap, self._waiting, self._ranks
        for thread in threads:
            waiting.add(thread)
            heapq.heappush(heap, (int(ranks[thread]), thread))

    def commit(self) -> None:
        policy = self._policy
        policy._waiting = self._waiting
        if self._remaps:
            policy._ranks = self._ranks
            policy.remap_count += self._remaps
            policy._rng.bit_generator.state = self._rng.bit_generator.state
        heap = [(int(self._ranks[t]), t) for t in self._waiting]
        heapq.heapify(heap)
        policy._heap = heap


class _RoundRobinDrainPlan(DrainPlan):
    """Round-robin grants from a copied waiting bitmap + scan pointer.

    The policy's per-tick transition is a deterministic recurrence in
    ``(waiting, next)``: the plan replays the exact cyclic scan on a
    copy, so the grant order is exact over any horizon.
    """

    __slots__ = ("_policy", "_waiting", "_count", "_next", "horizon")

    def __init__(self, policy: "RoundRobinArbitration", horizon: int) -> None:
        self._policy = policy
        self._waiting = policy._waiting.copy()
        self._count = policy._count
        self._next = policy._next
        self.horizon = horizon

    def __len__(self) -> int:
        return self._count

    def pop(self, limit: int) -> list[int]:
        granted: list[int] = []
        waiting = self._waiting
        p = self._policy.num_threads
        pos = self._next
        scanned = 0
        target = min(limit, self._count)
        while len(granted) < target and scanned < p:
            if waiting[pos]:
                waiting[pos] = False
                granted.append(pos)
            pos = (pos + 1) % p
            scanned += 1
        self._count -= len(granted)
        self._next = pos
        return granted

    def push(self, threads: list[int], pages: list[int] | None = None) -> None:
        waiting = self._waiting
        for thread in threads:
            if not waiting[thread]:
                waiting[thread] = True
                self._count += 1

    def commit(self) -> None:
        policy = self._policy
        policy._waiting = self._waiting
        policy._count = self._count
        policy._next = self._next


class _FrfcfsDrainPlan(DrainPlan):
    """FR-FCFS grants from a copied request queue + bank open-row state.

    Row-hit streaks are a deterministic function of the queued
    ``(thread, page)`` pairs and the open rows, both copied here; the
    plan needs the requested page of every future arrival, so it sets
    :attr:`needs_pages` and the planner feeds per-thread page streams
    through :meth:`push`.
    """

    __slots__ = ("_policy", "_queue", "_banks", "horizon")

    needs_pages = True

    def __init__(self, policy: "FRFCFSArbitration", horizon: int) -> None:
        from .dram import BankState

        self._policy = policy
        self._queue: deque[tuple[int, int]] = deque(policy._queue)
        banks = BankState(policy.geometry)
        banks._open_rows.update(policy._banks._open_rows)
        self._banks = banks
        self.horizon = horizon

    def __len__(self) -> int:
        return len(self._queue)

    def pop(self, limit: int) -> list[int]:
        granted: list[int] = []
        queue, banks = self._queue, self._banks
        is_row_hit = banks.is_row_hit
        while queue and len(granted) < limit:
            chosen = None
            for idx, (_, page) in enumerate(queue):
                if is_row_hit(page):
                    chosen = idx
                    break
            if chosen is None:
                chosen = 0  # no ready request: oldest wins
            thread, page = queue[chosen]
            del queue[chosen]
            banks.access(page)
            granted.append(thread)
        return granted

    def push(self, threads: list[int], pages: list[int] | None = None) -> None:
        if pages is None:
            raise ValueError("fr_fcfs drain plan requires pages on push")
        self._queue.extend(zip(threads, pages))

    def commit(self) -> None:
        policy = self._policy
        policy._queue = self._queue
        policy._banks = self._banks


def _blacklist_grant(
    queue: "deque[int]", blacklisted: np.ndarray, limit: int
) -> list[int]:
    """Pop up to ``limit`` threads: oldest non-blacklisted first, then
    oldest blacklisted. Shared by the live policy and its drain plan so
    the two grant orders cannot diverge.
    """
    if limit <= 0 or not queue:
        return []
    granted: list[int] = []
    skipped: deque[int] = deque()
    while queue and len(granted) < limit:
        thread = queue.popleft()
        if blacklisted[thread]:
            skipped.append(thread)
        else:
            granted.append(thread)
    while skipped and len(granted) < limit:
        granted.append(skipped.popleft())
    # un-granted blacklisted entries are older than everything left in
    # the queue: re-prepending them preserves FCFS order exactly
    while skipped:
        queue.appendleft(skipped.pop())
    return granted


def _blacklist_note_serves(
    granted: list[int],
    blacklisted: np.ndarray,
    streak_thread: int,
    streak: int,
    threshold: int,
) -> tuple[int, int]:
    """Advance the served-request streak counter over ``granted``.

    A thread whose streak reaches ``threshold`` is blacklisted and the
    streak restarts. Returns the new ``(streak_thread, streak)``.
    """
    for thread in granted:
        if thread == streak_thread:
            streak += 1
        else:
            streak_thread = thread
            streak = 1
        if streak >= threshold:
            blacklisted[thread] = True
            streak = 0
    return streak_thread, streak


class _BlacklistDrainPlan(DrainPlan):
    """Blacklisting grants from a copied queue + streak/blacklist state.

    The per-tick transition is a deterministic recurrence in
    ``(queue, blacklisted, streak)``; the plan replays it on copies, and
    its ``tick_hook`` mirrors :meth:`BlacklistingArbitration.begin_tick`
    by clearing the copied blacklist at every clearing boundary inside
    the planned interval.
    """

    __slots__ = (
        "_policy",
        "_queue",
        "_blacklisted",
        "_streak_thread",
        "_streak",
        "horizon",
        "tick_hook",
    )

    def __init__(self, policy: "BlacklistingArbitration", horizon: int) -> None:
        self._policy = policy
        self._queue: deque[int] = deque(policy._queue)
        self._blacklisted = policy._blacklisted.copy()
        self._streak_thread = policy._streak_thread
        self._streak = policy._streak
        self.horizon = horizon
        self.tick_hook = self._tick_hook

    def __len__(self) -> int:
        return len(self._queue)

    def _tick_hook(self, tau: int) -> None:
        if tau % self._policy.blacklist_clear_interval == 0:
            self._blacklisted[:] = False
            self._streak_thread = -1
            self._streak = 0

    def pop(self, limit: int) -> list[int]:
        granted = _blacklist_grant(self._queue, self._blacklisted, limit)
        self._streak_thread, self._streak = _blacklist_note_serves(
            granted,
            self._blacklisted,
            self._streak_thread,
            self._streak,
            self._policy.blacklist_threshold,
        )
        return granted

    def push(self, threads: list[int], pages: list[int] | None = None) -> None:
        self._queue.extend(threads)

    def commit(self) -> None:
        policy = self._policy
        policy._queue = self._queue
        policy._blacklisted = self._blacklisted
        policy._streak_thread = self._streak_thread
        policy._streak = self._streak


def _dpq_grant(order: list[int], waiting: np.ndarray, target: int) -> list[int]:
    """Grant up to ``target`` waiting threads in priority-slot order and
    drop the granted ones to the lowest slots (everyone else implicitly
    promotes). Shared by the live policy and its drain plan.
    """
    if target <= 0:
        return []
    granted: list[int] = []
    for thread in order:
        if waiting[thread]:
            waiting[thread] = False
            granted.append(thread)
            if len(granted) == target:
                break
    if granted:
        taken = set(granted)
        order[:] = [t for t in order if t not in taken] + granted
    return granted


class _DpqDrainPlan(DrainPlan):
    """DPQ grants from a copied slot order + waiting bitmap.

    Like round-robin, the per-tick transition is a deterministic
    recurrence in ``(order, waiting)``: the plan replays the exact slot
    scan and demotion on copies, so the grant order is exact over any
    horizon.
    """

    __slots__ = ("_policy", "_order", "_waiting", "_count", "horizon")

    def __init__(
        self, policy: "DynamicPriorityQueueArbitration", horizon: int
    ) -> None:
        self._policy = policy
        self._order = list(policy._order)
        self._waiting = policy._waiting.copy()
        self._count = policy._count
        self.horizon = horizon

    def __len__(self) -> int:
        return self._count

    def pop(self, limit: int) -> list[int]:
        granted = _dpq_grant(
            self._order, self._waiting, min(limit, self._count)
        )
        self._count -= len(granted)
        return granted

    def push(self, threads: list[int], pages: list[int] | None = None) -> None:
        waiting = self._waiting
        for thread in threads:
            if not waiting[thread]:
                waiting[thread] = True
                self._count += 1

    def commit(self) -> None:
        policy = self._policy
        policy._order = self._order
        policy._waiting = self._waiting
        policy._count = self._count


class FIFOArbitration(ArbitrationPolicy):
    """First-Come-First-Served: grant channels in arrival order.

    Ties within a tick are broken by thread id (the engine enqueues
    same-tick misses in id order).
    """

    name = "fifo"

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        self._queue: deque[int] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._queue.append(thread)

    def select(self, limit: int) -> list[int]:
        queue = self._queue
        n = min(limit, len(queue))
        return [queue.popleft() for _ in range(n)]

    def drain_plan(self, limit: int, horizon: int) -> _FifoDrainPlan:
        return _FifoDrainPlan(self, horizon)


class PriorityArbitration(ArbitrationPolicy):
    """Static strict-priority arbitration (identity permutation).

    Base class for every priority-family policy: holds the current rank
    array and a lazily rebuilt min-heap of waiting ``(rank, thread)``
    pairs. Subclasses permute ranks in :meth:`remap`.
    """

    name = "priority"

    def __init__(
        self,
        num_threads: int,
        remap_period: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(num_threads)
        self.remap_period = remap_period
        self._rng = rng if rng is not None else np.random.default_rng()
        self._ranks = np.arange(num_threads, dtype=np.int64)
        self._waiting: set[int] = set()
        self._heap: list[tuple[int, int]] = []
        self.remap_count = 0
        self._last_tick = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def priorities(self) -> np.ndarray:
        return self._ranks.copy()

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._waiting.add(thread)
        heapq.heappush(self._heap, (int(self._ranks[thread]), thread))

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        heap, waiting = self._heap, self._waiting
        while heap and len(granted) < limit:
            _, thread = heapq.heappop(heap)
            if thread in waiting:
                waiting.discard(thread)
                granted.append(thread)
        return granted

    def begin_tick(self, tick: int) -> None:
        self._last_tick = tick
        period = self.remap_period
        if period is not None and tick % period == 0:
            self.remap()

    def skip_idle_ticks(self, start: int, end: int) -> bool:
        # begin_tick with an empty queue only ever remaps; replay every
        # boundary strictly inside (start, end) in one sweep.
        period = self.remap_period
        if period is not None:
            first = (start // period + 1) * period
            for _tau in range(first, end, period):
                self.remap()
        self._last_tick = max(self._last_tick, end - 1)
        return True

    def drain_plan(self, limit: int, horizon: int) -> _PriorityDrainPlan:
        period = self.remap_period
        cls = type(self)
        legacy = (
            cls._permute is not PriorityArbitration._permute
            and cls._permute_ranks is PriorityArbitration._permute_ranks
        )
        if period is not None and legacy:
            # A subclass still overrides the in-place `_permute` hook
            # without providing the pure `_permute_ranks`: the plan
            # cannot replay its remaps, so ranks are only trusted until
            # the next boundary strictly after the current tick (whose
            # begin_tick, including any remap, has already run).
            boundary = (self._last_tick // period + 1) * period
            if boundary < horizon:
                horizon = boundary
            return _PriorityDrainPlan(self, horizon)
        return _PriorityDrainPlan(self, horizon, cross_period=period)

    def remap(self) -> None:
        """Permute ranks and rebuild the waiting heap.

        Static Priority keeps the identity permutation; subclasses
        override :meth:`_permute_ranks`.
        """
        self._permute()
        self.remap_count += 1
        ranks = self._ranks
        self._heap = [(int(ranks[t]), t) for t in self._waiting]
        heapq.heapify(self._heap)

    def _permute(self) -> None:
        self._ranks = self._permute_ranks(self._ranks, self._rng)

    def _permute_ranks(
        self, ranks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Pure remap step: next rank array from the current one.

        Must not mutate ``ranks`` and must draw randomness only from
        ``rng`` — this is what lets drain plans replay remaps on a
        copy (cross-remap planning). Static Priority is the identity;
        subclasses override this (not ``_permute``) to stay plannable
        across boundaries.
        """
        return ranks


class DynamicPriorityArbitration(PriorityArbitration):
    """Dynamic Priority: a fresh uniformly random permutation every T ticks."""

    name = "dynamic_priority"
    requires_remap_period = True

    def _permute_ranks(
        self, ranks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return rng.permutation(len(ranks)).astype(np.int64)


class CyclePriorityArbitration(PriorityArbitration):
    """Cycle Priority (Definition 1): ``pi'(i) = (pi(i) + 1) mod p``."""

    name = "cycle_priority"
    requires_remap_period = True

    def _permute_ranks(
        self, ranks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return (ranks + 1) % self.num_threads


class CycleReversePriorityArbitration(PriorityArbitration):
    """Reverse cycling: ``pi'(i) = (pi(i) - 1) mod p`` (paper's sweep)."""

    name = "cycle_reverse_priority"
    requires_remap_period = True

    def _permute_ranks(
        self, ranks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return (ranks + self.num_threads - 1) % self.num_threads


class InterleavePriorityArbitration(PriorityArbitration):
    """Interleave scheme: perfect out-riffle of the rank order every T ticks."""

    name = "interleave_priority"
    requires_remap_period = True

    def _permute_ranks(
        self, ranks: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return riffle_permutation(ranks)


class RandomArbitration(ArbitrationPolicy):
    """Grant channels to uniformly random waiting cores each tick.

    Section 4: the ``T -> 1`` limit of Dynamic Priority "approaches
    purely random selection, which has the same expected waiting time
    in the DRAM queue for each thread as FIFO".
    """

    name = "random"

    def __init__(
        self,
        num_threads: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(num_threads)
        if rng is None:
            # An unseeded generator here would make directly constructed
            # runs irreproducible (and poison result caches keyed on the
            # config); fall back to a fixed seed instead.
            from ..obs.log import get_logger, warn_once

            warn_once(
                get_logger("core"),
                "random-arbitration-default-rng",
                "RandomArbitration built without rng; using a "
                "deterministic seed-0 generator — pass rng= (or go "
                "through SimulationConfig.seed) to control the stream",
            )
            rng = np.random.default_rng(0)
        self._rng = rng
        self._threads: list[int] = []
        self._index: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._threads)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._index[thread] = len(self._threads)
        self._threads.append(thread)

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        threads, index = self._threads, self._index
        rng = self._rng
        for _ in range(min(limit, len(threads))):
            pos = int(rng.integers(len(threads)))
            thread = threads[pos]
            last = threads.pop()
            if last != thread:
                threads[pos] = last
                index[last] = pos
            del index[thread]
            granted.append(thread)
        return granted


class RoundRobinArbitration(ArbitrationPolicy):
    """Grant channels in cyclic thread-id order after the last grant."""

    name = "round_robin"

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        self._waiting = np.zeros(num_threads, dtype=bool)
        self._count = 0
        self._next = 0

    def __len__(self) -> int:
        return self._count

    def enqueue(self, thread: int, page: int | None = None) -> None:
        if not self._waiting[thread]:
            self._waiting[thread] = True
            self._count += 1

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        waiting = self._waiting
        p = self.num_threads
        pos = self._next
        scanned = 0
        target = min(limit, self._count)
        while len(granted) < target and scanned < p:
            if waiting[pos]:
                waiting[pos] = False
                granted.append(pos)
            pos = (pos + 1) % p
            scanned += 1
        self._count -= len(granted)
        self._next = pos
        return granted

    def drain_plan(self, limit: int, horizon: int) -> _RoundRobinDrainPlan:
        return _RoundRobinDrainPlan(self, horizon)


class FRFCFSArbitration(ArbitrationPolicy):
    """First-Ready FCFS: the discipline of real DRAM controllers [49].

    Among waiting requests, those hitting a bank's open row ("ready")
    are granted first, oldest ready first; when nothing is ready, plain
    FCFS order applies. In the HBM+DRAM model every transfer still
    costs one tick — FR-FCFS matters here purely as a *reordering* of
    the queue, letting the row-locality heuristic real hardware uses be
    compared against FIFO and the priority schemes (section 1.3).
    """

    name = "fr_fcfs"

    def __init__(
        self,
        num_threads: int,
        geometry: "DramGeometry | None" = None,
    ) -> None:
        super().__init__(num_threads)
        from .dram import BankState, DramGeometry

        self.geometry = geometry if geometry is not None else DramGeometry()
        self._banks = BankState(self.geometry)
        self._queue: deque[tuple[int, int]] = deque()  # (thread, page)

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        if page is None:
            raise ValueError("fr_fcfs requires the requested page on enqueue")
        self._queue.append((thread, page))

    def select(self, limit: int) -> list[int]:
        granted: list[int] = []
        queue, banks = self._queue, self._banks
        is_row_hit = banks.is_row_hit
        while queue and len(granted) < limit:
            chosen = None
            for idx, (_, page) in enumerate(queue):
                if is_row_hit(page):
                    chosen = idx
                    break
            if chosen is None:
                chosen = 0  # no ready request: oldest wins
            thread, page = queue[chosen]
            del queue[chosen]
            banks.access(page)
            granted.append(thread)
        return granted

    def drain_plan(self, limit: int, horizon: int) -> _FrfcfsDrainPlan:
        return _FrfcfsDrainPlan(self, horizon)


class BlacklistingArbitration(ArbitrationPolicy):
    """The Blacklisting memory scheduler (Subramanian et al.).

    FCFS, with one twist: a per-scheduler streak counter tracks how
    many *consecutive* grants went to the same thread. A thread whose
    streak reaches ``blacklist_threshold`` is blacklisted; blacklisted
    threads are deprioritized (served only when no non-blacklisted
    request is waiting, oldest first within each class) until the
    blacklist is cleared, which happens every
    ``blacklist_clear_interval`` ticks. The scheme approximates
    application-aware fairness without maintaining a per-thread
    ranking. Ties are broken FCFS within each class, and same-tick
    arrivals enqueue in core-id order like FIFO.
    """

    name = "blacklist"

    def __init__(
        self,
        num_threads: int,
        blacklist_threshold: int = 4,
        blacklist_clear_interval: int = 1000,
    ) -> None:
        super().__init__(num_threads)
        if blacklist_threshold < 1:
            raise ValueError(
                f"blacklist_threshold must be >= 1, got {blacklist_threshold}"
            )
        if blacklist_clear_interval < 1:
            raise ValueError(
                "blacklist_clear_interval must be >= 1, got "
                f"{blacklist_clear_interval}"
            )
        self.blacklist_threshold = blacklist_threshold
        self.blacklist_clear_interval = blacklist_clear_interval
        self._queue: deque[int] = deque()
        self._blacklisted = np.zeros(num_threads, dtype=bool)
        self._streak_thread = -1
        self._streak = 0

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, thread: int, page: int | None = None) -> None:
        self._queue.append(thread)

    def begin_tick(self, tick: int) -> None:
        if tick % self.blacklist_clear_interval == 0:
            self._clear()

    def _clear(self) -> None:
        self._blacklisted[:] = False
        self._streak_thread = -1
        self._streak = 0

    def select(self, limit: int) -> list[int]:
        granted = _blacklist_grant(self._queue, self._blacklisted, limit)
        self._streak_thread, self._streak = _blacklist_note_serves(
            granted,
            self._blacklisted,
            self._streak_thread,
            self._streak,
            self.blacklist_threshold,
        )
        return granted

    def skip_idle_ticks(self, start: int, end: int) -> bool:
        # begin_tick only ever clears state, and no serves happen in an
        # idle window, so one clear stands in for every boundary
        # strictly inside (start, end).
        interval = self.blacklist_clear_interval
        first = (start // interval + 1) * interval
        if first < end:
            self._clear()
        return True

    def drain_plan(self, limit: int, horizon: int) -> _BlacklistDrainPlan:
        return _BlacklistDrainPlan(self, horizon)


class DynamicPriorityQueueArbitration(ArbitrationPolicy):
    """The Dynamic Priority Queue SDRAM arbiter (Shah et al.).

    Every requestor occupies a priority slot (front = highest). Each
    selection grants the waiting requestors in slot order; a granted
    requestor drops to the lowest slots while every non-granted
    requestor implicitly promotes past it. Because a requestor that
    jumped behind a waiting thread cannot get ahead of it again before
    that thread is served, at most ``p - 1`` distinct requestors are
    ever served ahead of a waiting request — the analytic worst-case
    per-request latency bound checked by
    :func:`repro.theory.check_latency_bound`.
    """

    name = "dpq"

    def __init__(self, num_threads: int) -> None:
        super().__init__(num_threads)
        self._order = list(range(num_threads))
        self._waiting = np.zeros(num_threads, dtype=bool)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def enqueue(self, thread: int, page: int | None = None) -> None:
        if not self._waiting[thread]:
            self._waiting[thread] = True
            self._count += 1

    def priorities(self) -> np.ndarray:
        ranks = np.empty(self.num_threads, dtype=np.int64)
        ranks[self._order] = np.arange(self.num_threads, dtype=np.int64)
        return ranks

    def select(self, limit: int) -> list[int]:
        granted = _dpq_grant(
            self._order, self._waiting, min(limit, self._count)
        )
        self._count -= len(granted)
        return granted

    def drain_plan(self, limit: int, horizon: int) -> _DpqDrainPlan:
        return _DpqDrainPlan(self, horizon)


_ARBITRATION_CLASSES: dict[str, type[ArbitrationPolicy]] = {
    cls.name: cls
    for cls in (
        FIFOArbitration,
        PriorityArbitration,
        DynamicPriorityArbitration,
        CyclePriorityArbitration,
        CycleReversePriorityArbitration,
        InterleavePriorityArbitration,
        RandomArbitration,
        RoundRobinArbitration,
        FRFCFSArbitration,
        BlacklistingArbitration,
        DynamicPriorityQueueArbitration,
    )
}


def register_arbitration_policy(cls: type[ArbitrationPolicy]) -> type[ArbitrationPolicy]:
    """Register a custom arbitration policy under ``cls.name``.

    Usable as a class decorator; the policy becomes constructible by
    name via :func:`make_arbitration_policy` and therefore usable in
    :class:`~repro.core.config.SimulationConfig`. The constructor must
    accept ``(num_threads)``; keyword parameters named ``remap_period``,
    ``rng``, ``geometry``, ``blacklist_threshold``, or
    ``blacklist_clear_interval`` are forwarded when present. Set
    ``requires_remap_period = True`` on the class if construction is
    meaningless without the paper's T — the factory then rejects
    ``remap_period=None`` with a clear error instead of failing deep in
    your constructor.
    """
    if not cls.name:
        raise ValueError("policy class must set a non-empty `name`")
    if cls.name in _ARBITRATION_CLASSES and _ARBITRATION_CLASSES[cls.name] is not cls:
        raise ValueError(f"arbitration policy {cls.name!r} already registered")
    _ARBITRATION_CLASSES[cls.name] = cls
    return cls


def arbitration_policy_names() -> tuple[str, ...]:
    """Registered arbitration policy names (built-in + custom)."""
    return tuple(sorted(_ARBITRATION_CLASSES))


def make_arbitration_policy(
    name: str,
    num_threads: int,
    remap_period: int | None = None,
    rng: np.random.Generator | None = None,
    dram_geometry=None,
    blacklist_threshold: int | None = None,
    blacklist_clear_interval: int | None = None,
) -> ArbitrationPolicy:
    """Instantiate an arbitration policy by registry name.

    ``remap_period`` applies to the remapping priority schemes; ``rng``
    to the stochastic ones; ``dram_geometry`` to FR-FCFS; the blacklist
    knobs to the Blacklisting scheduler (``None`` keeps the policy's
    own defaults). Parameters a policy's constructor does not declare
    are omitted. Policies whose class sets ``requires_remap_period``
    (built-in or registered) are rejected up front when
    ``remap_period`` is missing.
    """
    try:
        cls = _ARBITRATION_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown arbitration policy {name!r}; expected one of "
            f"{arbitration_policy_names()}"
        ) from None
    if cls.requires_remap_period and remap_period is None:
        raise ValueError(f"{name} requires remap_period (the paper's T)")
    import inspect

    params = inspect.signature(cls).parameters
    kwargs = {}
    if "remap_period" in params:
        kwargs["remap_period"] = remap_period
    if "rng" in params:
        kwargs["rng"] = rng
    if "geometry" in params:
        kwargs["geometry"] = dram_geometry
    if "blacklist_threshold" in params and blacklist_threshold is not None:
        kwargs["blacklist_threshold"] = blacklist_threshold
    if (
        "blacklist_clear_interval" in params
        and blacklist_clear_interval is not None
    ):
        kwargs["blacklist_clear_interval"] = blacklist_clear_interval
    return cls(num_threads, **kwargs)
