"""Batched lockstep engine: many sweep jobs per NumPy step.

Sweeps (paper section 1.2's grids) run thousands of near-identical
simulations whose per-tick work is a handful of small numpy kernels —
at the core counts this reproduction simulates, dispatch overhead
dominates the actual array arithmetic. :class:`BatchSimulator` stacks B
independent jobs ("lanes") into one struct-of-arrays state and drives
them in lockstep: each global step performs the classify/serve phases
as single array operations over the concatenation of every stepping
lane's cores, so the fixed numpy dispatch cost is paid once per step
instead of once per lane per tick.

Layout. Lane b contributes ``p_b`` cores and a lane-local page universe
of size ``U_b``; cores and universes are concatenated, with
``core_start``/``uni_start`` prefix offsets mapping lane-local ids to
global rows. Per-core state (``pos``, ``current``, ``request_tick``,
the ready mask) and per-page state (``resident``, ``last_stamp``,
``owner``) are flat arrays over those concatenations; traces keep
*lane-local* page ids so any lane's state is a contiguous slice — which
is exactly what lets the quiescent-interval fast-forward
(:func:`repro.core.fastengine._attempt_fast_forward`) run **unchanged**
against numpy slice views of the batch state.

Divergence is handled by masking and per-lane retirement:

* lanes have independent virtual clocks (``t_lane``) — a lane that
  fast-forwards a quiescent interval jumps ahead and simply skips that
  global step, while the rest tick normally;
* per-lane policy objects, eviction heaps, and metric collectors keep
  every stateful branch (remap boundaries, RNG draws, LRU order)
  bit-identical to a solo run;
* a lane retires the moment its last core completes, running the fast
  engine's end-of-run aggregation on its own serve buffers.

Bit-identical discipline (same contract as :mod:`repro.core.drain`):
for every supported lane, :func:`simulate_batch` returns *exactly* the
:class:`~repro.core.metrics.SimulationResult` — metrics, response
logs, probe sample series, ff counters — that :func:`simulate` would
produce for that job alone. ``ENGINE_SEMANTICS_VERSION`` does not
change; ``tests/test_batchengine.py`` enforces this differentially
across every arbitration policy and trace family.

Eligibility is the fast path's scope plus passive probes: LRU +
``protect_pending``, no timeline, disjoint compact traces, and only
:class:`~repro.obs.TimelineProbe` observers (callback probes could see
lanes' samples interleaved mid-run, so they force the solo path).
Ineligible items fall back to :func:`simulate` mid-batch with no result
change.

Knobs: ``set_batch_limit`` / the ``REPRO_BATCH`` env var cap how many
lanes share one lockstep state (values < 2 disable batching); the CLI
exposes ``--batch/--no-batch``. Purely performance — both settings
produce identical records.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Any, Sequence

import numpy as np

from . import drain
from .arbitration import ArbitrationPolicy, make_arbitration_policy
from .config import SimulationConfig
from .dram import DramGeometry
from .engine import SimulationLimitError
from .fastengine import (
    ENGINE_CHOICES,
    FastSimulator,
    _attempt_fast_forward,
    _attest_arrays,
    _attestation_ok,
    _config_supported,
    _normalize_traces,
    _record_ff_phase,
    _record_run_metrics,
    default_engine,
    simulate,
)
from .metrics import MetricsCollector

__all__ = [
    "DEFAULT_BATCH_LANES",
    "BatchSimulator",
    "batch_limit",
    "batch_supported",
    "set_batch_limit",
    "simulate_batch",
]

#: default lane cap per lockstep state. Wide enough to amortize numpy
#: dispatch across a typical sweep chunk; small enough that one slow
#: lane does not hold dozens of finished lanes' memory live.
DEFAULT_BATCH_LANES = 16

_batch_limit_override: int | None = None


def batch_limit() -> int:
    """How many lanes :func:`simulate_batch` stacks per lockstep state.

    Resolution order: :func:`set_batch_limit` override, then the
    ``REPRO_BATCH`` environment variable (an integer lane cap, or
    ``on``/``off``), then :data:`DEFAULT_BATCH_LANES`. Values below 2
    disable batching entirely. Purely a performance knob — batched and
    solo execution produce bit-identical results.
    """
    if _batch_limit_override is not None:
        return _batch_limit_override
    env = os.environ.get("REPRO_BATCH")
    if env is not None:
        text = env.strip().lower()
        if text in ("off", "false", "no", "0"):
            return 1
        if text in ("on", "true", "yes", ""):
            return DEFAULT_BATCH_LANES
        try:
            value = int(text)
        except ValueError:
            value = -1
        if value < 0:
            from ..obs.log import get_logger, warn_once

            warn_once(
                get_logger("core"),
                "batch-env",
                "ignoring invalid REPRO_BATCH=%r (want an integer lane "
                "cap >= 0, or on/off); using default %d",
                env,
                DEFAULT_BATCH_LANES,
            )
            return DEFAULT_BATCH_LANES
        return value
    return DEFAULT_BATCH_LANES


def set_batch_limit(n: int | None) -> int | None:
    """Force the batch lane cap; returns the previous override.

    ``None`` removes the override, restoring env-var/default
    resolution; ``0`` or ``1`` disables batching. Used by the CLI's
    ``--batch/--no-batch`` flags and by the differential tests to pin
    one dispatch path.
    """
    global _batch_limit_override
    if n is not None and n < 0:
        raise ValueError(f"batch limit must be >= 0, got {n}")
    previous = _batch_limit_override
    _batch_limit_override = None if n is None else int(n)
    return previous


def _probes_passive(probes: Sequence[Any]) -> bool:
    """Only pure-collector probes may observe a batch lane natively."""
    if not probes:
        return True
    from ..obs.probe import TimelineProbe

    return all(isinstance(probe, TimelineProbe) for probe in probes)


def batch_supported(config: SimulationConfig, attestation: Any = None) -> bool:
    """Can a job with this config run as a native batch lane?

    Config-level eligibility is the fast path's scope (LRU,
    ``protect_pending``, no timeline) plus passive probes. When an
    ``attestation`` is given the trace-layout requirement (disjoint
    compact page ids) is checked too; without one the caller defers that
    check to dispatch time, where :func:`simulate_batch` falls back per
    item.
    """
    if not _config_supported(config):
        return False
    if not _probes_passive(config.probes):
        return False
    return attestation is None or _attestation_ok(attestation)


class BatchSimulator:
    """Locksteps B supported jobs over shared struct-of-arrays state.

    Construct with ``[(traces, config), ...]`` lane tuples (optionally
    parallel ``attestations``); every lane must be batch-eligible or
    ``ValueError`` is raised — use :func:`simulate_batch` to dispatch
    with automatic fallback. :meth:`run` returns one entry per lane, in
    order: a :class:`~repro.core.metrics.SimulationResult`, or the
    exception (e.g. :class:`~repro.core.engine.SimulationLimitError`)
    that lane's solo run would have raised.
    """

    def __init__(
        self,
        lanes: Sequence[tuple[Sequence[Any], SimulationConfig]],
        attestations: Sequence[Any] | None = None,
    ) -> None:
        if not lanes:
            raise ValueError("batch must contain at least one lane")
        self.lanes: list[tuple[list[np.ndarray], SimulationConfig]] = []
        for k, (traces, config) in enumerate(lanes):
            arrays = [
                np.ascontiguousarray(np.asarray(t, dtype=np.int64)) for t in traces
            ]
            attestation = attestations[k] if attestations is not None else None
            if attestation is None:
                attestation = _attest_arrays(arrays)
            if not arrays or not batch_supported(config, attestation):
                raise ValueError(
                    f"lane {k} is outside the batch path (needs LRU, "
                    "protect_pending, disjoint compact traces, no timeline, "
                    "passive probes); use simulate_batch() to auto-fallback"
                )
            self.lanes.append((arrays, config))

    def run(self) -> list[Any]:  # noqa: C901 - one hot loop by design
        start = time.perf_counter()
        B = len(self.lanes)
        results: list[Any] = [None] * B

        # ---- static layout: cores and page universes, concatenated ----
        p = np.array([len(arrays) for arrays, _ in self.lanes], dtype=np.int64)
        core_start = np.zeros(B, dtype=np.int64)
        np.cumsum(p[:-1], out=core_start[1:])
        P = int(p.sum())
        lane_of_core = np.repeat(np.arange(B, dtype=np.int64), p)

        lengths = np.concatenate(
            [
                np.array([len(t) for t in arrays], dtype=np.int64)
                for arrays, _ in self.lanes
            ]
        )
        offsets = np.zeros(P, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        chunks = [t for arrays, _ in self.lanes for t in arrays if len(t)]
        big_trace = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )

        universes = np.empty(B, dtype=np.int64)
        for b, (arrays, _) in enumerate(self.lanes):
            non_empty = [t for t in arrays if len(t)]
            universes[b] = (
                max(int(t.max()) for t in non_empty) + 1 if non_empty else 1
            )
        uni_start = np.zeros(B, dtype=np.int64)
        np.cumsum(universes[:-1], out=uni_start[1:])
        resident = np.zeros(int(universes.sum()), dtype=bool)
        last_stamp = np.zeros(len(resident), dtype=np.int64)
        owner = np.zeros(len(resident), dtype=np.int64)  # lane-local core ids
        for b, (arrays, _) in enumerate(self.lanes):
            u0 = int(uni_start[b])
            for i, t in enumerate(arrays):
                if len(t):
                    owner[u0 + np.unique(t)] = i
        uni_start_core = uni_start[lane_of_core]

        # ---- per-core dynamic state (lane-local page ids) -------------
        pos = np.zeros(P, dtype=np.int64)
        current = np.full(P, -1, dtype=np.int64)
        request_tick = np.zeros(P, dtype=np.int64)
        ready_mask = np.zeros(P, dtype=bool)

        # ---- per-lane counters, clocks, and stateful objects ----------
        # Per-lane scalars live in plain Python lists: the hot loop reads
        # them once per lane per tick, and a list index is several times
        # cheaper than extracting a numpy scalar. Only ``t_lane`` keeps a
        # numpy mirror (the serve phase gathers it per hit).
        p_l = p.tolist()
        cs_l = core_start.tolist()
        us_l = uni_start.tolist()
        uni_l = universes.tolist()
        q_l = [cfg.channels for _, cfg in self.lanes]
        cap_l = [cfg.hbm_slots for _, cfg in self.lanes]
        ss_l = [p_l[b] + q_l[b] + 1 for b in range(B)]
        stride_core = np.asarray(ss_l, dtype=np.int64)[lane_of_core]
        trace_len_l = [0] * B  # per-lane total trace length, for FF views
        t_lane = np.zeros(B, dtype=np.int64)
        t_l = [0] * B
        queue_l = [0] * B
        fetch_l = [0] * B
        evic_l = [0] * B
        rescnt_l = [0] * B
        done_l = [0] * B
        mksp_l = [0] * B
        max_ticks = [cfg.max_ticks for _, cfg in self.lanes]
        any_max_ticks = any(mt is not None for mt in max_ticks)

        arbs: list[Any] = []
        begin_live: list[bool] = []
        metrics: list[MetricsCollector] = []
        heaps: list[list[tuple[int, int]]] = []
        # One global serve log shared by every lane: per step the serve
        # phase appends (lane ids, lane-local threads, responses) once,
        # and histogram/response aggregation is deferred to the epilogue
        # — the hot loop never slices or copies per-lane buffers.
        log_lane: list[np.ndarray] = []
        log_thr: list[np.ndarray] = []
        log_w: list[np.ndarray] = []
        probes_by_lane: list[tuple[Any, ...]] = []
        probe_strides: list[int] = []
        ff_enabled = drain.fast_forward_enabled()
        ff_eligible = [ff_enabled] * B
        ff_states = [drain.FFState() for _ in range(B)]
        ff_next_try = [0] * B
        ff_backoff = [drain.BACKOFF_MIN] * B
        ff_horizon: list[int] = []
        ff_intervals = [0] * B
        ff_elided = [0] * B

        for b, (arrays, cfg) in enumerate(self.lanes):
            p_b = p_l[b]
            rng = np.random.default_rng(cfg.seed)
            arb = make_arbitration_policy(
                cfg.arbitration,
                p_b,
                remap_period=cfg.remap_period,
                rng=rng,
                dram_geometry=DramGeometry(cfg.dram_banks, cfg.dram_row_pages),
                blacklist_threshold=cfg.blacklist_threshold,
                blacklist_clear_interval=cfg.blacklist_clear_interval,
            )
            arbs.append(arb)
            begin_live.append(
                type(arb).begin_tick is not ArbitrationPolicy.begin_tick
            )
            metrics.append(
                MetricsCollector(p_b, record_responses=cfg.record_responses)
            )
            heaps.append([])
            probes_by_lane.append(cfg.probes)
            probe_strides.append(cfg.probe_stride)
            ff_horizon.append(
                (cfg.max_ticks + 1)
                if cfg.max_ticks is not None
                else drain.UNBOUNDED
            )
            for probe in cfg.probes:
                probe.on_run_start(p_b, cfg)
            g0 = cs_l[b]
            alive = lengths[g0 : g0 + p_b] > 0
            for i in np.flatnonzero(~alive):
                metrics[b].record_completion(int(i), 0)
            done_l[b] = int((~alive).sum())
            trace_len_l[b] = int(lengths[g0 : g0 + p_b].sum())
            gi = g0 + np.flatnonzero(alive)
            current[gi] = big_trace[offsets[gi]]
            ready_mask[gi] = True

        probe_lanes = [b for b in range(B) if probes_by_lane[b]]
        if probe_lanes:
            from ..obs.probe import ProbeSample

        active_lanes = list(range(B))
        active_arr = np.arange(B, dtype=np.int64)
        active_dirty = False
        # (ticks, makespan, wall_time) per retired lane; aggregation and
        # finalize run once, after the loop
        retire_info: list[tuple[int, int, float] | None] = [None] * B

        def evict_one(b: int) -> bool:
            """Pop lane b's true LRU unprotected page; False if all protected."""
            heap = heaps[b]
            u0 = us_l[b]
            g0 = cs_l[b]
            stash: list[tuple[int, int]] = []
            victim_found = False
            while heap:
                s, page = heapq.heappop(heap)
                gp = u0 + page
                if not resident[gp]:
                    continue  # entry for an evicted (possibly refetched) page
                true_stamp = int(last_stamp[gp])
                if s != true_stamp:
                    heapq.heappush(heap, (true_stamp, page))
                    continue
                if current[g0 + int(owner[gp])] == page:
                    stash.append((s, page))
                    continue
                resident[gp] = False
                rescnt_l[b] -= 1
                evic_l[b] += 1
                victim_found = True
                break
            for entry in stash:
                heapq.heappush(heap, entry)
            return victim_found

        def _retire(b: int) -> None:
            """Lane b completed: snapshot counters, defer aggregation."""
            nonlocal active_dirty
            active_lanes.remove(b)
            active_dirty = True
            g0 = cs_l[b]
            ready_mask[g0 : g0 + p_l[b]] = False
            retire_info[b] = (t_l[b], mksp_l[b], time.perf_counter() - start)
            if probes_by_lane[b]:
                probe_lanes.remove(b)

        def _abort(b: int, exc: Exception) -> None:
            """Lane b failed (e.g. max_ticks): record the solo-path error."""
            nonlocal active_dirty
            active_lanes.remove(b)
            active_dirty = True
            g0 = cs_l[b]
            ready_mask[g0 : g0 + p_l[b]] = False
            results[b] = exc
            if probes_by_lane[b]:
                probe_lanes.remove(b)

        ff_wall = 0.0

        def _try_fast_forward(b: int) -> bool:
            """One FF attempt for lane b; True when the lane jumped.

            Accumulates attempt/apply wall time for the campaign phase
            profiler, then runs :func:`_ff_attempt`.
            """
            nonlocal ff_wall
            _ff_t0 = time.perf_counter()
            try:
                return _ff_attempt(b)
            finally:
                ff_wall += time.perf_counter() - _ff_t0

        def _ff_attempt(b: int) -> bool:
            """Runs :func:`fastengine._attempt_fast_forward` verbatim
            against this lane's slice views — basic slices share memory,
            so the interval's bulk apply writes straight into the batch
            state.
            """
            t = t_l[b]
            arb = arbs[b]
            g0 = cs_l[b]
            g1 = g0 + p_l[b]
            u0 = us_l[b]
            u1 = u0 + uni_l[b]
            toff = int(offsets[g0])
            ready = np.flatnonzero(ready_mask[g0:g1]).astype(np.int64)
            # FF appends this lane's serves to throwaway buffers; only a
            # committed jump moves them into the shared log (tagged with
            # the lane id), preserving the lane's chronological order.
            tmp_t: list[np.ndarray] = []
            tmp_w: list[np.ndarray] = []
            ff = _attempt_fast_forward(
                ff_states[b], arb, t, p_l[b], q_l[b], cap_l[b],
                big_trace[toff : toff + trace_len_l[b]],
                offsets[g0:g1] - toff, lengths[g0:g1],
                pos[g0:g1], current[g0:g1], request_tick[g0:g1],
                ready, resident[u0:u1], rescnt_l[b],
                last_stamp[u0:u1], heaps[b], ss_l[b],
                queue_l[b], fetch_l[b], evic_l[b],
                done_l[b], mksp_l[b], metrics[b],
                tmp_t, tmp_w,
                probes_by_lane[b], probe_strides[b],
                ff_horizon[b],
            )
            if ff is None:
                if not ff_states[b].eligible:
                    ff_eligible[b] = False
                else:
                    ff_next_try[b] = t + ff_backoff[b]
                    ff_backoff[b] = min(ff_backoff[b] * 2, drain.BACKOFF_MAX)
                return False
            ff_backoff[b] = drain.BACKOFF_MIN
            ff_intervals[b] += 1
            t_new, new_ready, qn, fn, en, dn, mn, rn = ff
            t_new = int(t_new)
            ff_elided[b] += t_new - t
            queue_l[b] = int(qn)
            fetch_l[b] = int(fn)
            evic_l[b] = int(en)
            done_l[b] = int(dn)
            mksp_l[b] = int(mn)
            rescnt_l[b] = int(rn)
            t_l[b] = t_new
            t_lane[b] = t_new
            for thr in tmp_t:
                log_lane.append(np.full(len(thr), b, dtype=np.int64))
            log_thr.extend(tmp_t)
            log_w.extend(tmp_w)
            ready_mask[g0:g1] = False
            ready_mask[g0 + new_ready] = True
            mt = max_ticks[b]
            if mt is not None and t_new > mt:
                _abort(b, SimulationLimitError(
                    f"simulation exceeded max_ticks={mt} "
                    f"({done_l[b]}/{p_l[b]} threads complete)"
                ))
            elif done_l[b] == p_l[b]:
                _retire(b)
            return True

        for b in range(B):
            if done_l[b] == p_l[b]:
                _retire(b)

        prologue_live = ff_enabled or any(begin_live)
        arange_b1 = np.arange(B + 1, dtype=np.int64)
        arange_p = np.arange(P, dtype=np.int64)

        # ---- the lockstep loop ---------------------------------------
        # Each iteration advances every active lane by one tick of *its*
        # virtual clock — except lanes that fast-forward, which jump and
        # sit the step out. Phase order within the tick is exactly the
        # fast engine's: classify -> enqueue misses -> evict/cap fetch
        # -> serve hits -> grant fetches -> sample probes.
        while active_lanes:
            jumped: list[int] = []
            if prologue_live:
                for b in tuple(active_lanes):
                    if begin_live[b]:
                        arbs[b].begin_tick(t_l[b])
                    if (
                        ff_eligible[b]
                        and t_l[b] >= ff_next_try[b]
                        and _try_fast_forward(b)
                    ):
                        jumped.append(b)

            # classify: one gather over every stepping lane's ready cores
            if jumped:
                step_list = [b for b in active_lanes if b not in jumped]
                if not step_list:
                    continue
                step_mask = np.zeros(B, dtype=bool)
                step_mask[step_list] = True
                act = np.flatnonzero(ready_mask & step_mask[lane_of_core])
                sl_arr = np.asarray(step_list, dtype=np.int64)
            else:
                step_list = active_lanes
                if active_dirty:
                    active_arr = np.asarray(active_lanes, dtype=np.int64)
                    active_dirty = False
                sl_arr = active_arr
                act = np.flatnonzero(ready_mask)
            if len(act):
                pages_act = current[act]
                flags = resident[pages_act + uni_start_core[act]]
                hit_g = act[flags]
                if len(hit_g) != len(act):
                    miss_g = act[~flags]
                    miss_pages = pages_act[~flags]
                    for g, pg, b in zip(
                        miss_g.tolist(),
                        miss_pages.tolist(),
                        lane_of_core[miss_g].tolist(),
                    ):
                        arbs[b].enqueue(g - cs_l[b], pg)
                        queue_l[b] += 1
            else:
                hit_g = act

            # evict to make room, capping each lane's fetch grant
            will_fetch = [0] * B
            for b in step_list:
                ql = queue_l[b]
                if not ql:
                    continue
                qb = q_l[b]
                wf = ql if ql < qb else qb
                deficit = wf - (cap_l[b] - rescnt_l[b])
                while deficit > 0 and evict_one(b):
                    deficit -= 1
                if deficit > 0:
                    wf -= deficit
                will_fetch[b] = wf

            # serve hits: stamps/responses for all lanes in one pass
            maybe_done: list[int] = []
            if len(hit_g):
                lane_h = lane_of_core[hit_g]
                t_h = t_lane[lane_h]
                w = t_h - request_tick[hit_g] + 1
                bnds = np.searchsorted(lane_h, arange_b1)
                serve_idx = arange_p[: len(hit_g)] - np.repeat(
                    bnds[:-1], np.diff(bnds)
                )
                last_stamp[current[hit_g] + uni_start_core[hit_g]] = (
                    t_h * stride_core[hit_g] + serve_idx
                )
                log_lane.append(lane_h)
                log_thr.append(hit_g - core_start[lane_h])
                log_w.append(w)
                pos[hit_g] += 1
                done_m = pos[hit_g] >= lengths[hit_g]
                if done_m.any():
                    finished = hit_g[done_m]
                    for g, b in zip(
                        finished.tolist(), lane_of_core[finished].tolist()
                    ):
                        metrics[b].record_completion(g - cs_l[b], t_l[b] + 1)
                        done_l[b] += 1
                        mksp_l[b] = t_l[b] + 1
                        if done_l[b] == p_l[b]:
                            maybe_done.append(b)
                    current[finished] = -1
                    cont = hit_g[~done_m]
                else:
                    cont = hit_g
                current[cont] = big_trace[offsets[cont] + pos[cont]]
                request_tick[cont] = t_lane[lane_of_core[cont]] + 1
            else:
                cont = hit_g

            ready_mask[act] = False
            ready_mask[cont] = True

            # grant fetches per lane (policy order, insert stamps)
            gc = [0] * B if probe_lanes else None
            for b in step_list:
                wf = will_fetch[b]
                if not wf:
                    continue
                granted = arbs[b].select(wf)
                g0 = cs_l[b]
                u0 = us_l[b]
                base = t_l[b] * ss_l[b] + p_l[b]
                heap = heaps[b]
                for gdx, i in enumerate(granted):
                    page = int(current[g0 + i])
                    gp = u0 + page
                    resident[gp] = True
                    stamp = base + gdx
                    last_stamp[gp] = stamp
                    heapq.heappush(heap, (stamp, page))
                    ready_mask[g0 + i] = True
                n = len(granted)
                rescnt_l[b] += n
                fetch_l[b] += n
                queue_l[b] -= n
                if gc is not None:
                    gc[b] = n

            if probe_lanes:
                for b in probe_lanes:
                    if b in jumped or t_l[b] % probe_strides[b]:
                        continue
                    g0 = cs_l[b]
                    g1 = g0 + p_l[b]
                    t = t_l[b]
                    lane_ready = ready_mask[g0:g1]
                    blocked = (current[g0:g1] >= 0) & ~lane_ready
                    stall_age = np.where(
                        blocked, t + 1 - request_tick[g0:g1], 0
                    ).astype(np.int64)
                    sample = ProbeSample(
                        tick=t,
                        hbm_occupancy=rescnt_l[b],
                        queue_depth=queue_l[b],
                        ready_threads=int(lane_ready.sum()),
                        channels_busy=gc[b] if will_fetch[b] else 0,
                        channels_total=q_l[b],
                        fetches=fetch_l[b],
                        evictions=evic_l[b],
                        blocked=blocked,
                        stall_age=stall_age,
                    )
                    for probe in probes_by_lane[b]:
                        probe.on_sample(sample)

            t_lane[sl_arr] += 1
            for b in step_list:
                t_l[b] += 1
            if any_max_ticks:
                over = [
                    b
                    for b in step_list
                    if max_ticks[b] is not None and t_l[b] > max_ticks[b]
                ]
                for b in over:
                    _abort(b, SimulationLimitError(
                        f"simulation exceeded max_ticks={max_ticks[b]} "
                        f"({done_l[b]}/{p_l[b]} threads complete)"
                    ))
            for b in maybe_done:
                if results[b] is None and retire_info[b] is None:
                    _retire(b)

        # ---- deferred aggregation: histograms, logs, finalize ---------
        # One stable sort by lane splits the shared serve log back into
        # per-lane chronological slices; each retired lane then runs the
        # fast engine's end-of-run aggregation on its slice.
        if log_thr:
            all_lane = np.concatenate(log_lane)
            all_thr = np.concatenate(log_thr)
            all_w = np.concatenate(log_w)
            order = np.argsort(all_lane, kind="stable")
            lane_bnds = np.searchsorted(all_lane[order], arange_b1)
        for b in range(B):
            info = retire_info[b]
            if info is None:
                continue  # aborted lane: results[b] already holds the error
            ticks_b, makespan_b, wall_b = info
            m = metrics[b]
            m.fetches = fetch_l[b]
            m.evictions = evic_l[b]
            if log_thr and lane_bnds[b + 1] > lane_bnds[b]:
                idx = order[lane_bnds[b] : lane_bnds[b + 1]]
                thr_b = all_thr[idx]
                w_b = all_w[idx]
                max_w = int(w_b.max())
                keys = thr_b * (max_w + 1) + w_b
                unique_keys, counts = np.unique(keys, return_counts=True)
                for key, count in zip(unique_keys.tolist(), counts.tolist()):
                    thread, w = divmod(key, max_w + 1)
                    hist = m.histograms[thread]
                    hist[w] = hist.get(w, 0) + count
                if m.response_logs is not None:
                    by_thread = np.argsort(thr_b, kind="stable")
                    sorted_w = w_b[by_thread]
                    thr_bnds = np.searchsorted(
                        thr_b[by_thread], np.arange(p_l[b] + 1)
                    )
                    for i in range(p_l[b]):
                        m.response_logs[i] = sorted_w[
                            thr_bnds[i] : thr_bnds[i + 1]
                        ]
            result = m.finalize(
                makespan=makespan_b,
                ticks=ticks_b,
                remap_count=getattr(arbs[b], "remap_count", 0),
                config=self.lanes[b][1],
                wall_time_s=wall_b,
                ff_intervals=ff_intervals[b],
                ff_elided_ticks=ff_elided[b],
            )
            for probe in probes_by_lane[b]:
                probe.on_run_end(result)
            results[b] = result
            drain.record_ff_engagement(
                self.lanes[b][1].arbitration, ff_states[b]
            )

        if ff_wall:
            _record_ff_phase(ff_wall)
        return results


def simulate_batch(
    items: Sequence[tuple[Any, SimulationConfig]],
    engine: str | None = None,
    return_exceptions: bool = False,
) -> list[Any]:
    """Simulate many ``(traces, config)`` jobs, batching eligible ones.

    Every item produces exactly what ``simulate(traces, config,
    engine=engine)`` would — the same :class:`SimulationResult` bit for
    bit, or the same exception. Items that are batch-eligible (see
    :func:`batch_supported`) are stacked into lockstep groups of up to
    :func:`batch_limit` lanes; the rest fall back to the single-job
    dispatcher mid-batch. Results are returned in input order.

    ``traces`` per item is a :class:`repro.traces.Workload` (preferred —
    its attestation makes eligibility O(1)) or a raw trace sequence.
    With ``return_exceptions=True`` a failing item's exception is
    returned in its slot instead of raised, so one bad lane cannot
    discard its batchmates' finished results (the sweep harness relies
    on this for per-lane retries).
    """
    items = list(items)
    if engine is None:
        engine = default_engine()
    if engine not in ENGINE_CHOICES:
        raise ValueError(f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")
    limit = batch_limit()
    results: list[Any] = [None] * len(items)
    native: list[tuple[int, list[np.ndarray], Any, SimulationConfig]] = []
    for idx, (traces, config) in enumerate(items):
        arrays, attestation = _normalize_traces(traces)
        if (
            engine != "reference"
            and limit >= 2
            and len(arrays)
            and _config_supported(config)
            and _probes_passive(config.probes)
        ):
            if attestation is None:
                attestation = _attest_arrays(arrays)
            if _attestation_ok(attestation):
                native.append((idx, arrays, attestation, config))
                continue
        try:
            results[idx] = simulate(traces, config, engine=engine)
        except Exception as exc:
            if not return_exceptions:
                raise
            results[idx] = exc
    step = limit if limit > 0 else 1
    for chunk_start in range(0, len(native), step):
        chunk = native[chunk_start : chunk_start + step]
        if len(chunk) == 1:
            # a lone eligible lane gains nothing from lockstep overhead
            idx, arrays, attestation, config = chunk[0]
            try:
                results[idx] = FastSimulator(
                    arrays, config, attestation=attestation
                ).run()
            except Exception as exc:
                if not return_exceptions:
                    raise
                results[idx] = exc
            else:
                _record_run_metrics("batch", results[idx])
            continue
        sim = BatchSimulator(
            [(arrays, config) for _, arrays, _, config in chunk],
            attestations=[attestation for _, _, attestation, _ in chunk],
        )
        for (idx, _, _, _), outcome in zip(chunk, sim.run()):
            if isinstance(outcome, Exception) and not return_exceptions:
                raise outcome
            results[idx] = outcome
            if not isinstance(outcome, Exception):
                # per-lane accounting mirrors simulate()'s, so campaign
                # metrics are sampled identically across dispatch paths
                _record_run_metrics("batch", outcome)
    return results
