"""Quiescent-interval fast-forward: bulk-drain planning for both engines.

Miss-bound stretches dominate the paper's adversarial workloads: every
live core is blocked on DRAM and the far channels drain the request
queue at ``q`` grants per tick. A tick-level simulator spends O(p) work
per tick re-discovering that nothing changed; this module computes the
entire drain in one step so the engines can jump the clock.

The drain is *exact*, not approximate, because a miss-bound interval is
deterministic once three facts are pinned down at its entry tick:

1. **Guaranteed-miss windows.** For each live core, scan its upcoming
   references and count the prefix where every reference (a) was not
   resident at interval entry and (b) does not repeat an earlier
   reference of the same window. Disjoint traces (the model's
   Property 1, which callers must guarantee) mean no other core can
   fetch or re-fetch these pages, and evictions never make a page
   resident — so each window reference is certainly a miss when its
   turn comes, independent of anything else that happens inside the
   interval. The first reference past the window is *uncertain* (it was
   resident at entry, repeats a window page, or lies past the scan
   cap): the interval must end before that reference is classified.
2. **The grant pipeline.** Under ``protect_pending`` a granted page is
   protected until served, so a grant at tick ``tau`` is always served
   at ``tau + 1`` and the core (if continuing on a window miss)
   re-enqueues at ``tau + 2``. Entry hits are served at the entry tick
   and re-enqueue one tick later. :func:`plan_drain` replays exactly
   this recurrence against a snapshot of the arbitration queue (an
   :meth:`~repro.core.arbitration.ArbitrationPolicy.drain_plan`), so
   the grant order is the policy's own.
3. **Eviction feasibility.** Per tick, the victims needed
   (``deficit``) must come from resident pages that are not protected;
   the protected-and-resident pages at tick ``tau`` are exactly last
   tick's grants (plus the entry hits at the entry tick). The planner
   caps the interval at the first tick this fails, which is also where
   the per-tick engine would start fetching short — outside the
   fast-forward's exact regime.

The interval additionally ends at the policy's plan horizon, at
``max_ticks``, at any core's *deadline* (two ticks after its last
in-window grant, when its uncertain reference would be classified), or
when the queue runs dry. Plans are no longer capped at remap
boundaries: the priority family's remaps are pure permutations of the
current ranks (plus a clonable rng for Dynamic Priority), so a plan
replays them inside the planned copy via its ``tick_hook`` and the
planner carries grant order exactly across any number of boundaries.
Address-aware policies (FR-FCFS) plan too: the planner feeds each
re-enqueue the core's next requested page from ``page_streams``. Probe
samples falling inside a skipped interval are reconstructed
tick-for-tick by
:func:`repro.obs.probe.materialize_interval_samples` from the
schedule's closed-form histories, so probe series are bit-identical to
the per-tick engines' output.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .arbitration import DrainPlan

__all__ = [
    "MIN_FF_TICKS",
    "WINDOW_CAP",
    "BACKOFF_MIN",
    "BACKOFF_MAX",
    "UNBOUNDED",
    "fast_forward_enabled",
    "set_fast_forward",
    "traces_disjoint",
    "DrainSchedule",
    "FFState",
    "plan_drain",
    "record_ff_engagement",
    "response_times",
    "apply_serve_metrics",
]

#: shortest interval worth committing; below this the fixed cost of
#: building and applying a schedule exceeds the per-tick loop it saves.
MIN_FF_TICKS = 8

#: per-core guaranteed-miss scan bound per attempt. Purely a work
#: limiter: a window cut short by the cap behaves like any other
#: uncertain reference (the interval ends before it is classified) and
#: the next attempt continues from the new position.
WINDOW_CAP = 4096

#: failed-attempt backoff (ticks), doubling from MIN to MAX. A failed
#: attempt costs one window scan, so retrying every tick would negate
#: the win on hit-bound phases.
BACKOFF_MIN = 64
BACKOFF_MAX = 4096

#: horizon stand-in when neither max_ticks nor a remap boundary applies
UNBOUNDED = 1 << 62

_ff_override: bool | None = None


def fast_forward_enabled() -> bool:
    """Whether engines may attempt interval fast-forwarding.

    Resolution order: :func:`set_fast_forward` override, then the
    ``REPRO_FAST_FORWARD`` environment variable, then on. Results are
    bit-identical either way; the knob exists for benchmarking and for
    differential tests that pin the per-tick path.
    """
    if _ff_override is not None:
        return _ff_override
    env = os.environ.get("REPRO_FAST_FORWARD")
    if env is not None:
        return env.strip().lower() not in ("0", "false", "off", "no", "")
    return True


def set_fast_forward(enabled: bool | None) -> bool | None:
    """Force fast-forward on/off process-wide; returns the previous override.

    ``None`` removes the override, restoring env-var/default resolution.
    """
    global _ff_override
    previous = _ff_override
    _ff_override = None if enabled is None else bool(enabled)
    return previous


class FFState:
    """Per-run fast-forward engagement bookkeeping.

    Tracks, separately for the guaranteed-miss and guaranteed-hit
    provers, how many attempts were made and how many committed an
    interval, plus whether each prover is still worth attempting
    (``plan_ok`` flips off when the policy declines to produce a drain
    plan, ``hit_ok`` when it cannot skip idle ticks — both permanent
    for the run). :func:`record_ff_engagement` exports the totals as
    per-policy counters.
    """

    __slots__ = (
        "plan_ok",
        "hit_ok",
        "attempts_miss",
        "commits_miss",
        "attempts_hit",
        "commits_hit",
    )

    def __init__(self) -> None:
        self.plan_ok = True
        self.hit_ok = True
        self.attempts_miss = 0
        self.commits_miss = 0
        self.attempts_hit = 0
        self.commits_hit = 0

    @property
    def eligible(self) -> bool:
        """False once neither prover can ever engage again this run."""
        return self.plan_ok or self.hit_ok


def record_ff_engagement(policy_name: str, state: FFState) -> None:
    """Export a run's FF attempt/decline totals to the metrics registry.

    ``repro_ff_plan_attempts{policy=,window=hit|miss}`` counts prover
    attempts; ``repro_ff_plan_declines`` counts the attempts that did
    not commit an interval (plan refused, window too short, or plan
    infeasible). No-op when no metrics registry is active.
    """
    from ..obs.metrics import active_registry

    registry = active_registry()
    if registry is None:
        return
    attempts = registry.counter(
        "repro_ff_plan_attempts",
        "fast-forward prover attempts by policy and window kind",
    )
    declines = registry.counter(
        "repro_ff_plan_declines",
        "fast-forward prover attempts that did not commit an interval",
    )
    for window, n_attempts, n_commits in (
        ("miss", state.attempts_miss, state.commits_miss),
        ("hit", state.attempts_hit, state.commits_hit),
    ):
        if n_attempts:
            attempts.inc(n_attempts, policy=policy_name, window=window)
        dropped = n_attempts - n_commits
        if dropped:
            declines.inc(dropped, policy=policy_name, window=window)


def traces_disjoint(traces: list[np.ndarray]) -> bool:
    """Do the per-core traces touch pairwise-disjoint page sets?

    The reference engine tolerates shared pages, but the fast-forward's
    guaranteed-miss windows do not (another core could fetch a window
    page mid-interval), so it gates on this check.
    """
    non_empty = [t for t in traces if len(t)]
    if len(non_empty) <= 1:
        return True
    per_thread = sum(len(np.unique(t)) for t in non_empty)
    total = len(np.unique(np.concatenate(non_empty)))
    return per_thread == total


class DrainSchedule:
    """The exact outcome of one fast-forwarded interval ``[start, end)``.

    Serve events are tick-major with core ids ascending within a tick
    (the paper's "for each r*_i" serve order); grant events are in the
    arbitration policy's own grant order. The per-tick histories carry
    end-of-tick values, exactly what a probe sampled on that tick reads.
    """

    __slots__ = (
        "start",
        "end",
        "plan",
        "serve_threads",
        "serve_ticks",
        "grant_threads",
        "grant_ticks",
        "grants_per_tick",
        "evicts_per_tick",
        "queue_per_tick",
        "resident_per_tick",
        "final_queue_len",
        "final_resident",
        "total_evictions",
    )

    def __init__(self, start: int, end: int, plan: "DrainPlan") -> None:
        self.start = start
        self.end = end
        self.plan = plan
        self.serve_threads: list[int] = []
        self.serve_ticks: list[int] = []
        self.grant_threads: list[int] = []
        self.grant_ticks: list[int] = []
        self.grants_per_tick: list[int] = []
        self.evicts_per_tick: list[int] = []
        self.queue_per_tick: list[int] = []
        self.resident_per_tick: list[int] = []
        self.final_queue_len = 0
        self.final_resident = 0
        self.total_evictions = 0


def _bulk_steady_segment(
    plan,
    sched: DrainSchedule,
    arrivals: "dict[int, list[int]]",
    tau: int,
    end: int,
    q: int,
    capacity: int,
    R: int,
    prot: int,
    grant_avail: "dict[int, int]",
) -> "tuple[int, int, int, int, int] | None":
    """Vectorize a settled stretch of a FIFO drain; None to tick on.

    Once a FIFO drain is in its pipeline steady state, the grant stream
    is closed-form: let ``P`` be the pending order (queue after this
    tick's arrivals, then next tick's already-registered arrivals — at
    any planner tick that is *every* active core, since a granted core
    is back in the queue two ticks later). Each granted q-chunk
    re-enqueues sorted, so with ``k = len(P)`` divisible by ``q`` the
    stream is ``P`` followed by tiles of ``round1`` (= P's q-chunks,
    each sorted) — chunk-sorting is idempotent from the second round
    on. Grant ``j`` lands on tick ``tau + j // q`` as long as the queue
    never runs dry, which ``k >= 2q`` guarantees (exactly ``2q`` cores
    are in flight at any moment).

    The segment covers ``n_rounds`` whole rounds (one grant per core
    per round), chosen so that no core exhausts its window inside (no
    deadlines), the re-entry tick stays two short of ``end``, and every
    tick's eviction deficit is feasible — everything else falls back to
    the per-tick planner, which re-derives state from the queue and
    arrival batches this function leaves behind. Returns the new loop
    state ``(tau, qlen, prot, R, evicted)``.
    """
    arr = arrivals.get(tau)
    a1_list = arrivals.get(tau + 1)
    snap = plan.snapshot()
    p0_len = len(snap) + (len(arr) if arr else 0)
    if arr:
        snap.extend(arr)
    if a1_list:
        snap.extend(a1_list)
    P = snap
    k = len(P)
    a1 = len(a1_list) if a1_list else 0
    if k < 2 * q or k % q or p0_len < q:
        return None
    min_avail = min(grant_avail[i] for i in P)
    n_rounds = min_avail - 1  # leave one grant: no deadline can fire inside
    cap_rounds = ((end - 2 - tau) * q) // k
    if cap_rounds < n_rounds:
        n_rounds = cap_rounds
    if n_rounds < 2:
        return None
    ticks = n_rounds * k // q
    idx = np.arange(ticks, dtype=np.int64)
    r_after = np.minimum(R + q * (idx + 1), capacity)
    r_before = np.empty(ticks, dtype=np.int64)
    r_before[0] = R
    r_before[1:] = r_after[:-1]
    deficits = q - (r_after - r_before)
    prot_arr = np.full(ticks, q, dtype=np.int64)
    prot_arr[0] = prot
    feasible = deficits <= r_before - prot_arr
    if not feasible.all():
        # Trim to whole rounds strictly before the first infeasible
        # tick; the per-tick planner then re-hits it and ends there.
        first_bad = int(np.argmin(feasible))
        n_rounds = (first_bad * q) // k
        if n_rounds < 2:
            return None
        ticks = n_rounds * k // q
        r_after = r_after[:ticks]
        deficits = deficits[:ticks]

    P_arr = np.asarray(P, dtype=np.int64)
    round1 = P_arr.reshape(-1, q).copy()
    round1.sort(axis=1)
    round1 = round1.ravel()
    grants_stream = (
        np.concatenate([P_arr, np.tile(round1, n_rounds - 1)])
        if n_rounds > 1
        else P_arr
    )

    arrivals.pop(tau, None)
    arrivals.pop(tau + 1, None)
    sched.grant_threads.extend(grants_stream.tolist())
    sched.grant_ticks.extend(np.repeat(np.arange(tau, tau + ticks), q).tolist())
    sched.serve_threads.extend(np.tile(round1, n_rounds).tolist())
    sched.serve_ticks.extend(
        np.repeat(np.arange(tau + 1, tau + 1 + ticks), q).tolist()
    )
    sched.grants_per_tick.extend([q] * ticks)
    sched.evicts_per_tick.extend(deficits.tolist())
    q_hist = np.full(ticks, k - 2 * q, dtype=np.int64)
    q_hist[0] = k - a1 - q
    sched.queue_per_tick.extend(q_hist.tolist())
    sched.resident_per_tick.extend(r_after.tolist())
    for i in P:
        grant_avail[i] -= n_rounds

    # Hand the per-tick planner the exact post-segment pipeline state:
    # the queue holds the next k - 2q stream positions, the two granted
    # chunks still in flight become the next two arrival batches.
    tail = k - 2 * q
    plan.replace(round1[:tail].tolist())
    new_tau = tau + ticks
    arrivals[new_tau] = round1[tail : tail + q].tolist()
    arrivals[new_tau + 1] = round1[tail + q :].tolist()
    return new_tau, tail, q, int(r_after[-1]), int(deficits.sum())


def plan_drain(
    plan: "DrainPlan",
    *,
    start: int,
    channels: int,
    capacity: int,
    resident0: int,
    queue0: int,
    h_threads: list[int],
    b_threads: list[int],
    grant_avail: dict[int, int],
    completes: dict[int, bool],
    page_streams: "dict[int, object] | None" = None,
) -> DrainSchedule | None:
    """Simulate the whole drain against the policy's queue snapshot.

    ``h_threads`` / ``b_threads`` are the entry tick's ready cores whose
    current reference is resident / missing (both sorted by core id);
    cores already queued at entry are implicit in ``plan``'s snapshot.
    ``grant_avail`` maps every live core to the number of grants its
    guaranteed-miss window allows (mutated in place); ``completes``
    flags cores whose window reaches the end of their trace.

    When the plan declares :attr:`~repro.core.arbitration.DrainPlan.
    needs_pages` (address-aware policies), ``page_streams`` must map
    every live core to its upcoming reference stream starting at the
    core's *current* reference; the planner feeds each re-enqueue the
    right page off that stream. When the plan declares a ``tick_hook``
    (remap-replaying plans), the planner invokes it once per planned
    tick after the first, exactly where the live loop runs
    ``begin_tick``.

    Returns ``None`` when the interval is shorter than
    :data:`MIN_FF_TICKS` (callers then fall back to per-tick execution
    and back off). The caller must treat ``plan`` and ``grant_avail``
    as consumed either way.
    """
    needs_pages = plan.needs_pages
    if needs_pages and page_streams is None:
        return None
    hook = plan.tick_hook
    end = plan.horizon
    if end - start < MIN_FF_TICKS:
        return None

    # Pending queue arrivals, keyed by arrival tick. Entry misses
    # enqueue at the entry tick; entry hits are served at the entry
    # tick and re-enqueue (their window guarantees a miss) one tick
    # later. An entry hit with an exhausted window that does not
    # complete hits its deadline immediately.
    arrivals: dict[int, list[int]] = {}
    if b_threads:
        arrivals[start] = list(b_threads)
    for i in h_threads:
        if grant_avail[i] > 0:
            arrivals.setdefault(start + 1, []).append(i)
        elif not completes[i]:
            end = start + 1
    if end - start < MIN_FF_TICKS:
        return None

    sched = DrainSchedule(start, end, plan)
    serve_threads = sched.serve_threads
    serve_ticks = sched.serve_ticks
    grant_threads = sched.grant_threads
    grant_ticks = sched.grant_ticks
    g_hist = sched.grants_per_tick
    d_hist = sched.evicts_per_tick
    q_hist = sched.queue_per_tick
    r_hist = sched.resident_per_tick

    if h_threads:
        serve_threads.extend(h_threads)
        serve_ticks.extend([start] * len(h_threads))

    R = resident0
    qlen = queue0
    prot = len(h_threads)  # resident pages eviction must not touch
    total_evicted = 0
    q = channels
    supports_bulk = plan.supports_bulk and hook is None
    next_idx: dict[int, int] = dict.fromkeys(b_threads, 0) if needs_pages else {}
    tau = start
    while tau < end:
        if supports_bulk and end - tau >= 2 * MIN_FF_TICKS:
            bulk = _bulk_steady_segment(
                plan, sched, arrivals, tau, end, q, capacity, R, prot,
                grant_avail,
            )
            if bulk is not None:
                tau, qlen, prot, R, evicted = bulk
                total_evicted += evicted
                continue
        arr = arrivals.pop(tau, None)
        qlen_eff = qlen + (len(arr) if arr else 0)
        if qlen_eff == 0 and not arrivals:
            # Queue dry and nothing in flight beyond last tick's
            # grants: the drain is over. Keep tick tau inside the
            # interval only if it still serves last tick's grants —
            # and then record its (idle) history row so the per-tick
            # histories span the whole interval (its begin_tick is
            # elided with it, so replay any remap hook first).
            if g_hist and g_hist[-1]:
                if hook is not None:
                    hook(tau)
                end = tau + 1
                g_hist.append(0)
                d_hist.append(0)
                q_hist.append(qlen)
                r_hist.append(R)
            else:
                end = tau
            break
        will = qlen_eff if qlen_eff < q else q
        deficit = 0
        if will:
            free = capacity - R
            deficit = will - free
            if deficit < 0:
                deficit = 0
            elif deficit > R - prot:
                # Eviction would need a protected page: the per-tick
                # engine would fetch short here, which is outside the
                # deterministic drain regime. End before this tick
                # (which therefore keeps its live begin_tick: no hook).
                end = tau
                break
        if hook is not None and tau > start:
            # The live loop runs begin_tick(tau) before enqueuing this
            # tick's arrivals and granting; tick `start`'s already ran.
            hook(tau)
        if arr:
            if needs_pages:
                pages: list[int] = []
                for i in arr:
                    # A core's first push re-requests stream[0] only if
                    # it entered as a queued/entry miss; entry hits and
                    # re-arrivals already consumed earlier references.
                    idx = next_idx.get(i, 1)
                    pages.append(int(page_streams[i][idx]))
                    next_idx[i] = idx + 1
                plan.push(arr, pages)
            else:
                plan.push(arr)
        qlen = qlen_eff
        if will:
            granted = plan.pop(will)
            ng = len(granted)
            if ng != will:
                # Defensive: a drain plan that disagrees with its
                # policy's queue length cannot be committed safely.
                return None
            R += ng - deficit
            qlen -= ng
            total_evicted += deficit
            grant_threads.extend(granted)
            grant_ticks.extend([tau] * ng)
            batch = sorted(granted)
            serve_tick = tau + 1
            if serve_tick < end:
                # end only ever shrinks to >= tau + 2 below, so a
                # serve recorded here stays inside the interval.
                serve_threads.extend(batch)
                serve_ticks.extend([serve_tick] * len(batch))
            rearrive = tau + 2
            nxt: list[int] | None = None
            for i in batch:
                left = grant_avail[i] - 1
                grant_avail[i] = left
                if left > 0:
                    if nxt is None:
                        nxt = []
                    nxt.append(i)
                elif not completes[i] and rearrive < end:
                    # Deadline: this core's next reference after the
                    # granted one is uncertain and must be classified
                    # by the per-tick engine.
                    end = rearrive
            if nxt and rearrive < end:
                arrivals.setdefault(rearrive, []).extend(nxt)
            g_hist.append(ng)
        else:
            g_hist.append(0)
            prot = 0
            d_hist.append(0)
            q_hist.append(qlen)
            r_hist.append(R)
            tau += 1
            continue
        prot = ng
        d_hist.append(deficit)
        q_hist.append(qlen)
        r_hist.append(R)
        tau += 1

    if end - start < MIN_FF_TICKS:
        return None
    # Serves recorded for a tick the eviction cap later excluded.
    while serve_ticks and serve_ticks[-1] >= end:
        serve_ticks.pop()
        serve_threads.pop()
    sched.end = end
    sched.final_queue_len = qlen
    sched.final_resident = R
    sched.total_evictions = total_evicted
    return sched


def response_times(
    serve_threads: np.ndarray,
    serve_ticks: np.ndarray,
    entry_request_tick: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-serve response times for a schedule's serve events.

    Returns ``(order, threads_sorted, ticks_sorted, w_sorted)`` where
    ``order`` is the stable thread-major permutation of the
    chronological inputs. A core's first serve in the interval answers
    the request it entered with (``w = tick - entry_request_tick + 1``);
    each later serve answers the request issued one tick after the
    previous serve, so ``w`` is the consecutive serve-tick difference.
    """
    order = np.argsort(serve_threads, kind="stable")
    th = serve_threads[order]
    tk = serve_ticks[order]
    w = np.empty(len(th), dtype=np.int64)
    if len(th):
        first = np.empty(len(th), dtype=bool)
        first[0] = True
        first[1:] = th[1:] != th[:-1]
        w[first] = tk[first] - entry_request_tick[th[first]] + 1
        diffs = tk[1:] - tk[:-1]
        rest = ~first[1:]
        w[1:][rest] = diffs[rest]
    return order, th, tk, w


def apply_serve_metrics(
    histograms: list[dict[int, int]],
    response_logs: list[list[int]] | None,
    threads_sorted: np.ndarray,
    w_sorted: np.ndarray,
    num_threads: int,
) -> None:
    """Merge an interval's serves into per-thread histogram dicts.

    ``threads_sorted`` / ``w_sorted`` come from :func:`response_times`
    (thread-major, chronological within a thread), which is exactly the
    append order the reference engine's response logs use.
    """
    if not len(threads_sorted):
        return
    max_w = int(w_sorted.max())
    keys = threads_sorted * (max_w + 1) + w_sorted
    unique_keys, counts = np.unique(keys, return_counts=True)
    for key, count in zip(unique_keys.tolist(), counts.tolist()):
        thread, w = divmod(key, max_w + 1)
        hist = histograms[thread]
        hist[w] = hist.get(w, 0) + count
    if response_logs is not None:
        bounds = np.searchsorted(threads_sorted, np.arange(num_threads + 1))
        for i in range(num_threads):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo:
                response_logs[i].extend(w_sorted[lo:hi].tolist())
