"""Vectorized simulator (independent implementation of the model).

:class:`FastSimulator` produces **bit-identical results** to
:class:`repro.core.engine.Simulator` (enforced by the differential
tests in ``tests/test_fastengine.py``) while executing the per-tick
classify/serve work with numpy when many cores are unblocked at once:
dense page-state arrays, a timestamp-LRU with a lazily-refreshed
eviction heap, and bulk metrics aggregation replace the reference
engine's per-core dict/list operations.

Performance honesty: at the core counts this reproduction simulates
(p <= 256) the two engines are at parity — numpy dispatch overhead eats
the vector win, and miss-bound phases are scalar either way. The module
earns its keep two other ways: as a *third*, structurally different
implementation of the model semantics for differential testing
(reference engine / naive test-suite reference / this), and as the
scaling path for much wider simulated machines, where per-tick work
grows linearly for the reference engine but stays near-constant here.

Scope restrictions (violations fall back to the reference engine via
:func:`simulate`):

* LRU replacement (the paper's policy) — implemented here as lazy
  timestamp LRU: touches are vector writes to a ``last_stamp`` array
  and the eviction heap refreshes stale entries on pop, instead of an
  OrderedDict move per hit;
* ``protect_pending=True`` (the default) — protection is what
  guarantees a classified hit cannot be evicted between the classify
  and serve phases, which the vector path exploits;
* disjoint traces with compact page ids (what
  :class:`repro.traces.Workload` produces) — page state lives in dense
  arrays indexed by page id, and the protected-page test becomes
  ``current[owner[page]] == page``;
* no Belady wiring, no timeline collection (``config.probes`` *are*
  supported — samples are emitted from the vectorized state under the
  same per-tick condition as the reference engine, so the two engines'
  probe series are identical on shared sample ticks).

``record_responses=True`` *is* supported: the chronological serve
buffers the engine keeps anyway hold exactly the per-thread response
sequences (a core has at most one serve per tick, so restricting the
chronological log to one thread reproduces the reference engine's
per-thread append order).

Dispatch cost: :func:`simulate` accepts either raw arrays or a
:class:`repro.traces.Workload`. A workload carries a
:class:`~repro.traces.base.PageAttestation` certified at construction,
so eligibility is an O(1) attribute check; raw arrays fall back to a
full O(n log n) disjointness scan. Callers on hot paths should pass the
workload object.

Why stamps reproduce the reference exactly: the reference engine
serves hits in core-id order within a tick and inserts fetched pages
afterwards, so its LRU recency order is exactly (tick, phase, core
order). Stamps ``t * (p + q + 1) + serve_index`` for touches and
``t * (p + q + 1) + p + grant_index`` for inserts encode the same total
order, and the eviction heap pops its minimum.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Sequence

import numpy as np

from . import drain
from .arbitration import make_arbitration_policy
from .config import SimulationConfig
from .dram import DramGeometry
from .engine import SimulationLimitError, Simulator
from .metrics import MetricsCollector, SimulationResult

__all__ = [
    "ENGINE_CHOICES",
    "VECTOR_THRESHOLD",
    "FastSimulator",
    "default_engine",
    "resolve_engine",
    "set_default_engine",
    "set_vector_threshold",
    "simulate",
    "vector_threshold",
]

#: documented fallback for the scalar/vector crossover: below this many
#: READY cores a tick is processed scalar, above it with numpy. The
#: live value comes from :func:`vector_threshold` (override, then the
#: ``REPRO_VECTOR_THRESHOLD`` env var, then a one-shot micro-benchmark
#: clamped to [8, 96]); this constant is the documented ballpark and
#: the value tests pin when they need a deterministic crossover.
VECTOR_THRESHOLD = 24

#: first-pass cap for the fast-forward window scan: attempts that fail
#: (hit-heavy regimes, tiny windows) must not pay a full-trace scan per
#: live core. Chosen above the adversarial families' cycle lengths so
#: their windows resolve exactly in one pass.
_SCAN_STAGE_CAP = 96

_vector_threshold_override: int | None = None
_calibrated_threshold: int | None = None


def _calibrate_vector_threshold() -> int:
    """Measure the scalar/vector crossover width on this host.

    Times the hot-loop classify kernel (gather pages, test residency,
    split hits/misses) both ways at increasing ready-set widths and
    returns the first width where the numpy version wins. The result is
    clamped to [8, 96]: outside that range the measurement is noise
    (tiny widths) or irrelevant (the vector path always wins). Runs
    once per process (~a few ms) unless the env var or an override
    short-circuits it.
    """
    universe = 4096
    resident = np.zeros(universe, dtype=bool)
    resident[::2] = True
    reps = 400
    for width in (8, 12, 16, 24, 32, 48, 64, 96):
        ready = np.arange(width, dtype=np.int64)
        current = (np.arange(width, dtype=np.int64) * 7919) % universe
        t0 = time.perf_counter()
        for _ in range(reps):
            pages = current[ready]
            flags = resident[pages]
            _hits = ready[flags]
            _miss = ready[~flags]
        t_vec = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(reps):
            hits = []
            misses = []
            for i in ready.tolist():
                if resident[int(current[i])]:
                    hits.append(i)
                else:
                    misses.append(i)
        t_sca = time.perf_counter() - t0
        if t_vec < t_sca:
            return max(8, width)
    return 96


def vector_threshold() -> int:
    """The ready-set width at which ticks switch to the vector path.

    Resolution order: :func:`set_vector_threshold` override, then the
    ``REPRO_VECTOR_THRESHOLD`` environment variable, then a cached
    :func:`_calibrate_vector_threshold` measurement. Purely a
    performance knob — both paths implement identical semantics, so an
    invalid env value (non-integer, non-positive) is warned about once
    and ignored rather than failing the dispatch.
    """
    if _vector_threshold_override is not None:
        return _vector_threshold_override
    env = os.environ.get("REPRO_VECTOR_THRESHOLD")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
        from ..obs.log import get_logger, warn_once

        warn_once(
            get_logger("core"),
            "vector-threshold-env",
            "ignoring invalid REPRO_VECTOR_THRESHOLD=%r "
            "(expected an integer >= 1); using calibrated default",
            env,
        )
    global _calibrated_threshold
    if _calibrated_threshold is None:
        _calibrated_threshold = _calibrate_vector_threshold()
    return _calibrated_threshold


def set_vector_threshold(n: int | None) -> int | None:
    """Force the scalar/vector crossover; returns the previous override.

    ``None`` removes the override, restoring env-var/calibration
    resolution. Used by differential tests to pin one path and by
    benchmarks to measure both. An invalid value (non-integer,
    non-positive) warns once and clears the override — the knob is
    purely performance, so misuse must never change or abort a run.
    """
    global _vector_threshold_override
    previous = _vector_threshold_override
    if n is None:
        _vector_threshold_override = None
        return previous
    try:
        value = int(n)
    except (TypeError, ValueError):
        value = 0
    if value < 1:
        from ..obs.log import get_logger, warn_once

        warn_once(
            get_logger("core"),
            "vector-threshold-set",
            "ignoring invalid vector threshold %r "
            "(expected an integer >= 1); override cleared",
            n,
        )
        _vector_threshold_override = None
        return previous
    _vector_threshold_override = value
    return previous

#: dense page-state arrays must stay sane
MAX_DENSE_PAGE = 50_000_000

#: valid values for the ``engine`` argument of :func:`simulate`
ENGINE_CHOICES = ("auto", "reference", "fast")

_default_engine = "auto"


def default_engine() -> str:
    """The engine :func:`simulate` uses when none is given."""
    return _default_engine


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous value.

    Used by the CLI's ``--engine`` flag to steer every dispatch inside
    an experiment run without threading a parameter through each
    experiment signature. Sweep workers receive the choice explicitly
    through the pool initializer.
    """
    global _default_engine
    if engine not in ENGINE_CHOICES:
        raise ValueError(f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")
    previous = _default_engine
    _default_engine = engine
    return previous


class _ArrayAttestation:
    """Attestation-shaped result of scanning raw trace arrays.

    Duck-type compatible with :class:`repro.traces.base.PageAttestation`
    (which lives in the traces layer; core does not import it).
    """

    __slots__ = ("disjoint", "min_page", "max_page")

    def __init__(self, disjoint: bool, min_page: int, max_page: int) -> None:
        self.disjoint = disjoint
        self.min_page = min_page
        self.max_page = max_page


def _attest_arrays(traces: list[np.ndarray]) -> _ArrayAttestation:
    """The expensive raw-array fallback: scan for disjointness/bounds."""
    non_empty = [t for t in traces if len(t)]
    if not non_empty:
        return _ArrayAttestation(True, 0, -1)
    max_page = max(int(t.max()) for t in non_empty)
    min_page = min(int(t.min()) for t in non_empty)
    if min_page < 0 or max_page > MAX_DENSE_PAGE:
        return _ArrayAttestation(False, min_page, max_page)
    per_thread = sum(len(np.unique(t)) for t in non_empty)
    total = len(np.unique(np.concatenate(non_empty)))
    return _ArrayAttestation(per_thread == total, min_page, max_page)


def _config_supported(config: SimulationConfig) -> bool:
    return (
        config.replacement == "lru"
        and config.protect_pending
        and not config.collect_timeline
    )


def _attestation_ok(attestation) -> bool:
    return (
        attestation.disjoint
        and attestation.min_page >= 0
        and attestation.max_page <= MAX_DENSE_PAGE
    )


def _supports(
    config: SimulationConfig,
    traces: list[np.ndarray],
    attestation=None,
) -> bool:
    """Can the fast path run this configuration faithfully?"""
    if not _config_supported(config):
        return False
    if attestation is None:
        attestation = _attest_arrays(traces)
    return _attestation_ok(attestation)


def _attempt_fast_forward(
    ffstate,
    arb,
    t,
    p,
    q,
    capacity,
    big_trace,
    offsets,
    lengths,
    pos,
    current,
    request_tick,
    ready,
    resident,
    resident_count,
    last_stamp,
    heap,
    stamp_stride,
    queue_len,
    fetches,
    evictions,
    done_count,
    makespan,
    metrics,
    served_threads,
    served_w,
    probes,
    probe_stride,
    ff_horizon,
):
    """One quiescent-interval fast-forward attempt at tick ``t``.

    The fast engine's counterpart of the reference engine's attempt
    (see :mod:`repro.core.drain` for the model): identical planning,
    but the bulk apply speaks timestamp-LRU. Serve touches become one
    scatter into ``last_stamp`` (per-tick-stale heap entries migrate
    lazily, exactly as on the hit path), the exact LRU victim sequence
    falls out of popping the heap minimum with *no* protection
    predicate (plan feasibility already guarantees no protected page is
    reached), and the response times land in the chronological serve
    buffers the end-of-run aggregation consumes anyway.

    Dispatches to the guaranteed-*hit* prover
    (:func:`_attempt_hit_fast_forward`) when the entry tick is fully
    quiescent the other way round — empty queue, every ready reference
    resident — and to the guaranteed-miss drain planner otherwise.
    ``ffstate`` (a :class:`repro.core.drain.FFState`) tracks which
    provers are permanently unavailable for this run and counts
    attempts/commits per window kind. Returns the updated scalars
    ``(t, ready, queue_len, fetches, evictions, done_count, makespan,
    resident_count)`` or ``None`` when no interval could be committed.
    """
    # Entry classification (H serves this tick, B enqueues this tick).
    pages = current[ready]
    flags = resident[pages]
    h_arr = ready[flags]
    b_arr = ready[~flags]

    if queue_len == 0 and not len(b_arr):
        if not ffstate.hit_ok or not len(h_arr):
            return None
        ffstate.attempts_hit += 1
        result = _attempt_hit_fast_forward(
            arb, t, p, q, big_trace, offsets, lengths, pos, current,
            request_tick, h_arr, resident, resident_count, last_stamp,
            stamp_stride, fetches, evictions, done_count, makespan,
            metrics, served_threads, served_w, probes, probe_stride,
            ff_horizon, ffstate,
        )
        if result is not None:
            ffstate.commits_hit += 1
        return result

    if not ffstate.plan_ok:
        return None
    ffstate.attempts_miss += 1
    plan = arb.drain_plan(q, ff_horizon)
    if plan is None:
        ffstate.plan_ok = False
        return None

    n_h = len(h_arr)
    is_h = np.zeros(p, dtype=bool)
    is_h[h_arr] = True

    # Guaranteed-miss windows, vectorized per core: a window reference
    # is bad if resident at entry or a repeat of an earlier window
    # reference; the window ends at the first bad position. The scan is
    # bounded by the plan's own horizon (cross-remap plans stretch to
    # max_ticks; legacy plans stop at the next remap boundary).
    full_cap = drain.WINDOW_CAP
    if plan.horizon < drain.UNBOUNDED:
        span = plan.horizon - t
        if span < full_cap:
            full_cap = span if span > 1 else 1
    live = np.flatnonzero(current >= 0).tolist()
    needs_pages = plan.needs_pages

    def scan_windows(scan_cap):
        avail: dict[int, int] = {}
        completes: dict[int, bool] = {}
        streams: dict[int, np.ndarray] = {}
        truncated = False
        for i in live:
            start_pos = int(pos[i])
            length = int(lengths[i])
            off = int(offsets[i])
            j_max = start_pos + scan_cap
            if j_max > length:
                j_max = length
            arr = big_trace[off + start_pos : off + j_max]
            bad = resident[arr].copy()
            if len(arr) > 1:
                _, first_idx, inv = np.unique(
                    arr, return_index=True, return_inverse=True
                )
                np.logical_or(
                    bad, first_idx[inv] != np.arange(len(arr)), out=bad
                )
            bad[0] = False  # the current reference itself gets a free pass
            window = int(bad.argmax()) if bad.any() else len(arr)
            if window == scan_cap < full_cap and start_pos + window < length:
                truncated = True
            completes[i] = start_pos + window >= length
            avail[i] = window - 1 if is_h[i] else window
            if needs_pages:
                streams[i] = arr
        return avail, completes, streams, truncated

    def plan_with(avail, completes, streams, the_plan):
        return drain.plan_drain(
            the_plan,
            start=t,
            channels=q,
            capacity=capacity,
            resident0=resident_count,
            queue0=queue_len,
            h_threads=h_arr.tolist(),
            b_threads=b_arr.tolist(),
            grant_avail=avail,
            completes=completes,
            page_streams=streams if needs_pages else None,
        )

    # Staged scan: most *failed* attempts (hit-heavy regimes) have tiny
    # windows, so a capped first pass decides cheaply; the expensive
    # full-trace scan only runs when a capped plan already committed to
    # an interval that the cap may have shortened.
    stage_cap = _SCAN_STAGE_CAP if _SCAN_STAGE_CAP < full_cap else full_cap
    avail, completes, streams, truncated = scan_windows(stage_cap)
    sched = plan_with(avail, completes, streams, plan)
    if sched is None:
        return None
    if truncated:
        replan = arb.drain_plan(q, plan.horizon)
        if replan is not None:
            avail, completes, streams, _ = scan_windows(full_cap)
            full_sched = plan_with(avail, completes, streams, replan)
            if full_sched is not None:
                sched = full_sched
    end = sched.end
    plan = sched.plan

    # ---- read-only derivations (no state touched yet) ----------------
    n = len(sched.serve_threads)
    st = np.asarray(sched.serve_threads, dtype=np.int64)
    sk = np.asarray(sched.serve_ticks, dtype=np.int64)
    order, th_s, tk_s, w_s = drain.response_times(st, sk, request_tick)

    # Serve pages: thread-major, each thread consumes consecutive trace
    # positions from its entry pos; scattered back to chronological.
    bounds = np.searchsorted(th_s, np.arange(p + 1))
    occ = np.arange(n, dtype=np.int64) - np.repeat(bounds[:-1], np.diff(bounds))
    pages_s = big_trace[offsets[th_s] + pos[th_s] + occ]
    serve_pages = np.empty(n, dtype=np.int64)
    serve_pages[order] = pages_s
    w_chrono = np.empty(n, dtype=np.int64)
    w_chrono[order] = w_s

    # A serve at tick tau with within-tick index k gets stamp
    # tau * stride + k — the same total recency order the per-tick
    # paths write (sk is tick-major, so searchsorted finds each tick
    # group's first position).
    within = np.arange(n, dtype=np.int64) - np.searchsorted(sk, sk)
    serve_stamps = sk * stamp_stride + within

    total_evict = sched.total_evictions
    n_entry_victims = (
        total_evict if total_evict < resident_count else resident_count
    )
    m_fetched_victims = total_evict - n_entry_victims
    if m_fetched_victims > n - n_h:
        return None  # planner drift; unreachable by construction
    fetched_pages = serve_pages[n_h:]
    fetched_stamps = serve_stamps[n_h:]

    grant_ticks = sched.grant_ticks
    g_idx = len(grant_ticks)
    while g_idx > 0 and grant_ticks[g_idx - 1] == end - 1:
        g_idx -= 1
    inflight_threads = sched.grant_threads[g_idx:]

    serve_ticks_list = sched.serve_ticks
    s_idx = len(serve_ticks_list)
    while s_idx > 0 and serve_ticks_list[s_idx - 1] == end - 1:
        s_idx -= 1

    if probes:
        entry_live = current >= 0
        probe_rt = request_tick.copy()
    fetches0 = fetches
    evictions0 = evictions

    # ---- commit -------------------------------------------------------
    plan.commit()
    if n:
        served_threads.append(st)
        served_w.append(w_chrono)

    # Restamp every served page to its final (serve) stamp, then pop
    # the exact victim sequence: entry-resident non-H pages oldest
    # first, then the entry hits in core order, then interval-fetched
    # pages in serve order — precisely the stamp order after the
    # scatter. Heap entries carrying pre-serve stamps refresh lazily.
    last_stamp[serve_pages] = serve_stamps
    popped = 0
    while popped < n_entry_victims:
        s, page = heapq.heappop(heap)
        if not resident[page]:
            continue
        true_stamp = int(last_stamp[page])
        if s != true_stamp:
            heapq.heappush(heap, (true_stamp, page))
            continue
        resident[page] = False
        resident_count -= 1
        popped += 1
    evictions += total_evict

    counts = np.bincount(st, minlength=p)
    completion_tick: dict[int, int] = {}
    for i in np.flatnonzero(counts).tolist():
        served = int(counts[i])
        last_serve = int(tk_s[bounds[i + 1] - 1])
        j = int(pos[i]) + served
        if j >= lengths[i]:
            ct = last_serve + 1
            metrics.record_completion(i, ct)
            done_count += 1
            if ct > makespan:
                makespan = ct
            completion_tick[i] = last_serve
            current[i] = -1
            pos[i] = j - 1
        else:
            pos[i] = j
            current[i] = big_trace[offsets[i] + j]
            request_tick[i] = last_serve + 1

    # The first m fetched pages are fetch-then-evict inside the
    # interval: they never become resident here at all. In-flight
    # grants (tick end-1, served after the jump) carry insert stamps.
    for page, stamp in zip(
        fetched_pages[m_fetched_victims:].tolist(),
        fetched_stamps[m_fetched_victims:].tolist(),
    ):
        resident[page] = True
        resident_count += 1
        heapq.heappush(heap, (stamp, page))
    base_end = (end - 1) * stamp_stride
    for g, i in enumerate(inflight_threads):
        page = int(current[i])
        resident[page] = True
        resident_count += 1
        stamp = base_end + p + g
        last_stamp[page] = stamp
        heapq.heappush(heap, (stamp, page))
    fetches += len(sched.grant_threads)
    queue_len = sched.final_queue_len

    tail = [i for i in sched.serve_threads[s_idx:] if current[i] >= 0]
    tail.extend(int(i) for i in inflight_threads)
    tail.sort()
    new_ready = np.asarray(tail, dtype=np.int64)

    if probes:
        from ..obs.probe import materialize_interval_samples

        materialize_interval_samples(
            probes,
            start=t,
            end=end,
            stride=probe_stride,
            channels=q,
            fetches0=fetches0,
            evictions0=evictions0,
            grants_per_tick=sched.grants_per_tick,
            evicts_per_tick=sched.evicts_per_tick,
            queue_per_tick=sched.queue_per_tick,
            resident_per_tick=sched.resident_per_tick,
            serve_threads=sched.serve_threads,
            serve_ticks=sched.serve_ticks,
            grant_threads=sched.grant_threads,
            grant_ticks=sched.grant_ticks,
            request_tick=probe_rt,
            live=entry_live,
            completion_tick=completion_tick,
        )

    ffstate.commits_miss += 1
    return (
        end,
        new_ready,
        queue_len,
        fetches,
        evictions,
        done_count,
        makespan,
        resident_count,
    )


def _attempt_hit_fast_forward(
    arb,
    t,
    p,
    q,
    big_trace,
    offsets,
    lengths,
    pos,
    current,
    request_tick,
    h_arr,
    resident,
    resident_count,
    last_stamp,
    stamp_stride,
    fetches,
    evictions,
    done_count,
    makespan,
    metrics,
    served_threads,
    served_w,
    probes,
    probe_stride,
    ff_horizon,
    ffstate,
):
    """Bulk-retire a guaranteed-*hit* stretch starting at tick ``t``.

    Preconditions established by the caller: the request queue is empty
    and every live core's current reference is resident. Under those
    conditions no fetch can happen until some core reaches a
    non-resident reference, and with no fetches there are no evictions
    — so residency is frozen and each core simply serves one trace
    reference per tick while its *hit run* (maximal prefix of resident
    references) lasts. The interval ends one tick before the first
    non-completing core would classify a non-resident reference, which
    keeps that classification in the live loop.

    The bulk apply is pure timestamp work: serves scatter their final
    stamps into ``last_stamp`` (hits never push heap entries on the
    per-tick paths either — stale heap stamps refresh lazily), response
    times are 1 for every serve after a core's first, and the policy
    replays its elided ``begin_tick`` effects through
    :meth:`~repro.core.arbitration.ArbitrationPolicy.skip_idle_ticks`
    (refusal permanently disables this prover for the run via
    ``ffstate.hit_ok``). Returns the same scalar tuple as
    :func:`_attempt_fast_forward` or ``None``.
    """
    live = h_arr  # queue empty: the live set IS the ready set
    full_cap = drain.WINDOW_CAP
    if ff_horizon < drain.UNBOUNDED:
        span = ff_horizon - t
        if span < full_cap:
            full_cap = span
    if full_cap < drain.MIN_FF_TICKS:
        return None

    def scan_runs(scan_cap):
        """Per-core hit-run lengths (capped) + completion flags."""
        runs: dict[int, int] = {}
        comp: dict[int, bool] = {}
        for i in live.tolist():
            start_pos = int(pos[i])
            length = int(lengths[i])
            off = int(offsets[i])
            j_max = start_pos + scan_cap
            if j_max > length:
                j_max = length
            arr = big_trace[off + start_pos : off + j_max]
            res = resident[arr]
            m = len(arr) if res.all() else int(res.argmin())
            runs[i] = m
            comp[i] = start_pos + m >= length
        return runs, comp

    # Staged like the miss scan: a cheap capped pass decides most
    # failures; rescan at the full cap only when every non-completing
    # core's run was cut by the stage cap.
    stage_cap = _SCAN_STAGE_CAP if _SCAN_STAGE_CAP < full_cap else full_cap
    runs, comp = scan_runs(stage_cap)
    noncomp = [runs[i] for i in runs if not comp[i]]
    k = min(noncomp) if noncomp else max(runs.values())
    if noncomp and k == stage_cap < full_cap:
        runs, comp = scan_runs(full_cap)
        noncomp = [runs[i] for i in runs if not comp[i]]
        k = min(noncomp) if noncomp else max(runs.values())
    if k < drain.MIN_FF_TICKS:
        return None
    end = t + k

    # ---- read-only derivations (no state touched yet) ----------------
    s = np.minimum(k, lengths[live] - pos[live])
    n = int(s.sum())
    starts = np.zeros(len(live) + 1, dtype=np.int64)
    np.cumsum(s, out=starts[1:])
    th_tm = np.repeat(live, s)  # thread-major serve events
    occ = np.arange(n, dtype=np.int64) - np.repeat(starts[:-1], s)
    ticks_tm = t + occ
    pages_tm = big_trace[offsets[th_tm] + pos[th_tm] + occ]
    w_tm = np.ones(n, dtype=np.int64)
    w_tm[starts[:-1]] = t - request_tick[live] + 1

    # Chronological (tick-major, core-id ascending within a tick —
    # live is sorted and the sort is stable, so within-tick order is
    # exactly the per-tick serve order).
    order = np.argsort(ticks_tm, kind="stable")
    th_c = th_tm[order]
    tk_c = ticks_tm[order]
    pages_c = pages_tm[order]
    w_c = w_tm[order]
    within = np.arange(n, dtype=np.int64) - np.searchsorted(tk_c, tk_c)
    stamps_c = tk_c * stamp_stride + within

    if probes:
        entry_live = current >= 0
        probe_rt = request_tick.copy()
    fetches0 = fetches
    evictions0 = evictions

    # ---- commit -------------------------------------------------------
    # The policy goes first: it either replays every elided begin_tick
    # (remaps) or refuses, in which case nothing has been mutated yet
    # and the per-tick loop takes over for good.
    if not arb.skip_idle_ticks(t, end):
        ffstate.hit_ok = False
        return None

    # Duplicate pages keep their *last* serve's stamp (numpy fancy
    # assignment applies in index order), matching per-tick re-touches.
    last_stamp[pages_c] = stamps_c
    served_threads.append(th_c)
    served_w.append(w_c)

    completion_tick: dict[int, int] = {}
    cont_mask = np.empty(len(live), dtype=bool)
    for idx, i in enumerate(live.tolist()):
        si = int(s[idx])
        j = int(pos[i]) + si
        if j >= lengths[i]:
            ct = t + si
            metrics.record_completion(i, ct)
            done_count += 1
            if ct > makespan:
                makespan = ct
            completion_tick[i] = t + si - 1
            current[i] = -1
            pos[i] = j - 1
            cont_mask[idx] = False
        else:
            cont_mask[idx] = True
    cont = live[cont_mask]
    if len(cont):
        pos[cont] += k
        current[cont] = big_trace[offsets[cont] + pos[cont]]
        request_tick[cont] = end
    new_ready = cont

    if probes:
        from ..obs.probe import materialize_interval_samples

        materialize_interval_samples(
            probes,
            start=t,
            end=end,
            stride=probe_stride,
            channels=q,
            fetches0=fetches0,
            evictions0=evictions0,
            grants_per_tick=[0] * k,
            evicts_per_tick=[0] * k,
            queue_per_tick=[0] * k,
            resident_per_tick=[resident_count] * k,
            serve_threads=th_c.tolist(),
            serve_ticks=tk_c.tolist(),
            grant_threads=[],
            grant_ticks=[],
            request_tick=probe_rt,
            live=entry_live,
            completion_tick=completion_tick,
        )

    return (
        end,
        new_ready,
        0,
        fetches,
        evictions,
        done_count,
        makespan,
        resident_count,
    )


class FastSimulator:
    """Drop-in replacement for :class:`Simulator` on supported configs.

    Raises ``ValueError`` at construction when the configuration falls
    outside the fast path's scope; use :func:`simulate` to dispatch
    automatically.
    """

    def __init__(
        self,
        traces: Sequence[np.ndarray | Sequence[int]],
        config: SimulationConfig,
        attestation=None,
    ) -> None:
        """``attestation`` (an object with ``disjoint``/``min_page``/
        ``max_page``, e.g. :class:`repro.traces.base.PageAttestation`)
        vouches for the trace layout and skips the O(n log n) scan."""
        if len(traces) == 0:
            raise ValueError("workload must contain at least one trace")
        self.config = config
        self.traces = [
            np.ascontiguousarray(np.asarray(t, dtype=np.int64)) for t in traces
        ]
        if not _supports(config, self.traces, attestation):
            raise ValueError(
                "configuration outside the fast path (needs LRU, "
                "protect_pending, disjoint compact traces, no timeline); "
                "use repro.core.fastengine.simulate() to auto-fallback"
            )
        self.num_threads = len(self.traces)

    def run(self) -> SimulationResult:  # noqa: C901 - one hot loop by design
        start = time.perf_counter()
        cfg = self.config
        p = self.num_threads
        q = cfg.channels
        rng = np.random.default_rng(cfg.seed)
        arb = make_arbitration_policy(
            cfg.arbitration,
            p,
            remap_period=cfg.remap_period,
            rng=rng,
            dram_geometry=DramGeometry(cfg.dram_banks, cfg.dram_row_pages),
            blacklist_threshold=cfg.blacklist_threshold,
            blacklist_clear_interval=cfg.blacklist_clear_interval,
        )
        metrics = MetricsCollector(p, record_responses=cfg.record_responses)

        lengths = np.array([len(t) for t in self.traces], dtype=np.int64)
        offsets = np.zeros(p, dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        big_trace = (
            np.concatenate([t for t in self.traces])
            if lengths.sum()
            else np.empty(0, dtype=np.int64)
        )

        universe = int(big_trace.max()) + 1 if len(big_trace) else 1
        resident = np.zeros(universe, dtype=bool)
        last_stamp = np.zeros(universe, dtype=np.int64)
        owner = np.zeros(universe, dtype=np.int64)
        for i, t in enumerate(self.traces):
            if len(t):
                owner[np.unique(t)] = i

        stamp_stride = p + q + 1
        heap: list[tuple[int, int]] = []

        pos = np.zeros(p, dtype=np.int64)
        current = np.full(p, -1, dtype=np.int64)
        request_tick = np.zeros(p, dtype=np.int64)
        alive = lengths > 0
        for i in np.flatnonzero(~alive):
            metrics.record_completion(int(i), 0)
        current[alive] = big_trace[offsets[alive]]
        ready = np.flatnonzero(alive).astype(np.int64)
        done_count = int((~alive).sum())

        # chronological serve buffers; per-thread histograms built at end
        served_threads: list[np.ndarray] = []
        served_w: list[np.ndarray] = []

        capacity = cfg.hbm_slots
        resident_count = 0
        queue_len = 0
        fetches = 0
        evictions = 0
        max_ticks = cfg.max_ticks

        arb_begin_tick = arb.begin_tick
        arb_enqueue = arb.enqueue
        arb_select = arb.select

        # Observability: identical sampling condition to the reference
        # engine, so probe series agree tick for tick; samples are built
        # from the dense arrays instead of per-core dicts.
        probes = cfg.probes
        probe_stride = cfg.probe_stride
        if probes:
            from ..obs.probe import ProbeSample

            for probe in probes:
                probe.on_run_start(p, cfg)

        def evict_one(tick_base: int) -> bool:
            """Pop the true LRU unprotected page; False if all protected."""
            nonlocal resident_count, evictions
            stash: list[tuple[int, int]] = []
            victim_found = False
            while heap:
                s, page = heapq.heappop(heap)
                if not resident[page]:
                    continue  # entry for an evicted (possibly refetched) page
                true_stamp = int(last_stamp[page])
                if s != true_stamp:
                    heapq.heappush(heap, (true_stamp, page))
                    continue
                if current[owner[page]] == page:
                    stash.append((s, page))
                    continue
                resident[page] = False
                resident_count -= 1
                evictions += 1
                victim_found = True
                break
            for entry in stash:
                heapq.heappush(heap, entry)
            return victim_found

        # Quiescent-interval fast-forward (repro.core.drain). The fast
        # path's scope (LRU + protect_pending + disjoint compact traces,
        # no timeline) already satisfies every exactness precondition,
        # so the only gates left are the process knob and the policy
        # cooperating with at least one prover (drain plans for
        # miss-bound stretches, idle-tick skipping for hit-bound ones).
        # Results are bit-identical either way.
        ff_state = drain.FFState()
        ff_eligible = drain.fast_forward_enabled()
        ff_next_try = 0
        ff_backoff = drain.BACKOFF_MIN
        ff_horizon = (max_ticks + 1) if max_ticks is not None else drain.UNBOUNDED
        ff_intervals = 0
        ff_elided = 0
        ff_wall = 0.0

        vt = vector_threshold()
        t = 0
        makespan = 0
        while done_count < p:
            arb_begin_tick(t)

            if ff_eligible and t >= ff_next_try:
                _ff_t0 = time.perf_counter()
                ff = _attempt_fast_forward(
                    ff_state, arb, t, p, q, capacity, big_trace,
                    offsets, lengths, pos, current, request_tick,
                    ready, resident, resident_count, last_stamp,
                    heap, stamp_stride, queue_len, fetches,
                    evictions, done_count, makespan, metrics,
                    served_threads, served_w, probes, probe_stride,
                    ff_horizon,
                )
                if ff is None:
                    if not ff_state.eligible:
                        ff_eligible = False
                    else:
                        ff_next_try = t + ff_backoff
                        ff_backoff = min(ff_backoff * 2, drain.BACKOFF_MAX)
                else:
                    ff_backoff = drain.BACKOFF_MIN
                    ff_intervals += 1
                    ff_elided += ff[0] - t
                    (t, ready, queue_len, fetches, evictions,
                     done_count, makespan, resident_count) = ff
                    ff_wall += time.perf_counter() - _ff_t0
                    if max_ticks is not None and t > max_ticks:
                        raise SimulationLimitError(
                            f"simulation exceeded max_ticks={max_ticks} "
                            f"({done_count}/{p} threads complete)"
                        )
                    continue
                ff_wall += time.perf_counter() - _ff_t0

            n_ready = len(ready)
            base = t * stamp_stride

            if n_ready >= vt:
                # ---- vector tick -------------------------------------
                pages = current[ready]
                flags = resident[pages]
                hit_threads = ready[flags]
                if not flags.all():
                    miss_threads = ready[~flags]
                    miss_pages = pages[~flags]
                    for i, pg in zip(miss_threads.tolist(), miss_pages.tolist()):
                        arb_enqueue(i, pg)
                    queue_len += len(miss_threads)

                will_fetch = queue_len if queue_len < q else q
                if will_fetch:
                    deficit = will_fetch - (capacity - resident_count)
                    while deficit > 0 and evict_one(base):
                        deficit -= 1
                    if deficit > 0:
                        will_fetch -= deficit

                if len(hit_threads):
                    hit_pages = pages[flags]
                    w = t - request_tick[hit_threads] + 1
                    served_threads.append(hit_threads.copy())
                    served_w.append(w)
                    last_stamp[hit_pages] = base + np.arange(len(hit_pages))
                    pos[hit_threads] += 1
                    done_mask = pos[hit_threads] >= lengths[hit_threads]
                    if done_mask.any():
                        finished = hit_threads[done_mask]
                        for i in finished.tolist():
                            metrics.record_completion(i, t + 1)
                        done_count += len(finished)
                        makespan = t + 1
                        current[finished] = -1
                        cont = hit_threads[~done_mask]
                    else:
                        cont = hit_threads
                    current[cont] = big_trace[offsets[cont] + pos[cont]]
                    request_tick[cont] = t + 1
                else:
                    cont = hit_threads  # empty

                if will_fetch:
                    granted = arb_select(will_fetch)
                    for g, i in enumerate(granted):
                        page = int(current[i])
                        resident[page] = True
                        resident_count += 1
                        stamp = base + p + g
                        last_stamp[page] = stamp
                        heapq.heappush(heap, (stamp, page))
                        fetches += 1
                    queue_len -= len(granted)
                    new_ready = np.concatenate(
                        [cont, np.asarray(granted, dtype=np.int64)]
                    )
                    new_ready.sort()
                    ready = new_ready
                else:
                    ready = cont
            else:
                # ---- scalar tick (same semantics, python loop) -------
                hits: list[int] = []
                serve_order = 0
                for i in ready.tolist():
                    page = int(current[i])
                    if resident[page]:
                        hits.append(i)
                    else:
                        arb_enqueue(i, page)
                        queue_len += 1

                will_fetch = queue_len if queue_len < q else q
                if will_fetch:
                    deficit = will_fetch - (capacity - resident_count)
                    while deficit > 0 and evict_one(base):
                        deficit -= 1
                    if deficit > 0:
                        will_fetch -= deficit

                cont_list: list[int] = []
                if hits:
                    hit_w = np.empty(len(hits), dtype=np.int64)
                    for i in hits:
                        page = int(current[i])
                        last_stamp[page] = base + serve_order
                        hit_w[serve_order] = t - int(request_tick[i]) + 1
                        serve_order += 1
                        j = int(pos[i]) + 1
                        if j >= lengths[i]:
                            metrics.record_completion(i, t + 1)
                            done_count += 1
                            makespan = t + 1
                            current[i] = -1
                        else:
                            pos[i] = j
                            current[i] = big_trace[offsets[i] + j]
                            request_tick[i] = t + 1
                            cont_list.append(i)
                    served_threads.append(np.asarray(hits, dtype=np.int64))
                    served_w.append(hit_w)

                if will_fetch:
                    granted = arb_select(will_fetch)
                    for g, i in enumerate(granted):
                        page = int(current[i])
                        resident[page] = True
                        resident_count += 1
                        stamp = base + p + g
                        last_stamp[page] = stamp
                        heapq.heappush(heap, (stamp, page))
                        fetches += 1
                    queue_len -= len(granted)
                    cont_list.extend(granted)
                    cont_list.sort()
                ready = np.asarray(cont_list, dtype=np.int64)

            if probes and t % probe_stride == 0:
                ready_mask = np.zeros(p, dtype=bool)
                ready_mask[ready] = True
                blocked = (current >= 0) & ~ready_mask
                stall_age = np.where(
                    blocked, t + 1 - request_tick, 0
                ).astype(np.int64)
                sample = ProbeSample(
                    tick=t,
                    hbm_occupancy=resident_count,
                    queue_depth=queue_len,
                    ready_threads=len(ready),
                    channels_busy=len(granted) if will_fetch else 0,
                    channels_total=q,
                    fetches=fetches,
                    evictions=evictions,
                    blocked=blocked,
                    stall_age=stall_age,
                )
                for probe in probes:
                    probe.on_sample(sample)
            t += 1
            if max_ticks is not None and t > max_ticks:
                raise SimulationLimitError(
                    f"simulation exceeded max_ticks={max_ticks} "
                    f"({done_count}/{p} threads complete)"
                )

        # ---- aggregate the chronological serve log into histograms ----
        metrics.fetches = fetches
        metrics.evictions = evictions
        if served_threads:
            all_threads = np.concatenate(served_threads)
            all_w = np.concatenate(served_w)
            max_w = int(all_w.max())
            keys = all_threads * (max_w + 1) + all_w
            unique_keys, counts = np.unique(keys, return_counts=True)
            for key, count in zip(unique_keys.tolist(), counts.tolist()):
                thread, w = divmod(key, max_w + 1)
                hist = metrics.histograms[thread]
                hist[w] = hist.get(w, 0) + count
            if metrics.response_logs is not None:
                # A core is served at most once per tick, so slicing the
                # chronological log by thread yields each thread's
                # responses in exactly the reference engine's append
                # order (tick order, one entry per serve).
                order = np.argsort(all_threads, kind="stable")
                sorted_w = all_w[order]
                bounds = np.searchsorted(
                    all_threads[order], np.arange(p + 1)
                )
                for i in range(p):
                    metrics.response_logs[i] = sorted_w[bounds[i] : bounds[i + 1]]
        remap_count = getattr(arb, "remap_count", 0)
        if ff_wall:
            _record_ff_phase(ff_wall)
        drain.record_ff_engagement(cfg.arbitration, ff_state)
        result = metrics.finalize(
            makespan=makespan,
            ticks=t,
            remap_count=remap_count,
            config=cfg,
            wall_time_s=time.perf_counter() - start,
            ff_intervals=ff_intervals,
            ff_elided_ticks=ff_elided,
        )
        for probe in probes:
            probe.on_run_end(result)
        return result


def _normalize_traces(traces):
    """(arrays, attestation-or-None) for a Workload or raw sequence."""
    attestation = getattr(traces, "attestation", None)
    if attestation is not None:
        return traces.traces, attestation
    arrays = [
        np.ascontiguousarray(np.asarray(t, dtype=np.int64)) for t in traces
    ]
    return arrays, None


def _resolve(arrays, attestation, config: SimulationConfig, engine: str | None):
    """Pick the engine for these inputs: ('fast'|'reference', attestation)."""
    if engine is None:
        engine = _default_engine
    if engine not in ENGINE_CHOICES:
        raise ValueError(f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")
    if engine != "reference" and _config_supported(config) and len(arrays):
        if attestation is None:
            attestation = _attest_arrays(arrays)
        if _attestation_ok(attestation):
            return "fast", attestation
    if engine == "fast":
        raise ValueError(
            "engine='fast' requested but the configuration is outside the "
            "fast path (needs LRU, protect_pending, disjoint compact "
            "traces, no timeline)"
        )
    return "reference", attestation


def resolve_engine(
    traces, config: SimulationConfig, engine: str | None = None
) -> str:
    """The engine :func:`simulate` would use: ``"fast"`` or ``"reference"``.

    Raises exactly when :func:`simulate` would (unknown engine name, or
    ``engine="fast"`` on an ineligible configuration). Used by run
    manifests to record the engine that actually executes.
    """
    arrays, attestation = _normalize_traces(traces)
    return _resolve(arrays, attestation, config, engine)[0]


def _record_ff_phase(seconds: float) -> None:
    """Observe accumulated fast-forward attempt/apply wall time (no-op
    without an active campaign registry; import deferred to keep the
    core engines free of an obs dependency at import time)."""
    from ..obs.metrics import record_phase

    record_phase("fast_forward", seconds)


def _record_run_metrics(engine_name: str, result: SimulationResult) -> None:
    """Engine-level campaign metrics for one finished run.

    Called with the same counters and the same ``simulate`` phase
    observation by every dispatch path — :func:`simulate` and the batch
    engine's per-lane accounting — so all engines are sampled
    identically. A single ``is None`` check when no registry is active.
    """
    from ..obs.metrics import active_registry, record_phase

    registry = active_registry()
    if registry is None:
        return
    record_phase("simulate", result.wall_time_s)
    registry.counter(
        "repro_engine_runs_total", "simulation runs by engine"
    ).inc(1, engine=engine_name)
    if result.ff_intervals:
        registry.counter(
            "repro_ff_intervals_total", "quiescent intervals fast-forwarded"
        ).inc(result.ff_intervals)
        registry.counter(
            "repro_ff_elided_ticks_total",
            "simulated ticks elided by fast-forward",
        ).inc(result.ff_elided_ticks)


def simulate(
    traces,
    config: SimulationConfig,
    engine: str | None = None,
    manifest_path=None,
) -> SimulationResult:
    """Run with the fast path when supported, else the reference engine.

    Parameters
    ----------
    traces:
        A :class:`repro.traces.Workload` (preferred — its build-time
        :class:`~repro.traces.base.PageAttestation` makes eligibility an
        O(1) check) or a sequence of per-core page arrays (scanned on
        every call).
    config:
        Model and policy parameters.
    engine:
        ``"auto"`` dispatches by eligibility, ``"reference"`` forces the
        scalar engine, ``"fast"`` forces the vectorized engine (raising
        ``ValueError`` when the configuration is outside its scope).
        ``None`` uses the process default (:func:`set_default_engine`).
    manifest_path:
        When given, write a :class:`repro.obs.RunManifest` JSON there
        after the run: config, workload identity, resolved engine,
        semantics version, host info, and a wall-time breakdown.
    """
    t0 = time.perf_counter()
    arrays, attestation = _normalize_traces(traces)
    chosen, attestation = _resolve(arrays, attestation, config, engine)
    dispatch_s = time.perf_counter() - t0
    if chosen == "fast":
        result = FastSimulator(arrays, config, attestation=attestation).run()
    else:
        result = Simulator(arrays, config).run()
    _record_run_metrics(chosen, result)
    if manifest_path is not None:
        from ..obs.manifest import RunManifest

        RunManifest.build(
            config=config,
            engine=chosen,
            traces=traces,
            timings={
                "dispatch_s": dispatch_s,
                "run_s": result.wall_time_s,
                "total_s": time.perf_counter() - t0,
            },
            result=result,
        ).write(manifest_path)
    return result
