"""The HBM+DRAM model simulator (paper sections 2 and 3.1).

The simulator executes the paper's five-step tick verbatim:

1. If ``t`` is a multiple of the remap period ``T``, remap priorities.
2. For each current request ``r*_i`` not resident in HBM, add it to the
   DRAM request queue (each core has at most one outstanding request).
3. If there are more queued requests than empty HBM slots, evict up to
   ``q`` pages by the replacement policy.
4. For each current request resident in HBM, serve it to its core.
5. Retrieve up to ``q`` queued pages from DRAM into HBM (the far
   channels), removing them from the queue.

A core that is served its request at tick ``t`` issues its next request
at tick ``t + 1``; a core whose request is queued does nothing until the
page arrives. Response time of a serve at tick ``t`` for a request
issued at tick ``t0`` is ``t - t0 + 1``, so hits cost exactly 1 tick and
misses at least 2 (section 4).

Implementation notes
--------------------
* Steps 2 and 4 are split into a *classify* pass and a *serve* pass with
  eviction in between, exactly preserving the paper's ordering: an
  eviction at step 3 can remove a page that step 2 saw resident, in
  which case step 4 does not serve it and the core retries next tick.
* Only unblocked cores do per-tick work. Cores waiting on DRAM wake
  when their page is fetched, so total work is proportional to the
  total number of page references plus fetches — the floor for a
  faithful tick-level simulator (see the profiling-first guidance in
  the project's performance notes).
* The engine is tolerant of non-disjoint traces (pages shared between
  cores) even though the model's Property 1 assumes disjointness: a
  fetch of an already-resident page becomes a no-op and the waiting
  core is woken. With shared pages the ``protect_pending`` bookkeeping
  is best-effort (a set, not a refcount).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from .arbitration import make_arbitration_policy
from .config import SimulationConfig
from .dram import DramGeometry
from .metrics import MetricsCollector, SimulationResult
from .replacement import BeladyPolicy, make_replacement_policy

__all__ = [
    "ENGINE_SEMANTICS_VERSION",
    "Simulator",
    "SimulationLimitError",
    "run_simulation",
]

#: Version tag for the tick semantics every engine implements (the
#: five-step tick above plus the tie-breaking rules in docs/MODEL.md).
#: Persistent result caches key on it: bump whenever a change alters
#: *any* simulator output for *any* (workload, config), so stale cached
#: metrics can never be replayed as current ones. Pure speedups that
#: keep results bit-identical must NOT bump it.
ENGINE_SEMANTICS_VERSION = 1

_EMPTY: frozenset[int] = frozenset()


class SimulationLimitError(RuntimeError):
    """Raised when a run exceeds ``SimulationConfig.max_ticks``."""


def _next_use_indices(trace: np.ndarray) -> np.ndarray:
    """For each position j, the next position j' > j with the same page.

    Positions with no later occurrence get ``-1``. Used only by the
    Belady replacement baseline.
    """
    n = len(trace)
    nxt = np.full(n, -1, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for j in range(n - 1, -1, -1):
        page = int(trace[j])
        nxt[j] = last_seen.get(page, -1)
        last_seen[page] = j
    return nxt


class Simulator:
    """One-shot simulator for a workload under a :class:`SimulationConfig`.

    Parameters
    ----------
    traces:
        One page-reference sequence per core (anything accepted by
        ``np.asarray`` with an integer dtype). Pages are opaque ids;
        use :class:`repro.traces.Workload` to namespace per-core pages
        disjointly as the model requires.
    config:
        Model and policy parameters.
    """

    def __init__(
        self,
        traces: Sequence[np.ndarray | Sequence[int]],
        config: SimulationConfig,
    ) -> None:
        if len(traces) == 0:
            raise ValueError("workload must contain at least one trace")
        self.config = config
        self.traces = [
            np.ascontiguousarray(np.asarray(t, dtype=np.int64)) for t in traces
        ]
        self.num_threads = len(self.traces)

    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return its metrics."""
        start = time.perf_counter()
        cfg = self.config
        p = self.num_threads
        q = cfg.channels
        rng = np.random.default_rng(cfg.seed)

        policy = make_replacement_policy(cfg.replacement, cfg.hbm_slots, rng=rng)
        arb = make_arbitration_policy(
            cfg.arbitration,
            p,
            remap_period=cfg.remap_period,
            rng=rng,
            dram_geometry=DramGeometry(cfg.dram_banks, cfg.dram_row_pages),
        )
        metrics = MetricsCollector(p, record_responses=cfg.record_responses)

        # Residency membership is the hottest check in the loop; policies
        # expose their page -> * mapping so the engine can use a raw
        # ``in dict`` test instead of a Python-level __contains__ call.
        residency = policy.residency

        belady = policy if isinstance(policy, BeladyPolicy) else None
        next_use = (
            [_next_use_indices(t) for t in self.traces] if belady is not None else None
        )

        # Python-int trace copies: iterating numpy scalars costs a boxing
        # per element; tolist() pays it once up front.
        traces = [t.tolist() for t in self.traces]
        lengths = [len(t) for t in traces]

        track_protected = cfg.protect_pending
        protected: set[int] | frozenset[int] = set() if track_protected else _EMPTY

        current: list[int | None] = [None] * p
        request_tick = [0] * p
        pos = [0] * p
        ready: list[int] = []
        done_count = 0
        for i in range(p):
            if lengths[i] == 0:
                metrics.record_completion(i, 0)
                done_count += 1
            else:
                current[i] = traces[i][0]
                ready.append(i)
                if track_protected:
                    protected.add(traces[i][0])  # type: ignore[union-attr]

        timeline: list[tuple[int, int, int, int]] | None = (
            [] if cfg.collect_timeline else None
        )
        timeline_stride = cfg.timeline_stride
        max_ticks = cfg.max_ticks

        # Observability: probes are sampled every probe_stride ticks.
        # With no probes attached this costs one falsy check per tick
        # (the import and the run hooks never execute).
        probes = cfg.probes
        probe_stride = cfg.probe_stride
        if probes:
            from ..obs.probe import ProbeSample

            for probe in probes:
                probe.on_run_start(p, cfg)

        # Hot-loop bindings: every name below is read once per tick (or
        # once per served request), so local variables and C-level bound
        # methods replace attribute chains and Python-level dispatch.
        arb_begin_tick = arb.begin_tick
        arb_enqueue = arb.enqueue
        arb_select = arb.select
        policy_touch = policy.touch_fast  # None when touches are no-ops
        policy_evict = policy.evict
        policy_insert = policy.insert
        histograms = metrics.histograms
        response_logs = metrics.response_logs
        capacity = policy.capacity

        # The engine tracks the queue length itself (each core has at
        # most one outstanding request), saving a len() call per tick.
        queue_len = 0

        t = 0
        makespan = 0
        evictions = 0
        fetches = 0
        while done_count < p:
            # -- step 1: remap hook -------------------------------------
            arb_begin_tick(t)

            # -- step 2 (classify + enqueue misses) ----------------------
            # ``ready`` is kept sorted by core id, so classification,
            # same-tick FIFO arrivals, LRU touches, and serves all follow
            # the paper's "for each r*_i" core order deterministically.
            hits: list[int] = []
            misses: list[int] = []
            for i in ready:
                if current[i] in residency:
                    hits.append(i)
                else:
                    misses.append(i)
            if misses:
                for i in misses:
                    arb_enqueue(i, current[i])
                queue_len += len(misses)

            # -- step 3: evict to make room for this tick's fetches ------
            will_fetch = queue_len if queue_len < q else q
            if will_fetch:
                deficit = will_fetch - (capacity - len(residency))
                while deficit > 0:
                    victim = policy_evict(protected)
                    if victim is None:
                        break  # everything protected; fetch less this tick
                    evictions += 1
                    deficit -= 1
                if deficit > 0:
                    will_fetch -= deficit

            # -- step 4: serve resident requests -------------------------
            new_ready: list[int] = []
            for i in hits:
                page = current[i]
                if page not in residency:
                    # Evicted at step 3 between classify and serve; the
                    # core retries (and will enqueue) next tick.
                    new_ready.append(i)
                    continue
                if policy_touch is not None:
                    policy_touch(page)
                w = t - request_tick[i] + 1
                hist = histograms[i]
                hist[w] = hist.get(w, 0) + 1
                if response_logs is not None:
                    response_logs[i].append(w)
                j = pos[i] + 1
                if belady is not None:
                    nxt = next_use[i][pos[i]]  # type: ignore[index]
                    belady.set_future(page, None if nxt < 0 else int(nxt) - pos[i])
                if j >= lengths[i]:
                    metrics.record_completion(i, t + 1)
                    done_count += 1
                    makespan = t + 1
                    current[i] = None
                    if track_protected:
                        protected.discard(page)  # type: ignore[union-attr]
                else:
                    pos[i] = j
                    nxt_page = traces[i][j]
                    current[i] = nxt_page
                    request_tick[i] = t + 1
                    if track_protected and nxt_page != page:
                        protected.discard(page)  # type: ignore[union-attr]
                        protected.add(nxt_page)  # type: ignore[union-attr]
                    new_ready.append(i)

            # -- step 5: fetch up to q queued pages over the far channels
            if will_fetch:
                granted = arb_select(will_fetch)
                queue_len -= len(granted)
                for i in granted:
                    page = current[i]
                    if page not in residency:  # no-op for shared pages
                        policy_insert(page)
                        fetches += 1
                    new_ready.append(i)

            # Restore core-id order: new_ready is a sorted subsequence of
            # the previous ready list plus up to q granted cores, so this
            # near-sorted Timsort pass is effectively linear.
            new_ready.sort()
            ready = new_ready
            if timeline is not None and t % timeline_stride == 0:
                occupancy = len(residency)
                timeline.append((t, queue_len, occupancy, len(ready)))
            if probes and t % probe_stride == 0:
                ready_set = set(ready)
                blocked = np.zeros(p, dtype=bool)
                stall_age = np.zeros(p, dtype=np.int64)
                for i in range(p):
                    if current[i] is not None and i not in ready_set:
                        blocked[i] = True
                        stall_age[i] = t - request_tick[i] + 1
                sample = ProbeSample(
                    tick=t,
                    hbm_occupancy=len(residency),
                    queue_depth=queue_len,
                    ready_threads=len(ready),
                    channels_busy=len(granted) if will_fetch else 0,
                    channels_total=q,
                    fetches=fetches,
                    evictions=evictions,
                    blocked=blocked,
                    stall_age=stall_age,
                )
                for probe in probes:
                    probe.on_sample(sample)
            t += 1
            if max_ticks is not None and t > max_ticks:
                raise SimulationLimitError(
                    f"simulation exceeded max_ticks={max_ticks} "
                    f"({done_count}/{p} threads complete)"
                )
        metrics.evictions = evictions
        metrics.fetches = fetches

        remap_count = getattr(arb, "remap_count", 0)
        wall = time.perf_counter() - start
        result = metrics.finalize(
            makespan=makespan,
            ticks=t,
            remap_count=remap_count,
            config=cfg,
            wall_time_s=wall,
            timeline=(
                np.asarray(timeline, dtype=np.int64) if timeline is not None else None
            ),
        )
        for probe in probes:
            probe.on_run_end(result)
        return result


def run_simulation(
    traces: Sequence[np.ndarray | Sequence[int]],
    config: SimulationConfig | None = None,
    **config_kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a config (or use the given one) and run.

    >>> run_simulation([[0, 1, 0, 1]], hbm_slots=2).makespan
    6
    """
    if config is None:
        config = SimulationConfig(**config_kwargs)
    elif config_kwargs:
        config = config.replace(**config_kwargs)
    return Simulator(traces, config).run()
