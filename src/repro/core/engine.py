"""The HBM+DRAM model simulator (paper sections 2 and 3.1).

The simulator executes the paper's five-step tick verbatim:

1. If ``t`` is a multiple of the remap period ``T``, remap priorities.
2. For each current request ``r*_i`` not resident in HBM, add it to the
   DRAM request queue (each core has at most one outstanding request).
3. If there are more queued requests than empty HBM slots, evict up to
   ``q`` pages by the replacement policy.
4. For each current request resident in HBM, serve it to its core.
5. Retrieve up to ``q`` queued pages from DRAM into HBM (the far
   channels), removing them from the queue.

A core that is served its request at tick ``t`` issues its next request
at tick ``t + 1``; a core whose request is queued does nothing until the
page arrives. Response time of a serve at tick ``t`` for a request
issued at tick ``t0`` is ``t - t0 + 1``, so hits cost exactly 1 tick and
misses at least 2 (section 4).

Implementation notes
--------------------
* Steps 2 and 4 are split into a *classify* pass and a *serve* pass with
  eviction in between, exactly preserving the paper's ordering: an
  eviction at step 3 can remove a page that step 2 saw resident, in
  which case step 4 does not serve it and the core retries next tick.
* Only unblocked cores do per-tick work. Cores waiting on DRAM wake
  when their page is fetched, so total work is proportional to the
  total number of page references plus fetches — the floor for a
  faithful tick-level simulator (see the profiling-first guidance in
  the project's performance notes).
* The engine is tolerant of non-disjoint traces (pages shared between
  cores) even though the model's Property 1 assumes disjointness: a
  fetch of an already-resident page becomes a no-op and the waiting
  core is woken. With shared pages the ``protect_pending`` bookkeeping
  is best-effort (a set, not a refcount).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from . import drain
from .arbitration import make_arbitration_policy
from .config import SimulationConfig
from .dram import DramGeometry
from .metrics import MetricsCollector, SimulationResult
from .replacement import BeladyPolicy, make_replacement_policy

__all__ = [
    "ENGINE_SEMANTICS_VERSION",
    "Simulator",
    "SimulationLimitError",
    "run_simulation",
]

#: Version tag for the tick semantics every engine implements (the
#: five-step tick above plus the tie-breaking rules in docs/MODEL.md).
#: Persistent result caches key on it: bump whenever a change alters
#: *any* simulator output for *any* (workload, config), so stale cached
#: metrics can never be replayed as current ones. Pure speedups that
#: keep results bit-identical must NOT bump it.
ENGINE_SEMANTICS_VERSION = 1

_EMPTY: frozenset[int] = frozenset()


class SimulationLimitError(RuntimeError):
    """Raised when a run exceeds ``SimulationConfig.max_ticks``."""


def _next_use_indices(trace: np.ndarray) -> np.ndarray:
    """For each position j, the next position j' > j with the same page.

    Positions with no later occurrence get ``-1``. Used only by the
    Belady replacement baseline.
    """
    n = len(trace)
    nxt = np.full(n, -1, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for j in range(n - 1, -1, -1):
        page = int(trace[j])
        nxt[j] = last_seen.get(page, -1)
        last_seen[page] = j
    return nxt


def _attempt_fast_forward(
    ffstate,
    arb,
    t,
    p,
    q,
    capacity,
    traces,
    lengths,
    pos,
    current,
    request_tick,
    ready,
    residency,
    protected,
    track_protected,
    queue_len,
    fetches,
    evictions,
    done_count,
    makespan,
    metrics,
    histograms,
    response_logs,
    probes,
    probe_stride,
    ff_horizon,
):
    """One quiescent-interval fast-forward attempt at tick ``t``.

    Plans the whole queue drain (see :mod:`repro.core.drain`), and on
    success applies it in bulk — serves, response times, completions,
    evictions in exact LRU victim order, fetched-page inserts, probe
    samples — mutating the engine's state containers in place. When the
    entry tick is instead fully hit-quiescent (empty queue, every ready
    reference resident) it dispatches to the guaranteed-hit prover
    :func:`_attempt_hit_fast_forward`. ``ffstate`` (a
    :class:`repro.core.drain.FFState`) tracks prover availability and
    attempt/commit counts. Returns the updated scalars ``(t, ready,
    queue_len, fetches, evictions, done_count, makespan)``, or ``None``
    when no interval could be committed (the caller backs off and ticks
    normally).
    """
    # Entry classification: ready cores whose current reference is
    # resident serve this tick (H); the rest enqueue this tick (B).
    h_list: list[int] = []
    b_list: list[int] = []
    for i in ready:
        if current[i] in residency:
            h_list.append(i)
        else:
            b_list.append(i)

    if queue_len == 0 and not b_list:
        if not ffstate.hit_ok or not h_list:
            return None
        ffstate.attempts_hit += 1
        result = _attempt_hit_fast_forward(
            arb, t, q, traces, lengths, pos, current, request_tick,
            h_list, residency, protected, track_protected, fetches,
            evictions, done_count, makespan, metrics, histograms,
            response_logs, probes, probe_stride, ff_horizon, ffstate,
        )
        if result is not None:
            ffstate.commits_hit += 1
        return result

    if not ffstate.plan_ok:
        return None
    ffstate.attempts_miss += 1
    plan = arb.drain_plan(q, ff_horizon)
    if plan is None:
        ffstate.plan_ok = False
        return None
    h_set = set(h_list)

    # Guaranteed-miss windows: per live core, the prefix of upcoming
    # references that are certain misses (non-resident at entry, no
    # repeats within the window). The scan is capped for work-bounding
    # and by the plan's own horizon (cross-remap plans stretch to
    # max_ticks; legacy plans stop at the next remap boundary).
    scan_cap = drain.WINDOW_CAP
    if plan.horizon < drain.UNBOUNDED:
        span = plan.horizon - t
        if span < scan_cap:
            scan_cap = span if span > 1 else 1
    needs_pages = plan.needs_pages
    streams: dict[int, list[int]] = {}
    avail: dict[int, int] = {}
    completes: dict[int, bool] = {}
    for i in range(p):
        cur = current[i]
        if cur is None:
            continue
        trace = traces[i]
        length = lengths[i]
        start_pos = pos[i]
        seen = {cur}
        j = start_pos + 1
        j_max = start_pos + scan_cap
        if j_max > length:
            j_max = length
        while j < j_max:
            page = trace[j]
            if page in residency or page in seen:
                break
            seen.add(page)
            j += 1
        window = j - start_pos
        completes[i] = j >= length
        # An H core's current serve is not a grant; everything else in
        # the window (and a non-H core's whole window) needs a channel.
        avail[i] = window - 1 if i in h_set else window
        if needs_pages:
            streams[i] = trace[start_pos:j]

    sched = drain.plan_drain(
        plan,
        start=t,
        channels=q,
        capacity=capacity,
        resident0=len(residency),
        queue0=queue_len,
        h_threads=h_list,
        b_threads=b_list,
        grant_avail=avail,
        completes=completes,
        page_streams=streams if needs_pages else None,
    )
    if sched is None:
        return None
    end = sched.end

    # ---- read-only derivations (no state touched yet) ----------------
    n_h = len(h_list)
    h_pages = [current[i] for i in h_list]
    next_idx = list(pos)
    serve_pages: list[int] = []
    for i in sched.serve_threads:
        serve_pages.append(traces[i][next_idx[i]])
        next_idx[i] += 1

    total_evict = sched.total_evictions
    resident0 = len(residency)
    n_entry_victims = total_evict if total_evict < resident0 else resident0
    m_fetched_victims = total_evict - n_entry_victims
    if m_fetched_victims > len(serve_pages) - n_h:
        return None  # planner drift; unreachable by construction

    # Exact LRU victim order across the interval: entry-resident non-H
    # pages front-to-back (their relative order survives per-tick
    # protected stashing), then the entry hits in serve (core) order,
    # then interval-fetched pages in serve order. Eviction feasibility
    # in the plan guarantees per-tick eviction never needed a protected
    # page, so consuming this sequence reproduces it exactly.
    evict_list: list[int] = []
    if n_entry_victims:
        h_page_set = set(h_pages)
        for page in residency:
            if page in h_page_set:
                continue
            evict_list.append(page)
            if len(evict_list) == n_entry_victims:
                break
        if len(evict_list) < n_entry_victims:
            for page in h_pages:
                evict_list.append(page)
                if len(evict_list) == n_entry_victims:
                    break

    grant_ticks = sched.grant_ticks
    g_idx = len(grant_ticks)
    while g_idx > 0 and grant_ticks[g_idx - 1] == end - 1:
        g_idx -= 1
    inflight_threads = sched.grant_threads[g_idx:]

    serve_ticks_list = sched.serve_ticks
    s_idx = len(serve_ticks_list)
    while s_idx > 0 and serve_ticks_list[s_idx - 1] == end - 1:
        s_idx -= 1

    serve_threads_np = np.asarray(sched.serve_threads, dtype=np.int64)
    serve_ticks_np = np.asarray(sched.serve_ticks, dtype=np.int64)
    entry_rt = np.asarray(request_tick, dtype=np.int64)
    _, th_sorted, tk_sorted, w_sorted = drain.response_times(
        serve_threads_np, serve_ticks_np, entry_rt
    )
    if probes:
        entry_live = np.array([c is not None for c in current], dtype=bool)
        probe_rt = entry_rt.copy()
    fetches0 = fetches
    evictions0 = evictions

    # ---- commit -------------------------------------------------------
    plan.commit()
    drain.apply_serve_metrics(histograms, response_logs, th_sorted, w_sorted, p)

    counts = np.bincount(serve_threads_np, minlength=p)
    bounds = np.searchsorted(th_sorted, np.arange(p + 1))
    completion_tick: dict[int, int] = {}
    for i in np.flatnonzero(counts).tolist():
        served = int(counts[i])
        last_serve = int(tk_sorted[bounds[i + 1] - 1])
        j = pos[i] + served
        if j >= lengths[i]:
            ct = last_serve + 1
            metrics.record_completion(i, ct)
            done_count += 1
            if ct > makespan:
                makespan = ct
            completion_tick[i] = last_serve
            current[i] = None
            pos[i] = j - 1
        else:
            pos[i] = j
            current[i] = traces[i][j]
            request_tick[i] = last_serve + 1

    for page in evict_list:
        del residency[page]
    if n_h:
        evicted = set(evict_list)
        for page in h_pages:
            if page not in evicted:
                residency.move_to_end(page)
    fetched_pages = serve_pages[n_h:]
    for page in fetched_pages[m_fetched_victims:]:
        residency[page] = None
    inflight_pages = [current[i] for i in inflight_threads]
    for page in inflight_pages:
        residency[page] = None

    queue_len = sched.final_queue_len
    fetches += len(sched.grant_threads)
    evictions += total_evict

    if track_protected:
        protected.clear()
        for cur in current:
            if cur is not None:
                protected.add(cur)

    new_ready = [i for i in sched.serve_threads[s_idx:] if current[i] is not None]
    new_ready.extend(inflight_threads)
    new_ready.sort()

    if probes:
        from ..obs.probe import materialize_interval_samples

        materialize_interval_samples(
            probes,
            start=t,
            end=end,
            stride=probe_stride,
            channels=q,
            fetches0=fetches0,
            evictions0=evictions0,
            grants_per_tick=sched.grants_per_tick,
            evicts_per_tick=sched.evicts_per_tick,
            queue_per_tick=sched.queue_per_tick,
            resident_per_tick=sched.resident_per_tick,
            serve_threads=sched.serve_threads,
            serve_ticks=sched.serve_ticks,
            grant_threads=sched.grant_threads,
            grant_ticks=sched.grant_ticks,
            request_tick=probe_rt,
            live=entry_live,
            completion_tick=completion_tick,
        )

    ffstate.commits_miss += 1
    return end, new_ready, queue_len, fetches, evictions, done_count, makespan


def _attempt_hit_fast_forward(
    arb,
    t,
    q,
    traces,
    lengths,
    pos,
    current,
    request_tick,
    h_list,
    residency,
    protected,
    track_protected,
    fetches,
    evictions,
    done_count,
    makespan,
    metrics,
    histograms,
    response_logs,
    probes,
    probe_stride,
    ff_horizon,
    ffstate,
):
    """Bulk-retire a guaranteed-*hit* stretch starting at tick ``t``.

    Preconditions (established by the caller): the request queue is
    empty and every live core's current reference is resident. No fetch
    can then happen until some core reaches a non-resident reference,
    and without fetches there are no evictions — residency membership
    is frozen and each core serves one reference per tick while its
    *hit run* (maximal prefix of resident upcoming references) lasts.
    The interval ends one tick before the first non-completing core
    would classify a non-resident reference.

    The bulk apply replays per-tick effects exactly: response times are
    ``t - request_tick + 1`` for a core's first serve and 1 afterwards,
    the LRU order after the interval is "untouched pages first, then
    touched pages by last touch" (one ``move_to_end`` sweep), and the
    policy replays its elided ``begin_tick`` effects through
    :meth:`~repro.core.arbitration.ArbitrationPolicy.skip_idle_ticks`
    (refusal permanently disables this prover via ``ffstate.hit_ok``).
    Returns the same scalar tuple as :func:`_attempt_fast_forward` or
    ``None``.
    """
    cap = drain.WINDOW_CAP
    if ff_horizon < drain.UNBOUNDED:
        span = ff_horizon - t
        if span < cap:
            cap = span
    if cap < drain.MIN_FF_TICKS:
        return None

    # Per-core hit runs. The scan cost is proportional to the run (it
    # stops at the first non-resident reference), so failures are cheap
    # and long scans always pay for themselves in elided ticks.
    runs: dict[int, int] = {}
    comp: dict[int, bool] = {}
    for i in h_list:
        trace = traces[i]
        length = lengths[i]
        start_pos = pos[i]
        j = start_pos
        j_max = start_pos + cap
        if j_max > length:
            j_max = length
        while j < j_max and trace[j] in residency:
            j += 1
        runs[i] = j - start_pos
        comp[i] = j >= length
    noncomp = [runs[i] for i in h_list if not comp[i]]
    k = min(noncomp) if noncomp else max(runs.values())
    if k < drain.MIN_FF_TICKS:
        return None
    end = t + k

    # ---- read-only derivations (no state touched yet) ----------------
    s = {i: k if lengths[i] - pos[i] > k else lengths[i] - pos[i] for i in h_list}
    serve_pages_chrono: list[int] = []
    serve_threads: list[int] = []
    serve_ticks: list[int] = []
    for off in range(k):
        tau = t + off
        for i in h_list:
            if s[i] > off:
                serve_threads.append(i)
                serve_ticks.append(tau)
                serve_pages_chrono.append(traces[i][pos[i] + off])
    if probes:
        entry_live = np.array([c is not None for c in current], dtype=bool)
        probe_rt = np.asarray(request_tick, dtype=np.int64).copy()
    resident0 = len(residency)

    # ---- commit -------------------------------------------------------
    # The policy goes first: it either replays every elided begin_tick
    # (remaps) or refuses, in which case nothing has been mutated yet
    # and the per-tick loop takes over for good.
    if not arb.skip_idle_ticks(t, end):
        ffstate.hit_ok = False
        return None

    # LRU order after the interval: untouched pages keep their relative
    # order at the front; touched pages follow, ordered by *last* touch.
    # One move_to_end sweep in last-touch order reproduces the per-tick
    # touch sequence's final order exactly.
    last_order = list(dict.fromkeys(reversed(serve_pages_chrono)))
    for page in reversed(last_order):
        residency.move_to_end(page)

    completion_tick: dict[int, int] = {}
    new_ready: list[int] = []
    for i in h_list:
        si = s[i]
        hist = histograms[i]
        w0 = t - request_tick[i] + 1
        hist[w0] = hist.get(w0, 0) + 1
        if si > 1:
            hist[1] = hist.get(1, 0) + si - 1
        if response_logs is not None:
            response_logs[i].append(w0)
            if si > 1:
                response_logs[i].extend([1] * (si - 1))
        j = pos[i] + si
        if j >= lengths[i]:
            ct = t + si
            metrics.record_completion(i, ct)
            done_count += 1
            if ct > makespan:
                makespan = ct
            completion_tick[i] = t + si - 1
            current[i] = None
            pos[i] = j - 1
        else:
            pos[i] = j
            current[i] = traces[i][j]
            request_tick[i] = end
            new_ready.append(i)

    if track_protected:
        protected.clear()
        for cur in current:
            if cur is not None:
                protected.add(cur)

    if probes:
        from ..obs.probe import materialize_interval_samples

        materialize_interval_samples(
            probes,
            start=t,
            end=end,
            stride=probe_stride,
            channels=q,
            fetches0=fetches,
            evictions0=evictions,
            grants_per_tick=[0] * k,
            evicts_per_tick=[0] * k,
            queue_per_tick=[0] * k,
            resident_per_tick=[resident0] * k,
            serve_threads=serve_threads,
            serve_ticks=serve_ticks,
            grant_threads=[],
            grant_ticks=[],
            request_tick=probe_rt,
            live=entry_live,
            completion_tick=completion_tick,
        )

    return end, new_ready, 0, fetches, evictions, done_count, makespan


class Simulator:
    """One-shot simulator for a workload under a :class:`SimulationConfig`.

    Parameters
    ----------
    traces:
        One page-reference sequence per core (anything accepted by
        ``np.asarray`` with an integer dtype). Pages are opaque ids;
        use :class:`repro.traces.Workload` to namespace per-core pages
        disjointly as the model requires.
    config:
        Model and policy parameters.
    """

    def __init__(
        self,
        traces: Sequence[np.ndarray | Sequence[int]],
        config: SimulationConfig,
    ) -> None:
        if len(traces) == 0:
            raise ValueError("workload must contain at least one trace")
        self.config = config
        self.traces = [
            np.ascontiguousarray(np.asarray(t, dtype=np.int64)) for t in traces
        ]
        self.num_threads = len(self.traces)

    def run(self) -> SimulationResult:
        """Execute the simulation to completion and return its metrics."""
        start = time.perf_counter()
        cfg = self.config
        p = self.num_threads
        q = cfg.channels
        rng = np.random.default_rng(cfg.seed)

        policy = make_replacement_policy(cfg.replacement, cfg.hbm_slots, rng=rng)
        arb = make_arbitration_policy(
            cfg.arbitration,
            p,
            remap_period=cfg.remap_period,
            rng=rng,
            dram_geometry=DramGeometry(cfg.dram_banks, cfg.dram_row_pages),
            blacklist_threshold=cfg.blacklist_threshold,
            blacklist_clear_interval=cfg.blacklist_clear_interval,
        )
        metrics = MetricsCollector(p, record_responses=cfg.record_responses)

        # Residency membership is the hottest check in the loop; policies
        # expose their page -> * mapping so the engine can use a raw
        # ``in dict`` test instead of a Python-level __contains__ call.
        residency = policy.residency

        belady = policy if isinstance(policy, BeladyPolicy) else None
        next_use = (
            [_next_use_indices(t) for t in self.traces] if belady is not None else None
        )

        # Python-int trace copies: iterating numpy scalars costs a boxing
        # per element; tolist() pays it once up front.
        traces = [t.tolist() for t in self.traces]
        lengths = [len(t) for t in traces]

        track_protected = cfg.protect_pending
        protected: set[int] | frozenset[int] = set() if track_protected else _EMPTY

        current: list[int | None] = [None] * p
        request_tick = [0] * p
        pos = [0] * p
        ready: list[int] = []
        done_count = 0
        for i in range(p):
            if lengths[i] == 0:
                metrics.record_completion(i, 0)
                done_count += 1
            else:
                current[i] = traces[i][0]
                ready.append(i)
                if track_protected:
                    protected.add(traces[i][0])  # type: ignore[union-attr]

        timeline: list[tuple[int, int, int, int]] | None = (
            [] if cfg.collect_timeline else None
        )
        timeline_stride = cfg.timeline_stride
        max_ticks = cfg.max_ticks

        # Observability: probes are sampled every probe_stride ticks.
        # With no probes attached this costs one falsy check per tick
        # (the import and the run hooks never execute).
        probes = cfg.probes
        probe_stride = cfg.probe_stride
        if probes:
            from ..obs.probe import ProbeSample

            for probe in probes:
                probe.on_run_start(p, cfg)

        # Hot-loop bindings: every name below is read once per tick (or
        # once per served request), so local variables and C-level bound
        # methods replace attribute chains and Python-level dispatch.
        arb_begin_tick = arb.begin_tick
        arb_enqueue = arb.enqueue
        arb_select = arb.select
        policy_touch = policy.touch_fast  # None when touches are no-ops
        policy_evict = policy.evict
        policy_insert = policy.insert
        histograms = metrics.histograms
        response_logs = metrics.response_logs
        capacity = policy.capacity

        # The engine tracks the queue length itself (each core has at
        # most one outstanding request), saving a len() call per tick.
        queue_len = 0

        # Quiescent-interval fast-forward (repro.core.drain): exact only
        # under LRU + protect_pending with disjoint traces and no
        # Belady/timeline wiring. Trace disjointness is checked lazily
        # at the first attempt; a policy without a drain plan disables
        # it for the run. Results are bit-identical either way.
        ff_state = drain.FFState()
        ff_eligible = (
            drain.fast_forward_enabled()
            and cfg.replacement == "lru"
            and track_protected
            and belady is None
            and timeline is None
        )
        ff_checked_disjoint = not ff_eligible
        ff_next_try = 0
        ff_backoff = drain.BACKOFF_MIN
        ff_horizon = (max_ticks + 1) if max_ticks is not None else drain.UNBOUNDED
        ff_intervals = 0
        ff_elided = 0
        ff_wall = 0.0

        t = 0
        makespan = 0
        evictions = 0
        fetches = 0
        while done_count < p:
            # -- step 1: remap hook -------------------------------------
            arb_begin_tick(t)

            if ff_eligible and t >= ff_next_try:
                _ff_t0 = time.perf_counter()
                if not ff_checked_disjoint:
                    ff_checked_disjoint = True
                    if not drain.traces_disjoint(self.traces):
                        ff_eligible = False
                if ff_eligible:
                    ff = _attempt_fast_forward(
                        ff_state, arb, t, p, q, capacity, traces,
                        lengths, pos, current, request_tick, ready,
                        residency, protected, track_protected,
                        queue_len, fetches, evictions, done_count,
                        makespan, metrics, histograms, response_logs,
                        probes, probe_stride, ff_horizon,
                    )
                    if ff is None:
                        if not ff_state.eligible:
                            ff_eligible = False
                        else:
                            ff_next_try = t + ff_backoff
                            ff_backoff = min(ff_backoff * 2, drain.BACKOFF_MAX)
                    else:
                        ff_backoff = drain.BACKOFF_MIN
                        ff_intervals += 1
                        ff_elided += ff[0] - t
                        (t, ready, queue_len, fetches, evictions,
                         done_count, makespan) = ff
                        ff_wall += time.perf_counter() - _ff_t0
                        if max_ticks is not None and t > max_ticks:
                            raise SimulationLimitError(
                                f"simulation exceeded max_ticks={max_ticks} "
                                f"({done_count}/{p} threads complete)"
                            )
                        continue
                ff_wall += time.perf_counter() - _ff_t0

            # -- step 2 (classify + enqueue misses) ----------------------
            # ``ready`` is kept sorted by core id, so classification,
            # same-tick FIFO arrivals, LRU touches, and serves all follow
            # the paper's "for each r*_i" core order deterministically.
            hits: list[int] = []
            misses: list[int] = []
            for i in ready:
                if current[i] in residency:
                    hits.append(i)
                else:
                    misses.append(i)
            if misses:
                for i in misses:
                    arb_enqueue(i, current[i])
                queue_len += len(misses)

            # -- step 3: evict to make room for this tick's fetches ------
            will_fetch = queue_len if queue_len < q else q
            if will_fetch:
                deficit = will_fetch - (capacity - len(residency))
                while deficit > 0:
                    victim = policy_evict(protected)
                    if victim is None:
                        break  # everything protected; fetch less this tick
                    evictions += 1
                    deficit -= 1
                if deficit > 0:
                    will_fetch -= deficit

            # -- step 4: serve resident requests -------------------------
            new_ready: list[int] = []
            for i in hits:
                page = current[i]
                if page not in residency:
                    # Evicted at step 3 between classify and serve; the
                    # core retries (and will enqueue) next tick.
                    new_ready.append(i)
                    continue
                if policy_touch is not None:
                    policy_touch(page)
                w = t - request_tick[i] + 1
                hist = histograms[i]
                hist[w] = hist.get(w, 0) + 1
                if response_logs is not None:
                    response_logs[i].append(w)
                j = pos[i] + 1
                if belady is not None:
                    nxt = next_use[i][pos[i]]  # type: ignore[index]
                    belady.set_future(page, None if nxt < 0 else int(nxt) - pos[i])
                if j >= lengths[i]:
                    metrics.record_completion(i, t + 1)
                    done_count += 1
                    makespan = t + 1
                    current[i] = None
                    if track_protected:
                        protected.discard(page)  # type: ignore[union-attr]
                else:
                    pos[i] = j
                    nxt_page = traces[i][j]
                    current[i] = nxt_page
                    request_tick[i] = t + 1
                    if track_protected and nxt_page != page:
                        protected.discard(page)  # type: ignore[union-attr]
                        protected.add(nxt_page)  # type: ignore[union-attr]
                    new_ready.append(i)

            # -- step 5: fetch up to q queued pages over the far channels
            if will_fetch:
                granted = arb_select(will_fetch)
                queue_len -= len(granted)
                for i in granted:
                    page = current[i]
                    if page not in residency:  # no-op for shared pages
                        policy_insert(page)
                        fetches += 1
                    new_ready.append(i)

            # Restore core-id order: new_ready is a sorted subsequence of
            # the previous ready list plus up to q granted cores, so this
            # near-sorted Timsort pass is effectively linear.
            new_ready.sort()
            ready = new_ready
            if timeline is not None and t % timeline_stride == 0:
                occupancy = len(residency)
                timeline.append((t, queue_len, occupancy, len(ready)))
            if probes and t % probe_stride == 0:
                ready_set = set(ready)
                blocked = np.zeros(p, dtype=bool)
                stall_age = np.zeros(p, dtype=np.int64)
                for i in range(p):
                    if current[i] is not None and i not in ready_set:
                        blocked[i] = True
                        stall_age[i] = t - request_tick[i] + 1
                sample = ProbeSample(
                    tick=t,
                    hbm_occupancy=len(residency),
                    queue_depth=queue_len,
                    ready_threads=len(ready),
                    channels_busy=len(granted) if will_fetch else 0,
                    channels_total=q,
                    fetches=fetches,
                    evictions=evictions,
                    blocked=blocked,
                    stall_age=stall_age,
                )
                for probe in probes:
                    probe.on_sample(sample)
            t += 1
            if max_ticks is not None and t > max_ticks:
                raise SimulationLimitError(
                    f"simulation exceeded max_ticks={max_ticks} "
                    f"({done_count}/{p} threads complete)"
                )
        metrics.evictions = evictions
        metrics.fetches = fetches

        if ff_wall:
            from ..obs.metrics import record_phase

            record_phase("fast_forward", ff_wall)
        drain.record_ff_engagement(cfg.arbitration, ff_state)
        remap_count = getattr(arb, "remap_count", 0)
        wall = time.perf_counter() - start
        result = metrics.finalize(
            makespan=makespan,
            ticks=t,
            remap_count=remap_count,
            config=cfg,
            wall_time_s=wall,
            timeline=(
                np.asarray(timeline, dtype=np.int64) if timeline is not None else None
            ),
            ff_intervals=ff_intervals,
            ff_elided_ticks=ff_elided,
        )
        for probe in probes:
            probe.on_run_end(result)
        return result


def run_simulation(
    traces: Sequence[np.ndarray | Sequence[int]],
    config: SimulationConfig | None = None,
    **config_kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a config (or use the given one) and run.

    >>> run_simulation([[0, 1, 0, 1]], hbm_slots=2).makespan
    6
    """
    if config is None:
        config = SimulationConfig(**config_kwargs)
    elif config_kwargs:
        config = config.replace(**config_kwargs)
    return Simulator(traces, config).run()
