"""DRAM bank / row-buffer organization for FR-FCFS arbitration.

The paper (section 1.3) notes that real controllers — including,
likely, KNL's MCDRAM-miss path — arbitrate with *first-ready
first-come-first-served* (FR-FCFS [49]): among waiting requests, those
that hit a bank's currently open row ("ready" requests) are served
before older requests that would need a row activation, and ties break
by age. Much of the literature the paper cites ([32], [38]) optimizes
this basic policy.

The HBM+DRAM model has no timing distinction between row hits and row
misses (every far-channel transfer costs one tick), but FR-FCFS still
*reorders* the queue, and reordering is exactly what the paper shows
matters. This module supplies the minimal DRAM geometry needed to
express that reordering: pages map to (bank, row) by simple
interleaving, and each bank tracks its open row.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramGeometry", "BankState"]


@dataclass(frozen=True)
class DramGeometry:
    """Page-to-(bank, row) mapping.

    Consecutive pages interleave across ``banks`` (the standard layout,
    so streams spread load), and ``row_pages`` consecutive
    same-bank pages share a row. Defaults follow a DDR4-ish shape:
    16 banks, 8KiB rows of 4KiB pages -> 2 pages per row is tiny, so we
    default to a coarser 8 pages per row to make row locality visible
    at page granularity.
    """

    banks: int = 16
    row_pages: int = 8

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")
        if self.row_pages < 1:
            raise ValueError(f"row_pages must be >= 1, got {self.row_pages}")

    def bank_of(self, page: int) -> int:
        return page % self.banks

    def row_of(self, page: int) -> int:
        return (page // self.banks) // self.row_pages


class BankState:
    """Open-row tracking across all banks of a :class:`DramGeometry`."""

    def __init__(self, geometry: DramGeometry) -> None:
        self.geometry = geometry
        self._open_rows: dict[int, int] = {}

    def is_row_hit(self, page: int) -> bool:
        """Would ``page`` hit its bank's currently open row?"""
        bank = self.geometry.bank_of(page)
        return self._open_rows.get(bank) == self.geometry.row_of(page)

    def access(self, page: int) -> bool:
        """Serve ``page``: returns row-hit status and opens its row."""
        geometry = self.geometry
        bank = geometry.bank_of(page)
        row = geometry.row_of(page)
        hit = self._open_rows.get(bank) == row
        self._open_rows[bank] = row
        return hit

    def open_row(self, bank: int) -> int | None:
        return self._open_rows.get(bank)

    def reset(self) -> None:
        self._open_rows.clear()
