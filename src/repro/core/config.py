"""Simulation configuration for the HBM+DRAM model.

The model (paper section 2) is parameterized by:

* ``p`` — number of cores, implied by the workload (one request stream per core);
* ``k`` — HBM capacity in blocks ("slots"), :attr:`SimulationConfig.hbm_slots`;
* ``q`` — number of far channels between HBM and DRAM,
  :attr:`SimulationConfig.channels`;
* the block-replacement policy for HBM;
* the far-channel arbitration policy for the DRAM request queue.

All policy knobs are given by name so that configurations stay picklable and
hashable, which the sweep harness (:mod:`repro.analysis.sweep`) relies on to
run configurations in worker processes and cache results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["SimulationConfig", "REPLACEMENT_POLICIES", "ARBITRATION_POLICIES"]

#: Built-in block-replacement policy names (see :mod:`repro.core.replacement`).
#: Custom policies added via ``register_replacement_policy`` are also
#: accepted by :class:`SimulationConfig`; this tuple lists the ones the
#: paper's experiments use.
REPLACEMENT_POLICIES = (
    "lru",
    "fifo",
    "clock",
    "random",
    "mru",
    "belady",
)

#: Built-in far-channel arbitration policy names
#: (see :mod:`repro.core.arbitration`); custom registrations are also
#: accepted by :class:`SimulationConfig`.
ARBITRATION_POLICIES = (
    "fifo",
    "priority",
    "dynamic_priority",
    "cycle_priority",
    "cycle_reverse_priority",
    "interleave_priority",
    "random",
    "round_robin",
    "fr_fcfs",
    "blacklist",
    "dpq",
)

#: runtime-only observability fields, excluded from ``to_dict`` (and so
#: from sweep result-cache keys) because they cannot affect results
_OBS_ONLY_FIELDS = ("probes", "probe_stride")

#: knob fields added after result caches were first populated: elided
#: from ``to_dict`` while at their defaults, so every historical config
#: serializes — and therefore cache-keys — exactly as it always did.
#: Only configs that actually set these knobs get the new keys.
_ELIDE_AT_DEFAULT_FIELDS = ("blacklist_threshold", "blacklist_clear_interval")


@dataclass(frozen=True)
class SimulationConfig:
    """Frozen, hashable description of one simulator run.

    Parameters
    ----------
    hbm_slots:
        HBM capacity ``k`` in blocks. Each slot holds one page.
    channels:
        Number of far channels ``q`` between HBM and DRAM. At most ``q``
        pages cross the channel per tick, and at most ``q`` pages are
        evicted per tick (paper section 3.1, steps 3 and 5).
    replacement:
        Name of the HBM block-replacement policy. One of
        :data:`REPLACEMENT_POLICIES`.
    arbitration:
        Name of the far-channel arbitration policy. One of
        :data:`ARBITRATION_POLICIES`.
    remap_period:
        Priority re-permutation interval ``T`` in ticks, used by the
        Dynamic/Cycle/Interleave priority schemes. The paper expresses
        ``T`` as a multiple of ``k``; callers usually pass
        ``multiplier * hbm_slots``. Ignored by FIFO and static Priority.
    seed:
        Seed for every stochastic component (Dynamic Priority shuffles,
        Random arbitration, Random replacement). Identical seeds give
        bit-identical simulations.
    protect_pending:
        If True (default), a page that is the *current* request of some
        core may not be chosen as an eviction victim. This prevents the
        degenerate livelock where a freshly fetched page is evicted at
        step 3 of the next tick before it can be served at step 4. The
        paper's pseudo-code does not discuss the case; disabling this
        reproduces the paper's literal step ordering.
    record_responses:
        If True, keep every individual response time (memory-heavy; meant
        for tests and small runs). Streaming statistics are always kept.
    collect_timeline:
        If True, record per-tick aggregate occupancy/queue-length samples
        every ``timeline_stride`` ticks.
    timeline_stride:
        Sampling stride for the timeline (ticks between samples).
    max_ticks:
        Safety valve: abort with :class:`~repro.core.engine.SimulationLimitError`
        if the simulation exceeds this many ticks. ``None`` means unbounded.
    dram_banks / dram_row_pages:
        DRAM geometry for the FR-FCFS arbitration policy (pages
        interleave across ``dram_banks``; ``dram_row_pages`` consecutive
        same-bank pages share a row). Ignored by every other policy.
    probes:
        Tuple of :class:`repro.obs.Probe` objects both engines sample
        into every ``probe_stride`` ticks. Probes are pure observers —
        results are bit-identical with and without them — so they are
        excluded from equality, hashing, and :meth:`to_dict` (and hence
        from sweep result-cache keys).
    probe_stride:
        Ticks between probe samples (tick ``t`` is sampled when
        ``t % probe_stride == 0``). Ignored when ``probes`` is empty.
    """

    hbm_slots: int
    channels: int = 1
    replacement: str = "lru"
    arbitration: str = "fifo"
    remap_period: int | None = None
    seed: int = 0
    protect_pending: bool = True
    record_responses: bool = False
    collect_timeline: bool = False
    timeline_stride: int = 1024
    max_ticks: int | None = None
    dram_banks: int = 16
    dram_row_pages: int = 8
    blacklist_threshold: int = 4
    blacklist_clear_interval: int = 1000
    probes: tuple = field(default=(), compare=False, repr=False)
    probe_stride: int = field(default=1, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.hbm_slots < 1:
            raise ValueError(f"hbm_slots must be >= 1, got {self.hbm_slots}")
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        from .arbitration import arbitration_policy_names
        from .replacement import replacement_policy_names

        if self.replacement not in replacement_policy_names():
            raise ValueError(
                f"unknown replacement policy {self.replacement!r}; "
                f"expected one of {replacement_policy_names()}"
            )
        if self.arbitration not in arbitration_policy_names():
            raise ValueError(
                f"unknown arbitration policy {self.arbitration!r}; "
                f"expected one of {arbitration_policy_names()}"
            )
        if self.remap_period is not None and self.remap_period < 1:
            raise ValueError(f"remap_period must be >= 1, got {self.remap_period}")
        if self.timeline_stride < 1:
            raise ValueError(
                f"timeline_stride must be >= 1, got {self.timeline_stride}"
            )
        if self.max_ticks is not None and self.max_ticks < 1:
            raise ValueError(f"max_ticks must be >= 1, got {self.max_ticks}")
        if self.dram_banks < 1 or self.dram_row_pages < 1:
            raise ValueError(
                f"dram_banks and dram_row_pages must be >= 1, got "
                f"{self.dram_banks}, {self.dram_row_pages}"
            )
        if self.blacklist_threshold < 1 or self.blacklist_clear_interval < 1:
            raise ValueError(
                "blacklist_threshold and blacklist_clear_interval must be "
                f">= 1, got {self.blacklist_threshold}, "
                f"{self.blacklist_clear_interval}"
            )
        if not isinstance(self.probes, tuple):
            object.__setattr__(self, "probes", tuple(self.probes))
        if self.probe_stride < 1:
            raise ValueError(
                f"probe_stride must be >= 1, got {self.probe_stride}"
            )

    def replace(self, **changes: Any) -> "SimulationConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, e.g. for CSV/JSON result rows.

        Observability-only fields (``probes``, ``probe_stride``) are
        excluded: they never alter simulation outputs, so serialized
        configs — and the result-cache keys derived from them — stay
        identical whether or not a run was probed. Late-added knob
        fields (:data:`_ELIDE_AT_DEFAULT_FIELDS`) are excluded while at
        their defaults, so configs from before those knobs existed keep
        their historical serialization and result caches stay warm.
        """
        out: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if f.name in _OBS_ONLY_FIELDS:
                continue
            value = getattr(self, f.name)
            if f.name in _ELIDE_AT_DEFAULT_FIELDS and value == f.default:
                continue
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})
