"""HBM block-replacement policies.

The paper's theory (and experiments) use LRU; section 1.1 argues that
"HBM replacement is not the problem" — LRU and variants retain their
classical guarantees in the HBM setting. We implement the policies the
caching literature the paper cites discusses (LRU, FIFO, CLOCK [36]),
plus Random and MRU baselines and an approximate offline Belady policy
used by the "minimizing misses is not minimizing makespan" ablation
(paper sections 1 and 2, citing Lopez-Ortiz & Salinger [43]).

A policy owns the *residency set* of the HBM: membership, insertion,
touch-on-hit, and victim selection. All operations are O(1) amortized
except CLOCK's hand sweep and protected-victim scans, which are bounded
by the number of protected pages (at most one per core).

Victim selection takes a ``protected`` container: pages that are the
current request of some core and therefore may not be evicted when
``SimulationConfig.protect_pending`` is set (see :mod:`repro.core.config`).
``evict`` returns ``None`` when every resident page is protected; the
engine then simply fetches fewer pages on that tick.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Container, Iterator, Mapping

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOReplacementPolicy",
    "ClockPolicy",
    "RandomPolicy",
    "MRUPolicy",
    "BeladyPolicy",
    "make_replacement_policy",
    "register_replacement_policy",
    "replacement_policy_names",
]

_EMPTY: frozenset[int] = frozenset()


class ReplacementPolicy(ABC):
    """Interface shared by all HBM replacement policies."""

    #: registry name, set by subclasses
    name: str = ""

    #: read-only view whose keys are the resident pages. Residency checks
    #: dominate the engine's hot loop; exposing the underlying mapping
    #: lets the engine use a raw ``page in dict`` test instead of a
    #: Python-level ``__contains__`` dispatch. Subclasses bind this once
    #: in ``__init__`` and never rebind the mapping afterwards.
    residency: Mapping[int, Any]

    #: optional C-level bound callable equivalent to :meth:`touch`, or
    #: ``None`` when a touch is a no-op. The engine calls this once per
    #: hit, so avoiding a Python-level method frame matters; policies
    #: whose touch needs Python logic bind their own ``touch`` here.
    touch_fast: Any = None

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity

    # -- residency ---------------------------------------------------------
    @abstractmethod
    def __contains__(self, page: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def pages(self) -> Iterator[int]:
        """Iterate over resident pages (order unspecified)."""

    # -- mutation ----------------------------------------------------------
    @abstractmethod
    def insert(self, page: int) -> None:
        """Make ``page`` resident. Requires free space and non-residency."""

    @abstractmethod
    def touch(self, page: int) -> None:
        """Record a use (serve) of resident ``page``."""

    @abstractmethod
    def evict(self, protected: Container[int] = _EMPTY) -> int | None:
        """Remove and return a victim page, or ``None`` if all protected."""

    @abstractmethod
    def remove(self, page: int) -> None:
        """Forcibly remove resident ``page`` (used by flush/invalidate)."""

    # -- helpers -----------------------------------------------------------
    @property
    def free_slots(self) -> int:
        return self.capacity - len(self)

    def clear(self) -> None:
        """Remove every resident page."""
        for page in list(self.pages()):
            self.remove(page)


class _OrderedDictPolicy(ReplacementPolicy):
    """Shared machinery for policies backed by an :class:`OrderedDict`.

    The dict order encodes the eviction order: the *front* of the dict is
    the next victim. Subclasses choose whether a touch reorders
    (LRU / MRU) or not (FIFO), and which end is the victim end.
    """

    #: evict from the front (oldest) when True, from the back when False
    _victim_front: bool = True

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()
        self.residency = self._order

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> Iterator[int]:
        return iter(self._order)

    def insert(self, page: int) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already resident")
        if len(self._order) >= self.capacity:
            raise ValueError("HBM full; evict before insert")
        self._order[page] = None

    def remove(self, page: int) -> None:
        del self._order[page]

    def evict(self, protected: Container[int] = _EMPTY) -> int | None:
        order = self._order
        last = not self._victim_front
        stash: list[int] = []
        victim: int | None = None
        while order:
            page, _ = order.popitem(last=last)
            if page in protected:
                stash.append(page)
            else:
                victim = page
                break
        # Reinsert protected pages at the victim end, preserving their
        # relative order (the last page stashed was the closest to the
        # middle, so it goes back innermost).
        for page in reversed(stash):
            order[page] = None
            order.move_to_end(page, last=last)
        return victim


class LRUPolicy(_OrderedDictPolicy):
    """Least Recently Used: evict the page whose last use is oldest."""

    name = "lru"
    _victim_front = True

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.touch_fast = self._order.move_to_end

    def touch(self, page: int) -> None:
        self._order.move_to_end(page)  # back of the dict = most recent


class FIFOReplacementPolicy(_OrderedDictPolicy):
    """First-In First-Out: evict in insertion order; hits do not reorder."""

    name = "fifo"
    _victim_front = True

    def touch(self, page: int) -> None:  # noqa: D102 - interface no-op
        pass


class MRUPolicy(_OrderedDictPolicy):
    """Most Recently Used: evict the page used most recently.

    A known-good baseline for cyclic scans (the regime of the paper's
    Dataset 3), included for the replacement-policy ablation.
    """

    name = "mru"
    _victim_front = False

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.touch_fast = self._order.move_to_end

    def touch(self, page: int) -> None:
        self._order.move_to_end(page)


class ClockPolicy(ReplacementPolicy):
    """CLOCK (second-chance) replacement [36].

    Pages sit in a circular buffer of ``capacity`` slots with a reference
    bit. A touch sets the bit; the eviction hand sweeps, clearing bits,
    and evicts the first unreferenced, unprotected page.
    """

    name = "clock"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._slots: list[int | None] = [None] * capacity
        self._ref: list[bool] = [False] * capacity
        self._index: dict[int, int] = {}
        self.residency = self._index
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._hand = 0
        self.touch_fast = self.touch

    def __contains__(self, page: int) -> bool:
        return page in self._index

    def __len__(self) -> int:
        return len(self._index)

    def pages(self) -> Iterator[int]:
        return iter(self._index)

    def insert(self, page: int) -> None:
        if page in self._index:
            raise ValueError(f"page {page} already resident")
        if not self._free:
            raise ValueError("HBM full; evict before insert")
        slot = self._free.pop()
        self._slots[slot] = page
        self._ref[slot] = True  # second chance for fresh arrivals
        self._index[page] = slot

    def touch(self, page: int) -> None:
        self._ref[self._index[page]] = True

    def remove(self, page: int) -> None:
        slot = self._index.pop(page)
        self._slots[slot] = None
        self._ref[slot] = False
        self._free.append(slot)

    def evict(self, protected: Container[int] = _EMPTY) -> int | None:
        if not self._index:
            return None
        capacity = self.capacity
        slots, ref = self._slots, self._ref
        hand = self._hand
        # Two full sweeps suffice: the first may only clear reference
        # bits, the second must then find an unreferenced page — unless
        # every resident page is protected.
        for _ in range(2 * capacity):
            page = slots[hand]
            if page is not None and page not in protected:
                if ref[hand]:
                    ref[hand] = False
                else:
                    self._hand = (hand + 1) % capacity
                    self.remove(page)
                    return page
            hand = (hand + 1) % capacity
        # Two sweeps visit every unprotected page twice (clear, then
        # evict), so reaching this point means everything is protected.
        self._hand = hand
        return None


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (memoryless baseline)."""

    name = "random"

    def __init__(self, capacity: int, rng: np.random.Generator | None = None) -> None:
        super().__init__(capacity)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._pages: list[int] = []
        self._index: dict[int, int] = {}
        self.residency = self._index

    def __contains__(self, page: int) -> bool:
        return page in self._index

    def __len__(self) -> int:
        return len(self._pages)

    def pages(self) -> Iterator[int]:
        return iter(self._pages)

    def insert(self, page: int) -> None:
        if page in self._index:
            raise ValueError(f"page {page} already resident")
        if len(self._pages) >= self.capacity:
            raise ValueError("HBM full; evict before insert")
        self._index[page] = len(self._pages)
        self._pages.append(page)

    def touch(self, page: int) -> None:  # noqa: D102 - interface no-op
        pass

    def remove(self, page: int) -> None:
        idx = self._index.pop(page)
        last = self._pages.pop()
        if last != page:
            self._pages[idx] = last
            self._index[last] = idx

    def evict(self, protected: Container[int] = _EMPTY) -> int | None:
        n = len(self._pages)
        if n == 0:
            return None
        # A few random draws cover the common case cheaply; fall back to
        # a linear scan when the protected set dominates.
        for _ in range(8):
            page = self._pages[int(self._rng.integers(n))]
            if page not in protected:
                self.remove(page)
                return page
        for page in self._pages:
            if page not in protected:
                self.remove(page)
                return page
        return None


class BeladyPolicy(ReplacementPolicy):
    """Approximate offline Belady (furthest-in-future) replacement.

    Evicts the resident page whose next use is furthest away, where the
    engine supplies each page's next-use key via :meth:`set_future`
    (pages never used again get ``None`` = infinity). Because the model
    interleaves per-core streams at simulation time, the *global* next
    use time of a page is not known in advance; we use the owning core's
    stream position as the key, which makes this the per-stream MIN
    (Belady) rule — an upper-bound baseline on achievable hit rate used
    in the "misses are not makespan" ablation, not a true offline OPT
    for makespan (no such policy is computable online; see paper
    section 2).
    """

    name = "belady"
    _INF = float("inf")

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._resident: dict[int, float] = {}  # page -> next-use key
        self.residency = self._resident
        self._heap: list[tuple[float, int]] = []  # (-key, page), lazy

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def pages(self) -> Iterator[int]:
        return iter(self._resident)

    def set_future(self, page: int, next_use: float | None) -> None:
        """Update ``page``'s next-use key (``None`` = never used again)."""
        key = self._INF if next_use is None else float(next_use)
        if page in self._resident:
            self._resident[page] = key
            heapq.heappush(self._heap, (-key, page))

    def insert(self, page: int) -> None:
        if page in self._resident:
            raise ValueError(f"page {page} already resident")
        if len(self._resident) >= self.capacity:
            raise ValueError("HBM full; evict before insert")
        self._resident[page] = self._INF
        heapq.heappush(self._heap, (-self._INF, page))

    def touch(self, page: int) -> None:  # noqa: D102 - future set by engine
        pass

    def remove(self, page: int) -> None:
        del self._resident[page]  # stale heap entries skipped lazily

    def evict(self, protected: Container[int] = _EMPTY) -> int | None:
        heap, resident = self._heap, self._resident
        skipped: list[tuple[float, int]] = []
        victim: int | None = None
        while heap:
            negkey, page = heapq.heappop(heap)
            key = resident.get(page)
            if key is None or -negkey != key:
                continue  # stale entry
            if page in protected:
                skipped.append((negkey, page))
                continue
            victim = page
            break
        for entry in skipped:
            heapq.heappush(heap, entry)
        if victim is not None:
            del resident[victim]
        return victim


_POLICY_CLASSES: dict[str, type[ReplacementPolicy]] = {
    cls.name: cls
    for cls in (
        LRUPolicy,
        FIFOReplacementPolicy,
        ClockPolicy,
        RandomPolicy,
        MRUPolicy,
        BeladyPolicy,
    )
}


def register_replacement_policy(cls: type[ReplacementPolicy]) -> type[ReplacementPolicy]:
    """Register a custom replacement policy under ``cls.name``.

    Usable as a class decorator. The policy becomes constructible by
    name through :func:`make_replacement_policy` and therefore usable
    in :class:`~repro.core.config.SimulationConfig` (whose name check
    consults this registry). Custom constructors must accept
    ``(capacity)`` and may accept an ``rng`` keyword.
    """
    if not cls.name:
        raise ValueError("policy class must set a non-empty `name`")
    if cls.name in _POLICY_CLASSES and _POLICY_CLASSES[cls.name] is not cls:
        raise ValueError(f"replacement policy {cls.name!r} already registered")
    _POLICY_CLASSES[cls.name] = cls
    return cls


def replacement_policy_names() -> tuple[str, ...]:
    """Registered replacement policy names (built-in + custom)."""
    return tuple(sorted(_POLICY_CLASSES))


def make_replacement_policy(
    name: str,
    capacity: int,
    rng: np.random.Generator | None = None,
) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name.

    ``rng`` is forwarded to policies whose constructor accepts it and
    omitted for the rest.
    """
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {sorted(_POLICY_CLASSES)}"
        ) from None
    import inspect

    if "rng" in inspect.signature(cls).parameters:
        return cls(capacity, rng=rng)
    return cls(capacity)
