"""Command-line interface: ``python -m repro`` / ``hbm-repro``.

Subcommands
-----------
``list``
    Show the experiment registry (id + description).
``run <id> [...]``
    Run one or more experiments (or ``all``) and print their reports;
    optionally write CSV + text artifacts to an output directory.
``simulate``
    One-off simulation of a generated workload with chosen policies.
``workloads``
    List registered workload generators.
``profile``
    Locality characterization of a generated workload (reuse
    distances, Mattson miss-ratio curve, working sets) — the tool used
    to size HBM for the experiment regimes.
``trace``
    Run one workload with probes attached and export its timeline as
    Chrome ``trace_event`` JSON (opens in Perfetto), JSONL, and a run
    manifest, plus an ASCII rendering on the terminal. With ``--merge``
    it instead combines previously exported per-job traces into one
    multi-track document.
``bench``
    Bench-regression tracking: ``bench diff`` compares the current
    ``BENCH_*.json`` results against the committed
    ``benchmarks/baseline.json`` (non-zero exit on regression);
    ``bench record`` folds the current results into the baseline.
``cache``
    Inspect or clear the result store and workload cache:
    ``cache stats`` / ``cache clear``, scoped with ``--results-only``
    or ``--workloads-only``, against any ``--store`` backend.

Global ``-v/--verbose`` and ``-q/--quiet`` flags control the
``repro.*`` logger verbosity (default INFO; see :mod:`repro.obs.log`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import (
    SweepFailure,
    SweepRunner,
    parse_shard,
    set_execution_defaults,
    set_result_cache_default,
    set_store_default,
    set_telemetry_defaults,
    sweep_job_from_dict,
    write_csv,
)
from .core import (
    ENGINE_CHOICES,
    SimulationConfig,
    set_batch_limit,
    set_default_engine,
    simulate,
)
from .core.batchengine import DEFAULT_BATCH_LANES
from .experiments import EXPERIMENTS, experiment_ids, run_experiment
from .obs import (
    TimelineProbe,
    ascii_timeline,
    configure_logging,
    write_chrome_trace,
    write_timeline_jsonl,
)
from .traces import (
    WorkloadCache,
    default_cache_dir,
    make_workload,
    workload_kinds,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hbm-repro",
        description=(
            "Reproduction of 'Automatic HBM Management: Models and "
            "Algorithms' (SPAA 2022)."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more logging (repeatable; -v enables DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="less logging (repeatable; -q limits to warnings)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("workloads", help="list workload generators")

    run_p = sub.add_parser("run", help="run experiments by id")
    run_p.add_argument(
        "ids", nargs="*", default=[],
        help="experiment ids, or 'all' (omit with --resume)",
    )
    run_p.add_argument(
        "--scale", choices=("smoke", "paper"), default="smoke",
        help="experiment size preset (default: smoke)",
    )
    run_p.add_argument(
        "--processes", type=int, default=None,
        help="worker processes for sweeps (default: cpu count)",
    )
    run_p.add_argument(
        "--cache-dir", default=None, help="workload cache directory"
    )
    run_p.add_argument(
        "--output-dir", default=None,
        help="write <id>.csv and <id>.txt artifacts here",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--report", default=None, metavar="REPORT.md",
        help="also write a combined Markdown report to this path",
    )
    run_p.add_argument(
        "--save", nargs="?", const="results", default=None, metavar="DIR",
        help="persist each experiment to DIR/<id>/ (rows.csv, report.txt, "
        "checks.json, manifest.json with provenance and cache telemetry; "
        "default DIR: results)",
    )
    run_p.add_argument(
        "--no-strict", action="store_true",
        help="exit 0 even when shape checks fail (failures are still "
        "printed)",
    )
    run_p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry attempts per failed sweep job (default: 1)",
    )
    run_p.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job deadline; an overrunning job fails the attempt "
        "(default: no deadline)",
    )
    run_p.add_argument(
        "--retry-backoff", type=float, default=None, metavar="SECONDS",
        help="initial retry backoff, doubled per attempt (default: 0.5)",
    )
    run_p.add_argument(
        "--max-pool-rebuilds", type=int, default=None, metavar="N",
        help="worker-pool rebuilds tolerated per campaign before the "
        "lost jobs are failed (default: 3)",
    )
    batch_mode = run_p.add_mutually_exclusive_group()
    batch_mode.add_argument(
        "--batch", dest="batch", action="store_true", default=None,
        help="force batched lockstep dispatch of eligible sweep jobs "
        "(default: on, see REPRO_BATCH)",
    )
    batch_mode.add_argument(
        "--no-batch", dest="batch", action="store_false",
        help="run every sweep job individually",
    )
    fail_mode = run_p.add_mutually_exclusive_group()
    fail_mode.add_argument(
        "--keep-going", dest="failure_mode", action="store_const",
        const="keep_going",
        help="record permanently failed sweep jobs as failed records "
        "and finish the campaign (default)",
    )
    fail_mode.add_argument(
        "--strict", dest="failure_mode", action="store_const",
        const="strict",
        help="abort the campaign on the first permanently failed sweep "
        "job (completed records stay in the result cache)",
    )
    run_p.set_defaults(failure_mode=None)
    run_p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a Prometheus text-format metrics snapshot here "
        "(rewritten as the campaign progresses)",
    )
    run_p.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="append campaign progress events (JSONL) to PATH",
    )
    run_p.add_argument(
        "--live", action="store_true",
        help="single-line live campaign status on stderr (TTY only; "
        "silent when stderr is redirected)",
    )
    run_p.add_argument(
        "--progress-every", type=int, default=None, metavar="N",
        help="emit a campaign.progress event every N job completions "
        "(default: 1)",
    )
    run_p.add_argument(
        "--store", default=None, metavar="URI",
        help="result-store backend: dir:PATH (default layout) or "
        "sqlite:PATH (safe for concurrent writers); overrides "
        "REPRO_STORE and the <cache-dir>/results default",
    )
    run_p.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only this shard of each campaign's job list (e.g. "
        "0/2, 1/2); point every shard at one shared --store",
    )
    run_p.add_argument(
        "--resume", default=None, metavar="CAMPAIGN_ID",
        help="resume a checkpointed campaign from the store: finished "
        "jobs are skipped, only the remainder is simulated",
    )
    _add_engine_flags(run_p)

    sim_p = sub.add_parser("simulate", help="run one ad-hoc simulation")
    sim_p.add_argument("workload", help="workload kind (see 'workloads')")
    sim_p.add_argument("--threads", type=int, default=8)
    sim_p.add_argument("--hbm-slots", type=int, required=True)
    sim_p.add_argument("--channels", type=int, default=1)
    sim_p.add_argument("--arbitration", default="fifo")
    sim_p.add_argument("--replacement", default="lru")
    sim_p.add_argument(
        "--remap-period", type=int, default=None,
        help="T in ticks for remapping schemes",
    )
    sim_p.add_argument(
        "--blacklist-threshold", type=int, default=None,
        help="consecutive grants before a thread is blacklisted "
        "(blacklist arbitration; default 4)",
    )
    sim_p.add_argument(
        "--blacklist-clear-interval", type=int, default=None,
        help="ticks between blacklist clears (blacklist arbitration; "
        "default 1000)",
    )
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload generator parameter (repeatable)",
    )
    sim_p.add_argument(
        "--probe", action="store_true",
        help="attach a timeline probe and print an ASCII timeline",
    )
    sim_p.add_argument(
        "--probe-stride", type=int, default=1, metavar="N",
        help="sample every N ticks when probing (default: 1)",
    )
    sim_p.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write a run manifest (JSON) to PATH",
    )
    _add_engine_flags(sim_p)

    trace_p = sub.add_parser(
        "trace",
        help="run a workload and export its timeline (Perfetto/JSONL)",
    )
    trace_p.add_argument(
        "workload", nargs="?", default=None,
        help="workload kind (see 'workloads'); omit with --merge",
    )
    trace_p.add_argument(
        "--merge", nargs="+", default=None, metavar="[NAME=]TRACE.json",
        help="instead of running a workload, combine previously "
        "exported Chrome traces into one multi-track trace; each track "
        "is named NAME when given, else from the sibling manifest.json "
        "(job tag / workload name) or the trace's own metadata",
    )
    trace_p.add_argument("--threads", type=int, default=8)
    trace_p.add_argument(
        "--hbm-slots", type=int, default=None,
        help="required unless --merge is used",
    )
    trace_p.add_argument("--channels", type=int, default=1)
    trace_p.add_argument("--arbitration", default="fifo")
    trace_p.add_argument("--replacement", default="lru")
    trace_p.add_argument(
        "--remap-period", type=int, default=None,
        help="T in ticks for remapping schemes",
    )
    trace_p.add_argument(
        "--blacklist-threshold", type=int, default=None,
        help="consecutive grants before a thread is blacklisted "
        "(blacklist arbitration; default 4)",
    )
    trace_p.add_argument(
        "--blacklist-clear-interval", type=int, default=None,
        help="ticks between blacklist clears (blacklist arbitration; "
        "default 1000)",
    )
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload generator parameter (repeatable)",
    )
    trace_p.add_argument(
        "--probe-stride", type=int, default=1, metavar="N",
        help="sample every N ticks (default: 1)",
    )
    trace_p.add_argument(
        "--output-dir", default=None, metavar="DIR",
        help="where to write trace.json / timeline.jsonl / manifest.json "
        "(default: trace-<workload>/)",
    )
    trace_p.add_argument(
        "--no-ascii", action="store_true",
        help="skip the terminal timeline rendering",
    )
    _add_engine_flags(trace_p)

    prof_p = sub.add_parser(
        "profile", help="locality characterization of a workload"
    )
    prof_p.add_argument("workload", help="workload kind (see 'workloads')")
    prof_p.add_argument("--threads", type=int, default=1)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument(
        "--capacities", default="64,256,1024",
        help="comma-separated HBM sizes for the miss-ratio curve",
    )
    prof_p.add_argument("--window", type=int, default=512)
    prof_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="workload generator parameter (repeatable)",
    )

    bench_p = sub.add_parser(
        "bench", help="bench-regression tracking (diff / record)"
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    for sub_name, sub_help in (
        ("diff", "compare current BENCH_*.json against the baseline "
         "(exit 4 on regression)"),
        ("record", "fold current BENCH_*.json into the baseline"),
    ):
        bp = bench_sub.add_parser(sub_name, help=sub_help)
        bp.add_argument(
            "--bench-dir", action="append", default=None, metavar="DIR",
            help="directory searched for BENCH_*.json (repeatable; "
            "default: current directory)",
        )
        bp.add_argument(
            "--baseline", default="benchmarks/baseline.json", metavar="PATH",
            help="baseline file (default: benchmarks/baseline.json)",
        )
    diff_p = bench_sub.choices["diff"]
    diff_p.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRACTION",
        help="allowed relative drop for gated speedup metrics "
        "(default: 0.25 = 25%%)",
    )
    diff_p.add_argument(
        "--overhead-band", type=float, default=0.05, metavar="FRACTION",
        help="allowed absolute rise for gated overhead fractions "
        "(default: 0.05)",
    )

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the result store / workload cache"
    )
    cache_p.add_argument(
        "cache_command", choices=("stats", "clear"),
        help="'stats' prints entry counts and sizes; 'clear' empties",
    )
    cache_p.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $HBM_REPRO_CACHE or "
        "~/.cache/hbm-repro)",
    )
    cache_p.add_argument(
        "--store", default=None, metavar="URI",
        help="result-store backend to target (dir:PATH or sqlite:PATH; "
        "default: REPRO_STORE, else <cache-dir>/results)",
    )
    scope = cache_p.add_mutually_exclusive_group()
    scope.add_argument(
        "--results-only", action="store_true",
        help="touch only the simulation result store",
    )
    scope.add_argument(
        "--workloads-only", action="store_true",
        help="touch only the generated-workload cache",
    )
    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default="auto",
        help="simulator engine: 'auto' dispatches eligible configs to "
        "the vectorized fast engine, 'reference'/'fast' force one "
        "(default: auto)",
    )
    parser.add_argument(
        "--no-result-cache", action="store_true",
        help="recompute every sweep job even when a cached result "
        "exists under <cache-dir>/results/",
    )


def _parse_params(items: list[str]) -> dict:
    params = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--param expects KEY=VALUE, got {item!r}")
        key, raw = item.split("=", 1)
        for cast in (int, float):
            try:
                params[key] = cast(raw)
                break
            except ValueError:
                continue
        else:
            if raw.lower() in ("true", "false"):
                params[key] = raw.lower() == "true"
            else:
                params[key] = raw
    return params


def _cmd_list() -> int:
    width = max(len(i) for i in experiment_ids())
    for experiment_id, (_, description) in EXPERIMENTS.items():
        print(f"{experiment_id.ljust(width)}  {description}")
    return 0


def _cmd_workloads() -> int:
    for kind in workload_kinds():
        print(kind)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume is not None and args.ids:
        print(
            "--resume names its campaign in the checkpoint; drop the "
            "experiment ids",
            file=sys.stderr,
        )
        return 2
    if args.resume is None and not args.ids:
        print("run needs experiment ids (or --resume)", file=sys.stderr)
        return 2
    try:
        parse_shard(args.shard)
    except ValueError as exc:
        print(f"bad --shard: {exc}", file=sys.stderr)
        return 2
    ids = experiment_ids() if args.ids == ["all"] else args.ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"known: {experiment_ids()}", file=sys.stderr)
        return 2
    output_dir = Path(args.output_dir) if args.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)
    failed: list[str] = []
    outputs = []
    # Experiment runners take (scale, processes, cache_dir, seed) only;
    # engine choice, result-cache policy, and fault-tolerance knobs flow
    # through module-level defaults, restored afterwards so in-process
    # callers are unaffected.
    exec_overrides = {}
    if args.retries is not None:
        exec_overrides["retries"] = args.retries
    if args.job_timeout is not None:
        exec_overrides["job_timeout"] = args.job_timeout
    if args.failure_mode is not None:
        exec_overrides["failure_mode"] = args.failure_mode
    if args.retry_backoff is not None:
        exec_overrides["retry_backoff_s"] = args.retry_backoff
    if args.max_pool_rebuilds is not None:
        exec_overrides["max_pool_rebuilds"] = args.max_pool_rebuilds
    if args.shard is not None:
        exec_overrides["shard"] = args.shard
    tele_overrides = {}
    if args.metrics_out is not None:
        tele_overrides["metrics_out"] = args.metrics_out
    if args.events_out is not None:
        tele_overrides["events_out"] = args.events_out
    if args.live:
        tele_overrides["live"] = True
    if args.progress_every is not None:
        tele_overrides["progress_every"] = args.progress_every
    prev_engine = set_default_engine(args.engine)
    prev_cache = set_result_cache_default(not args.no_result_cache)
    prev_store = set_store_default(args.store) if args.store else None
    prev_exec = set_execution_defaults(**exec_overrides)
    prev_tele = set_telemetry_defaults(**tele_overrides)
    prev_batch = (
        set_batch_limit(DEFAULT_BATCH_LANES if args.batch else 1)
        if args.batch is not None
        else None
    )
    try:
        if args.resume is not None:
            return _cmd_resume(args)
        for experiment_id in ids:
            try:
                out = run_experiment(
                    experiment_id,
                    scale=args.scale,
                    processes=args.processes,
                    cache_dir=args.cache_dir,
                    seed=args.seed,
                    save_dir=args.save,
                )
            except SweepFailure as exc:
                print(
                    f"campaign {experiment_id!r} aborted (--strict): {exc}",
                    file=sys.stderr,
                )
                return 3
            outputs.append(out)
            print(out.render())
            print()
            if output_dir:
                if out.rows:
                    write_csv(out.rows, output_dir / f"{experiment_id}.csv")
                (output_dir / f"{experiment_id}.txt").write_text(
                    out.render() + "\n", encoding="utf-8"
                )
            failed.extend(
                f"{experiment_id}:{name}" for name in out.failed_checks()
            )
    finally:
        set_default_engine(prev_engine)
        set_result_cache_default(prev_cache)
        if args.store:
            set_store_default(prev_store)
        set_execution_defaults(**prev_exec)
        set_telemetry_defaults(**prev_tele)
        if args.batch is not None:
            set_batch_limit(prev_batch)
    if args.report:
        from .analysis import write_report

        write_report(
            outputs,
            args.report,
            title=f"hbm-repro experiment report (scale={args.scale})",
        )
    if failed:
        print(f"FAILED shape checks: {failed}", file=sys.stderr)
        if not args.no_strict:
            return 1
    return 0


def _resolve_store_uri(
    store: str | None, cache_dir: str | None
) -> str:
    """The store URI a command targets: explicit ``--store``, else the
    ``REPRO_STORE`` environment, else ``<cache-dir>/results``."""
    from .store import default_store_uri

    if store:
        return store
    env = default_store_uri()
    if env:
        return env
    base = Path(cache_dir) if cache_dir else default_cache_dir()
    return f"dir:{base / 'results'}"


def _cmd_resume(args: argparse.Namespace) -> int:
    """Finish a checkpointed campaign: ``repro run --resume <id>``.

    The checkpoint stores the full job manifest plus the submitting
    context (experiment id / scale / seed), so a resume needs nothing
    but the campaign id and the store it lives in. When the campaign
    came from a registered experiment we re-run the experiment — the
    deterministic campaign id makes the runner skip everything already
    in the frontier, and the report/check pipeline runs as usual.
    Otherwise the jobs are rebuilt from the manifest and swept directly.
    """
    from .store import open_store

    uri = _resolve_store_uri(args.store, args.cache_dir)
    store = open_store(uri)
    try:
        checkpoint = store.load_checkpoint(args.resume)
        if checkpoint is None:
            print(
                f"no campaign {args.resume!r} in {store.describe()}",
                file=sys.stderr,
            )
            known = store.list_campaigns()
            if known:
                print(f"known campaigns: {known}", file=sys.stderr)
            return 2
        meta = dict(checkpoint.meta or {})
        experiment_id = meta.get("experiment_id")
        if experiment_id in EXPERIMENTS:
            out = run_experiment(
                experiment_id,
                scale=str(meta.get("scale", args.scale)),
                processes=args.processes,
                cache_dir=args.cache_dir,
                seed=int(meta.get("seed", args.seed)),
                save_dir=args.save,
            )
            print(out.render())
            failed = out.failed_checks()
            if failed:
                print(f"FAILED shape checks: {failed}", file=sys.stderr)
                if not args.no_strict:
                    return 1
            return 0
        # No (or unknown) experiment lineage: sweep the stored manifest.
        jobs = [sweep_job_from_dict(dict(j)) for j in checkpoint.jobs]
        runner = SweepRunner(
            processes=args.processes,
            cache_dir=args.cache_dir,
            store=store,
        )
        records = runner.run(jobs, label=checkpoint.label, meta=meta)
        stats = runner.last_campaign
        if stats is not None:
            print(stats.summary_table())
        print(f"{len(records)} record(s); store {store.describe()}")
        return 0
    finally:
        store.close()


def _cmd_cache(args: argparse.Namespace) -> int:
    from .store import open_store

    do_results = not args.workloads_only
    do_workloads = not args.results_only
    status = 0
    if do_results:
        store = open_store(_resolve_store_uri(args.store, args.cache_dir))
        try:
            if args.cache_command == "clear":
                removed = store.clear()
                print(f"results   {store.describe()}: cleared {removed}")
            else:
                stats = store.stats()
                corrupt = stats.get("corrupt", 0)
                note = f", {corrupt} corrupt" if corrupt else ""
                print(
                    f"results   {store.describe()}: "
                    f"{stats['entries']} entries, "
                    f"{stats['bytes']} bytes{note}"
                )
        finally:
            store.close()
    if do_workloads:
        workloads = WorkloadCache(args.cache_dir)
        if args.cache_command == "clear":
            removed = workloads.clear()
            print(f"workloads {workloads.directory}: cleared {removed}")
        else:
            stats = workloads.stats()
            print(
                f"workloads {workloads.directory}: "
                f"{stats['entries']} entries, {stats['bytes']} bytes"
            )
    return status


def _blacklist_kwargs(args: argparse.Namespace) -> dict:
    """Blacklist knobs for SimulationConfig, only when explicitly set.

    Unset knobs are omitted (not passed as None) so ad-hoc configs
    serialize exactly like pre-knob configs and hit warm result caches.
    """
    kwargs = {}
    if args.blacklist_threshold is not None:
        kwargs["blacklist_threshold"] = args.blacklist_threshold
    if args.blacklist_clear_interval is not None:
        kwargs["blacklist_clear_interval"] = args.blacklist_clear_interval
    return kwargs


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    workload = make_workload(
        args.workload, threads=args.threads, seed=args.seed, **params
    )
    probe = TimelineProbe() if args.probe else None
    config = SimulationConfig(
        hbm_slots=args.hbm_slots,
        channels=args.channels,
        arbitration=args.arbitration,
        replacement=args.replacement,
        remap_period=args.remap_period,
        seed=args.seed,
        probes=(probe,) if probe is not None else (),
        probe_stride=args.probe_stride,
        **_blacklist_kwargs(args),
    )
    print(workload)
    result = simulate(
        workload, config, engine=args.engine, manifest_path=args.manifest
    )
    print(result.summary())
    if args.verbose > 0:
        print(
            f"fast-forward    : {result.ff_intervals} intervals, "
            f"{result.ff_elided_ticks} ticks elided "
            f"({result.ff_elided_fraction:.1%} of {result.ticks} ticks)"
        )
    if probe is not None:
        print()
        print(ascii_timeline(probe))
    if args.manifest:
        print(f"\nmanifest: {args.manifest}")
    return 0


def _cmd_trace_merge(args: argparse.Namespace) -> int:
    from .obs import merge_chrome_traces

    inputs: list[tuple[str, str | None]] = []
    for item in args.merge:
        # NAME=PATH names the track explicitly; a bare path derives the
        # name from the sibling manifest / trace metadata.
        if "=" in item and "/" not in item.split("=", 1)[0]:
            name, trace_path = item.split("=", 1)
            inputs.append((trace_path, name))
        else:
            inputs.append((item, None))
    missing = [p for p, _ in inputs if not Path(p).is_file()]
    if missing:
        print(f"trace files not found: {missing}", file=sys.stderr)
        return 2
    out_dir = Path(args.output_dir or "trace-merged")
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = merge_chrome_traces(inputs, out_dir / "trace.json")
    print(
        f"merged {len(inputs)} trace(s) into {out_path} "
        "(open at https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.merge is not None:
        if args.workload is not None:
            print(
                "trace --merge takes trace files, not a workload",
                file=sys.stderr,
            )
            return 2
        return _cmd_trace_merge(args)
    if args.workload is None or args.hbm_slots is None:
        print(
            "trace needs a workload and --hbm-slots (or --merge)",
            file=sys.stderr,
        )
        return 2
    params = _parse_params(args.param)
    workload = make_workload(
        args.workload, threads=args.threads, seed=args.seed, **params
    )
    probe = TimelineProbe()
    config = SimulationConfig(
        hbm_slots=args.hbm_slots,
        channels=args.channels,
        arbitration=args.arbitration,
        replacement=args.replacement,
        remap_period=args.remap_period,
        seed=args.seed,
        probes=(probe,),
        probe_stride=args.probe_stride,
        **_blacklist_kwargs(args),
    )
    out_dir = Path(args.output_dir or f"trace-{args.workload}")
    out_dir.mkdir(parents=True, exist_ok=True)
    print(workload)
    result = simulate(
        workload, config,
        engine=args.engine,
        manifest_path=out_dir / "manifest.json",
    )
    run_name = f"{args.workload} x {args.arbitration}/{args.replacement}"
    trace_path = write_chrome_trace(
        probe, out_dir / "trace.json", name=run_name,
        metadata={"workload": args.workload},
    )
    jsonl_path = write_timeline_jsonl(probe, out_dir / "timeline.jsonl")
    print(result.summary())
    if not args.no_ascii:
        print()
        print(ascii_timeline(probe))
    print(
        f"\nwrote {trace_path} ({len(probe.samples)} samples; "
        "open at https://ui.perfetto.dev or chrome://tracing)"
    )
    print(f"wrote {jsonl_path}")
    print(f"wrote {out_dir / 'manifest.json'}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .analysis.benchtrend import (
        compare,
        format_report,
        load_baseline,
        load_bench_files,
        record,
    )

    search = args.bench_dir or ["."]
    current = load_bench_files(search)
    if args.bench_command == "record":
        if not current:
            print(f"no BENCH_*.json found in {search}", file=sys.stderr)
            return 2
        import time as _time

        stamp = _time.strftime("%Y-%m-%dT%H:%M:%SZ", _time.gmtime())
        record(current, args.baseline, updated=stamp)
        print(f"recorded {sorted(current)} into {args.baseline}")
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(
            f"no baseline at {args.baseline}; run 'bench record' (or "
            "scripts/bench_record.py) after a bench run to create one",
            file=sys.stderr,
        )
        return 2
    diff = compare(
        current,
        baseline,
        tolerance=args.tolerance,
        overhead_band=args.overhead_band,
    )
    print(format_report(diff))
    if diff.regressions:
        for entry in diff.regressions:
            print(
                f"REGRESSION {entry.suite}.{entry.metric}: "
                f"{entry.baseline} -> {entry.current}",
                file=sys.stderr,
            )
        return 4
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .traces import characterize

    params = _parse_params(args.param)
    workload = make_workload(
        args.workload, threads=args.threads, seed=args.seed, **params
    )
    capacities = [int(c) for c in args.capacities.split(",") if c]
    print(workload)
    for i, trace in enumerate(workload.traces):
        profile = characterize(trace, capacities=capacities, window=args.window)
        print(f"\n-- thread {i} --")
        print(profile.summary())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    if args.command == "list":
        return _cmd_list()
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
