"""Pointer-chasing latency microbenchmark (paper section 5.1).

``x := a[x]`` over arrays of power-of-two sizes maps the latency of
each level of the hierarchy: every chase is a dependent random access,
so the mean time per operation is the mean access latency for that
working-set size. The paper runs 2^27 operations per size on KNL; we
run a (configurable) number of Monte-Carlo accesses against a
:class:`~repro.machine.hierarchy.MachineModel`.

Sizes the mode cannot allocate (flat-mode HBM beyond 8GiB) yield
``None``, matching the '-' cells of Table 2a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .hierarchy import GIB, KIB, MachineModel

__all__ = [
    "PointerChaseResult",
    "measure_pointer_chase",
    "pointer_chase_curve",
    "default_latency_sizes",
]


@dataclass(frozen=True)
class PointerChaseResult:
    """Mean (and spread) of per-access latency at one array size."""

    machine: str
    array_bytes: int
    operations: int
    mean_ns: float
    std_ns: float
    expected_ns: float  # analytic model value, for cross-checking


def default_latency_sizes(
    min_bytes: int = 1 * KIB,
    max_bytes: int = 64 * GIB,
) -> list[int]:
    """Powers of two from 1KiB to 64GiB (the paper's sweep)."""
    sizes = []
    size = min_bytes
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    return sizes


def measure_pointer_chase(
    machine: MachineModel,
    array_bytes: int,
    operations: int = 1 << 16,
    seed: int = 0,
    jitter: float = 0.02,
) -> PointerChaseResult | None:
    """Chase ``operations`` pointers through an ``array_bytes`` array.

    Returns ``None`` when the machine cannot bind the allocation
    (flat-mode HBM past its 8GiB limit).
    """
    try:
        machine.check_allocation(array_bytes)
    except MemoryError:
        return None
    rng = np.random.default_rng(seed)
    samples = machine.sample_latencies_ns(
        array_bytes, operations, rng, jitter=jitter
    )
    return PointerChaseResult(
        machine=machine.name,
        array_bytes=array_bytes,
        operations=operations,
        mean_ns=float(samples.mean()),
        std_ns=float(samples.std()),
        expected_ns=machine.expected_latency_ns(array_bytes),
    )


def pointer_chase_curve(
    machines: Mapping[str, MachineModel],
    sizes: Sequence[int] | None = None,
    operations: int = 1 << 16,
    seed: int = 0,
) -> dict[str, list[PointerChaseResult | None]]:
    """Latency curves per mode (Figure 6a/6b, Table 2a)."""
    if sizes is None:
        sizes = default_latency_sizes()
    curves: dict[str, list[PointerChaseResult | None]] = {}
    for name, machine in machines.items():
        curves[name] = [
            measure_pointer_chase(machine, s, operations=operations, seed=seed)
            for s in sizes
        ]
    return curves
