"""Synthetic Knights Landing machine (section 5 validation substrate).

Constants are fitted once to the paper's own KNL measurements (Table 2)
so that our regenerated tables come from the *mechanics* of
:class:`~repro.machine.hierarchy.MachineModel` with realistic numbers,
not from copying output cells:

* direct DRAM service latency ~180ns, HBM ~24ns slower (Table 2a shows
  flat-HBM consistently ~24ns above flat-DRAM — Property 1's "similar
  latency", and the reason HBM cannot simply extend the cache pyramid);
* HBM bandwidth ~4.8x DRAM (Table 2b: ~320 GB/s vs ~67 GB/s);
* cache-mode HBM misses pay the HBM probe before going to DRAM
  (Property 3's ~2x latency penalty), modelled as ``miss_penalty_ns``;
* a two-segment page-walk term (3ns per doubling beyond 8MiB, a
  further 15ns per doubling beyond 64MiB) reproduces the slow-then-fast
  within-level latency rise of Table 2a;
* flat-mode HBM can bind at most 8GiB of user arrays (the paper "stops
  the experiment early for HBM, which can only allocate an array of
  size 8GiB").

The machine has 272 hardware threads (68 cores x 4 SMT), 16GiB MCDRAM,
6 DDR channels, 8 HBM connections — the paper's testbed configuration.
"""

from __future__ import annotations

from .hierarchy import GIB, KIB, MIB, CacheLevel, MachineModel, TLBModel

__all__ = [
    "KNL_THREADS",
    "KNL_HBM_BYTES",
    "knl_flat_dram",
    "knl_flat_hbm",
    "knl_cache_mode",
    "knl_machines",
]

#: 68 cores x 4 hyperthreads
KNL_THREADS = 272

#: 16 GiB of on-package MCDRAM
KNL_HBM_BYTES = 16 * GIB

# -- fitted level parameters --------------------------------------------------

_L1 = CacheLevel("L1", 32 * KIB, latency_ns=2.0, bandwidth_mib_s=4_000_000)
_L2 = CacheLevel("L2", 1 * MIB, latency_ns=12.0, bandwidth_mib_s=1_500_000)
#: other tiles' L2 slices reached over the mesh ("shared L2")
_MESH_L2 = CacheLevel("mesh-L2", 4 * MIB, latency_ns=150.0, bandwidth_mib_s=800_000)

_DRAM_LAT = 180.0
_HBM_LAT = _DRAM_LAT + 24.0  # Property 1: similar, HBM slightly slower
_DRAM_BW = 68_000.0  # MiB/s, ~67 GB/s over 6 DDR4 channels
_HBM_BW = 330_000.0  # MiB/s, ~4.8x DRAM over 8 MCDRAM connections

_TLB = TLBModel()  # two-segment walk: 3ns/doubling past 8MiB, +15 past 64MiB


def knl_flat_dram() -> MachineModel:
    """Flat mode, ``numactl --membind`` to DDR4."""
    return MachineModel(
        "knl-flat-dram",
        [
            _L1,
            _L2,
            _MESH_L2,
            CacheLevel("DRAM", None, _DRAM_LAT, _DRAM_BW),
        ],
        tlb=_TLB,
    )


def knl_flat_hbm() -> MachineModel:
    """Flat mode, ``numactl --membind`` to MCDRAM (max 8GiB user arrays)."""
    return MachineModel(
        "knl-flat-hbm",
        [
            _L1,
            _L2,
            _MESH_L2,
            CacheLevel("HBM", None, _HBM_LAT, _HBM_BW),
        ],
        tlb=_TLB,
        allocatable_bytes=8 * GIB,
    )


def knl_cache_mode() -> MachineModel:
    """Cache mode: MCDRAM as a memory-side cache in front of DDR4.

    An access that misses HBM pays the HBM probe (its ``miss_penalty``)
    on top of the DRAM service — the third mesh crossing of section 1.2
    that makes cache-mode DRAM latency roughly double the HBM latency.
    """
    return MachineModel(
        "knl-cache",
        [
            _L1,
            _L2,
            _MESH_L2,
            CacheLevel(
                "HBM-cache",
                KNL_HBM_BYTES,
                _HBM_LAT + 12.0,  # tag-check overhead of memory-side caching
                _HBM_BW,
                miss_penalty_ns=160.0,  # the extra mesh crossing + HBM probe
            ),
            CacheLevel("DRAM", None, _DRAM_LAT, _DRAM_BW),
        ],
        tlb=_TLB,
    )


def knl_machines() -> dict[str, MachineModel]:
    """The three boot modes measured in section 5."""
    return {
        "DRAM": knl_flat_dram(),
        "HBM": knl_flat_hbm(),
        "Cache": knl_cache_mode(),
    }
