"""GLUPS bandwidth microbenchmark (paper section 5.1).

GLUPS — Giga-Large-Updates-per-Second — is the paper's variant of the
HPC Challenge GUPS/RandomAccess benchmark [44]: pick a random position,
then read, xor, and write the next 1024 bytes (128 doubles = 16 cache
lines), repeating until one full array's worth of data has been
updated. The 1024-byte blocks (rather than GUPS's single words) keep
all HBM channels busy, so the measurement reflects bandwidth rather
than latency.

We run the measurement against a
:class:`~repro.machine.hierarchy.MachineModel`: a Monte-Carlo draw of
which level serves each sampled block gives empirical traffic
fractions, and the machine's bottleneck composition converts them to an
achieved MiB/s figure — the same estimator a real timed run implements
physically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .hierarchy import GIB, MIB, MachineModel

__all__ = [
    "GLUPS_BLOCK_BYTES",
    "GlupsResult",
    "measure_glups",
    "glups_curve",
    "default_bandwidth_sizes",
]

#: 128 doubles, 16 cache lines of 64 bytes
GLUPS_BLOCK_BYTES = 1024


@dataclass(frozen=True)
class GlupsResult:
    """Achieved bandwidth at one array size."""

    machine: str
    array_bytes: int
    threads: int
    blocks_updated: int
    mib_per_s: float
    model_mib_per_s: float  # analytic value, for cross-checking

    @property
    def glups(self) -> float:
        """Giga large updates per second."""
        return self.mib_per_s * MIB / GLUPS_BLOCK_BYTES / 1e9


def default_bandwidth_sizes(
    min_bytes: int = 512 * MIB,
    max_bytes: int = 64 * GIB,
) -> list[int]:
    """Powers of two from 512MiB to 64GiB (Table 2b's sweep)."""
    sizes = []
    size = min_bytes
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    return sizes


def measure_glups(
    machine: MachineModel,
    array_bytes: int,
    threads: int = 272,
    sample_blocks: int = 1 << 14,
    seed: int = 0,
    per_thread_mib_s: float = 1600.0,
) -> GlupsResult | None:
    """Update one array's worth of random 1024-byte blocks.

    Samples ``sample_blocks`` block placements to estimate the traffic
    split across levels (real runs update ``array_bytes / 1024`` blocks;
    sampling keeps the simulated measurement cheap while preserving the
    estimator's variance structure). Returns ``None`` when the machine
    cannot bind the allocation.
    """
    try:
        machine.check_allocation(array_bytes)
    except MemoryError:
        return None
    rng = np.random.default_rng(seed)
    fractions = machine.served_fractions(array_bytes)
    counts = rng.multinomial(sample_blocks, fractions)
    empirical = counts / sample_blocks
    # Bottleneck composition over the *observed* traffic split: level i
    # carries every block served at its depth or deeper.
    bottleneck = math.inf
    reaching = 1.0
    for f, lvl in zip(empirical, machine.levels):
        if reaching <= 1e-12:
            break
        bottleneck = min(bottleneck, lvl.bandwidth_mib_s / reaching)
        reaching -= f
    achieved = min(bottleneck, threads * per_thread_mib_s)
    return GlupsResult(
        machine=machine.name,
        array_bytes=array_bytes,
        threads=threads,
        blocks_updated=array_bytes // GLUPS_BLOCK_BYTES,
        mib_per_s=achieved,
        model_mib_per_s=machine.streaming_bandwidth_mib_s(
            array_bytes, threads, per_thread_mib_s=per_thread_mib_s
        ),
    )


def glups_curve(
    machines: Mapping[str, MachineModel],
    sizes: Sequence[int] | None = None,
    threads: int = 272,
    seed: int = 0,
    per_thread_mib_s: float = 1600.0,
) -> dict[str, list[GlupsResult | None]]:
    """Bandwidth curves per mode (Table 2b)."""
    if sizes is None:
        sizes = default_bandwidth_sizes()
    curves: dict[str, list[GlupsResult | None]] = {}
    for name, machine in machines.items():
        curves[name] = [
            measure_glups(
                machine,
                s,
                threads=threads,
                seed=seed,
                per_thread_mib_s=per_thread_mib_s,
            )
            for s in sizes
        ]
    return curves
