"""Synthetic machine models and the section 5 microbenchmarks."""

from .glups import (
    GLUPS_BLOCK_BYTES,
    GlupsResult,
    default_bandwidth_sizes,
    glups_curve,
    measure_glups,
)
from .hierarchy import GIB, KIB, MIB, CacheLevel, MachineModel, TLBModel
from .hybrid import HybridMachine, make_hybrid
from .knl import (
    KNL_HBM_BYTES,
    KNL_THREADS,
    knl_cache_mode,
    knl_flat_dram,
    knl_flat_hbm,
    knl_machines,
)
from .sapphire import (
    SPR_HBM_BYTES,
    SPR_PER_THREAD_MIB_S,
    SPR_THREADS,
    spr_cache_mode,
    spr_flat_dram,
    spr_flat_hbm,
    spr_hbm_only,
    spr_hybrid_mode,
    spr_machines,
)
from .pointer_chase import (
    PointerChaseResult,
    default_latency_sizes,
    measure_pointer_chase,
    pointer_chase_curve,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "CacheLevel",
    "TLBModel",
    "MachineModel",
    "KNL_THREADS",
    "KNL_HBM_BYTES",
    "knl_flat_dram",
    "knl_flat_hbm",
    "knl_cache_mode",
    "knl_machines",
    "HybridMachine",
    "make_hybrid",
    "SPR_THREADS",
    "SPR_HBM_BYTES",
    "SPR_PER_THREAD_MIB_S",
    "spr_flat_dram",
    "spr_flat_hbm",
    "spr_cache_mode",
    "spr_hbm_only",
    "spr_hybrid_mode",
    "spr_machines",
    "PointerChaseResult",
    "measure_pointer_chase",
    "pointer_chase_curve",
    "default_latency_sizes",
    "GLUPS_BLOCK_BYTES",
    "GlupsResult",
    "measure_glups",
    "glups_curve",
    "default_bandwidth_sizes",
]
