"""Hybrid boot mode: HBM split into a flat slice and a cache slice.

KNL's third mode (paper section 1): "in hybrid mode the HBM is split
into a 'flat' piece and a 'cache' piece". We model an allocation of
``S`` bytes the way the mode is used in practice: the hottest data is
bound to the flat slice (up to its capacity ``F``), and the remainder
lives in DRAM behind the HBM-cache slice of capacity ``C``.

Latency and bandwidth compose from the two underlying machines:

* the flat fraction ``min(F, S) / S`` is served by the flat-HBM stack;
* the rest goes through a cache-mode stack whose HBM-cache level is
  shrunk to ``C`` — so the miss fraction (and with it Property 3's
  latency penalty and Property 4's bandwidth cliff) depends on how the
  split is chosen, which is exactly the tuning question hybrid mode
  exposes to operators.
"""

from __future__ import annotations

from .hierarchy import CacheLevel, MachineModel

__all__ = ["HybridMachine", "make_hybrid"]


class HybridMachine:
    """Composite flat + cache machine over a split HBM.

    Parameters
    ----------
    flat:
        Flat-mode machine whose backing level is HBM (its
        ``allocatable_bytes`` should equal the flat-slice size).
    cached:
        Cache-mode machine whose HBM-cache level capacity equals the
        cache-slice size.
    flat_bytes:
        Size of the flat slice ``F``.
    """

    def __init__(
        self,
        flat: MachineModel,
        cached: MachineModel,
        flat_bytes: int,
    ) -> None:
        if flat_bytes < 0:
            raise ValueError(f"flat_bytes must be >= 0, got {flat_bytes}")
        self.flat = flat
        self.cached = cached
        self.flat_bytes = flat_bytes
        self.name = f"hybrid(flat={flat_bytes >> 30}GiB)"

    def split(self, working_set: int) -> tuple[int, int]:
        """(bytes in the flat slice, bytes behind the cache slice)."""
        if working_set <= 0:
            raise ValueError("working_set must be positive")
        in_flat = min(self.flat_bytes, working_set)
        return in_flat, working_set - in_flat

    def expected_latency_ns(self, working_set: int) -> float:
        """Mean random-access latency across both slices."""
        in_flat, in_cached = self.split(working_set)
        latency = 0.0
        if in_flat:
            latency += (in_flat / working_set) * self.flat.expected_latency_ns(
                in_flat
            )
        if in_cached:
            latency += (
                in_cached / working_set
            ) * self.cached.expected_latency_ns(in_cached)
        return latency

    def streaming_bandwidth_mib_s(
        self, working_set: int, threads: int = 272,
        per_thread_mib_s: float = 1600.0,
    ) -> float:
        """Bottleneck bandwidth with traffic split across the slices.

        Each slice's hierarchy bottleneck is scaled by the fraction of
        traffic it carries (a slice only needs to sustain its own
        share), and two global caps apply once: the shared physical HBM
        (both slices live in the same stacks) and the cores' aggregate
        issue bandwidth.
        """
        in_flat, in_cached = self.split(working_set)
        caps = [
            self.flat.levels[-1].bandwidth_mib_s,  # shared physical HBM
            threads * per_thread_mib_s,
        ]
        if in_flat:
            f = in_flat / working_set
            caps.append(
                self.flat.streaming_bandwidth_mib_s(
                    in_flat, threads, per_thread_mib_s=per_thread_mib_s
                )
                / f
            )
        if in_cached:
            f = in_cached / working_set
            caps.append(
                self.cached.streaming_bandwidth_mib_s(
                    in_cached, threads, per_thread_mib_s=per_thread_mib_s
                )
                / f
            )
        return min(caps)

    def __repr__(self) -> str:
        return f"HybridMachine({self.name})"


def make_hybrid(
    base_levels_flat: MachineModel,
    base_levels_cache: MachineModel,
    hbm_bytes: int,
    flat_fraction: float,
) -> HybridMachine:
    """Split ``hbm_bytes`` of a machine's HBM into flat + cache slices.

    ``base_levels_flat`` must be a flat-HBM machine and
    ``base_levels_cache`` a cache-mode machine whose HBM-cache level is
    identifiable by having a ``miss_penalty_ns`` or a bounded capacity
    directly above the backing store; its capacity is rescaled to the
    cache slice.
    """
    if not 0.0 <= flat_fraction <= 1.0:
        raise ValueError(f"flat_fraction must be in [0, 1], got {flat_fraction}")
    flat_bytes = int(hbm_bytes * flat_fraction)
    cache_bytes = hbm_bytes - flat_bytes

    flat = MachineModel(
        f"{base_levels_flat.name}-hybridslice",
        base_levels_flat.levels,
        tlb=base_levels_flat.tlb,
        allocatable_bytes=flat_bytes if flat_bytes else None,
    )

    # shrink the cache-mode machine's HBM-cache level to the cache slice
    levels = list(base_levels_cache.levels)
    hbm_index = len(levels) - 2  # level directly above the backing store
    hbm_level = levels[hbm_index]
    if cache_bytes <= 0:
        raise ValueError(
            "hybrid mode needs a non-empty cache slice; use the flat "
            "machine directly for flat_fraction=1.0"
        )
    new_capacity = min(cache_bytes, hbm_level.capacity_bytes or cache_bytes)
    # keep capacities strictly increasing below the cache level
    floor = max(
        (lvl.capacity_bytes or 0) for lvl in levels[:hbm_index]
    )
    new_capacity = max(new_capacity, floor + 1)
    levels[hbm_index] = CacheLevel(
        hbm_level.name,
        new_capacity,
        hbm_level.latency_ns,
        hbm_level.bandwidth_mib_s,
        miss_penalty_ns=hbm_level.miss_penalty_ns,
    )
    cached = MachineModel(
        f"{base_levels_cache.name}-hybridslice",
        levels,
        tlb=base_levels_cache.tlb,
        allocatable_bytes=base_levels_cache.allocatable_bytes,
    )
    return HybridMachine(flat, cached, flat_bytes)
