"""Projected Sapphire Rapids + HBM machine (paper sections 1 and 1.3).

The paper motivates its algorithms with Intel's then-upcoming Sapphire
Rapids Xeon: HBM-equipped, adding an **HBM-only mode** for systems
without DRAM, and "under certain expected configurations ... 3.68 TB/s
of peak memory bandwidth with 128GB of HBM" [52]. This module projects
the KNL-style machine model onto those public figures so the section 5
microbenchmarks can be replayed on the architecture the paper says the
results matter for:

* 64 HBM2e-backed cores x 2 SMT (112 threads in the HBM SKUs);
* 128 GiB HBM2e at ~3.3 TiB/s aggregate (the 3.68 TB/s of [52]);
* 8 DDR5-4800 channels at ~280 GiB/s;
* HBM2e latency a bit above DDR5's, as on KNL (Property 1 persists).

Modes: flat DRAM, flat HBM, cache (HBM as memory-side cache), and the
new **HBM-only** (no DRAM level at all: allocations past 128 GiB simply
fail, which is the mode's defining operational constraint).
"""

from __future__ import annotations

from .hierarchy import GIB, KIB, MIB, CacheLevel, MachineModel, TLBModel
from .hybrid import HybridMachine, make_hybrid

__all__ = [
    "SPR_THREADS",
    "SPR_HBM_BYTES",
    "SPR_PER_THREAD_MIB_S",
    "spr_flat_dram",
    "spr_flat_hbm",
    "spr_cache_mode",
    "spr_hbm_only",
    "spr_hybrid_mode",
    "spr_machines",
]

#: 56-64 cores x 2 SMT in the HBM SKUs; use the Xeon Max 9480 shape
SPR_THREADS = 112

#: 4 stacks x 32 GiB HBM2e
SPR_HBM_BYTES = 128 * GIB

#: per-SMT-thread streaming issue bandwidth (MiB/s). SPR cores stream an
#: order of magnitude faster than KNL's; 112 threads x ~31 GiB/s
#: saturates the 3.68 TB/s HBM2e aggregate.
SPR_PER_THREAD_MIB_S = 32_000.0

_L1 = CacheLevel("L1", 48 * KIB, latency_ns=1.5, bandwidth_mib_s=40_000_000)
_L2 = CacheLevel("L2", 2 * MIB, latency_ns=8.0, bandwidth_mib_s=16_000_000)
_L3 = CacheLevel("L3", 112 * MIB, latency_ns=33.0, bandwidth_mib_s=6_000_000)

_DDR5_LAT = 110.0
_HBM2E_LAT = _DDR5_LAT + 20.0  # similar latency, slightly worse (Property 1)
_DDR5_BW = 280_000.0  # MiB/s over 8 channels DDR5-4800
_HBM2E_BW = 3_460_000.0  # MiB/s, ~3.68 TB/s peak [52]

_TLB = TLBModel(segments=((32 * MIB, 2.0), (256 * MIB, 10.0)))


def spr_flat_dram() -> MachineModel:
    """Flat mode bound to DDR5."""
    return MachineModel(
        "spr-flat-dram",
        [_L1, _L2, _L3, CacheLevel("DDR5", None, _DDR5_LAT, _DDR5_BW)],
        tlb=_TLB,
    )


def spr_flat_hbm() -> MachineModel:
    """Flat mode bound to HBM2e (128 GiB of it)."""
    return MachineModel(
        "spr-flat-hbm",
        [_L1, _L2, _L3, CacheLevel("HBM2e", None, _HBM2E_LAT, _HBM2E_BW)],
        tlb=_TLB,
        allocatable_bytes=SPR_HBM_BYTES,
    )


def spr_cache_mode() -> MachineModel:
    """Cache mode: the 128 GiB of HBM2e as a memory-side cache."""
    return MachineModel(
        "spr-cache",
        [
            _L1,
            _L2,
            _L3,
            CacheLevel(
                "HBM2e-cache",
                SPR_HBM_BYTES,
                _HBM2E_LAT + 8.0,
                _HBM2E_BW,
                miss_penalty_ns=100.0,
            ),
            CacheLevel("DDR5", None, _DDR5_LAT, _DDR5_BW),
        ],
        tlb=_TLB,
    )


def spr_hbm_only() -> MachineModel:
    """HBM-only mode: no DRAM installed (new on Sapphire Rapids).

    Identical hierarchy to flat HBM; the operational difference is that
    *everything* must fit — there is no spill target, so the 128 GiB
    allocation cap is a hard system limit rather than a binding choice.
    """
    return MachineModel(
        "spr-hbm-only",
        [_L1, _L2, _L3, CacheLevel("HBM2e", None, _HBM2E_LAT, _HBM2E_BW)],
        tlb=_TLB,
        allocatable_bytes=SPR_HBM_BYTES,
    )


def spr_hybrid_mode(flat_fraction: float = 0.5) -> HybridMachine:
    """Hybrid mode: HBM split into a flat slice and a cache slice."""
    return make_hybrid(
        spr_flat_hbm(), spr_cache_mode(), SPR_HBM_BYTES, flat_fraction
    )


def spr_machines() -> dict[str, MachineModel]:
    """The level-stack modes (hybrid is composite; build it separately)."""
    return {
        "DRAM": spr_flat_dram(),
        "HBM": spr_flat_hbm(),
        "Cache": spr_cache_mode(),
        "HBM-only": spr_hbm_only(),
    }
