"""Parametric memory-hierarchy model (the section 5 hardware substitute).

The paper validates the HBM+DRAM model on real Knights Landing silicon
with two microbenchmarks: pointer chasing (latency) and GLUPS
(bandwidth). Lacking KNL hardware, we run the same microbenchmarks
against a *synthetic machine*: a stack of cache levels with capacities,
service latencies, and bandwidths, plus a TLB/page-walk term. The
machine mechanics — not hard-coded tables — produce the four section 5
properties:

1. HBM and DRAM have similar direct-access latency (their level
   latencies differ by a small constant);
2. HBM has much higher bandwidth (its level bandwidth is ~4.8x DRAM's);
3. cache-mode misses pay the HBM probe *and* the DRAM access (modelled
   as an extra serial latency on the DRAM fraction of accesses);
4. past HBM capacity, cache-mode bandwidth collapses toward the far
   channel's (the DRAM fraction of traffic is capped by DRAM bandwidth
   in the bottleneck throughput composition).

Residency model: for a uniformly random working set of ``S`` bytes over
inclusive caches of capacities ``c_1 < c_2 < ...``, the fraction of
accesses served at level i is ``(min(c_i, S) - min(c_{i-1}, S)) / S``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CacheLevel", "TLBModel", "MachineModel", "KIB", "MIB", "GIB"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy.

    ``latency_ns`` is the *total* core-to-level access latency when a
    reference is served at this level (not an increment); ``None``
    capacity marks the backing store. ``miss_penalty_ns`` is an extra
    serial charge applied when a reference reaches any level *below*
    this one — this is how HBM-as-cache charges its probe to accesses
    that continue to DRAM (section 5 Property 3).
    """

    name: str
    capacity_bytes: int | None
    latency_ns: float
    bandwidth_mib_s: float
    miss_penalty_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive or None")
        if self.latency_ns < 0 or self.bandwidth_mib_s <= 0:
            raise ValueError(f"{self.name}: bad latency/bandwidth")


@dataclass(frozen=True)
class TLBModel:
    """Piecewise-logarithmic page-walk cost beyond TLB coverage.

    Real pointer-chase latency keeps rising with array size even deep
    inside one memory level (paper Table 2a: flat DRAM rises from 169ns
    at 16MiB to 365ns at 64GiB) because page walks touch progressively
    colder page-table levels. We model the average extra cost as a sum
    of segments, each charging ``ns_per_doubling`` per doubling of the
    working set beyond its ``coverage`` — two segments reproduce the
    paper's slow-then-fast rise (L2 TLB reach, then page-table caches).
    """

    segments: tuple[tuple[int, float], ...] = (
        (8 * MIB, 3.0),
        (64 * MIB, 15.0),
    )

    def walk_ns(self, working_set: int) -> float:
        cost = 0.0
        for coverage, ns_per_doubling in self.segments:
            if working_set > coverage:
                cost += ns_per_doubling * math.log2(working_set / coverage)
        return cost


class MachineModel:
    """A fastest-to-slowest stack of :class:`CacheLevel` s plus a TLB.

    The last level must be the backing store (``capacity_bytes=None``);
    allocations larger than ``allocatable_bytes`` (e.g. an 8GiB cap for
    arrays bound to 16GiB flat-mode HBM) raise ``MemoryError`` like a
    real ``numactl --membind`` allocation would.
    """

    def __init__(
        self,
        name: str,
        levels: Sequence[CacheLevel],
        tlb: TLBModel | None = None,
        allocatable_bytes: int | None = None,
    ) -> None:
        if not levels:
            raise ValueError("need at least one level")
        if levels[-1].capacity_bytes is not None:
            raise ValueError("last level must be the backing store (None capacity)")
        caps = [lvl.capacity_bytes for lvl in levels[:-1]]
        if any(c is None for c in caps):
            raise ValueError("only the last level may have unbounded capacity")
        if any(caps[i] >= caps[i + 1] for i in range(len(caps) - 1)):
            raise ValueError("capacities must strictly increase")
        self.name = name
        self.levels = tuple(levels)
        self.tlb = tlb if tlb is not None else TLBModel()
        self.allocatable_bytes = allocatable_bytes

    # -- allocation ----------------------------------------------------------
    def check_allocation(self, nbytes: int) -> None:
        """Raise MemoryError if an array of ``nbytes`` cannot be bound."""
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if self.allocatable_bytes is not None and nbytes > self.allocatable_bytes:
            raise MemoryError(
                f"{self.name}: cannot allocate {nbytes} bytes "
                f"(limit {self.allocatable_bytes})"
            )

    # -- residency -----------------------------------------------------------
    def served_fractions(self, working_set: int) -> np.ndarray:
        """Fraction of uniform random accesses served at each level."""
        if working_set <= 0:
            raise ValueError("working_set must be positive")
        fractions = np.zeros(len(self.levels))
        below = 0.0
        for i, lvl in enumerate(self.levels):
            covered = (
                1.0
                if lvl.capacity_bytes is None
                else min(lvl.capacity_bytes, working_set) / working_set
            )
            fractions[i] = covered - below
            below = covered
            if covered >= 1.0:
                break
        return fractions

    # -- latency --------------------------------------------------------------
    def expected_latency_ns(self, working_set: int) -> float:
        """Mean pointer-chase latency for a ``working_set``-byte array."""
        self.check_allocation(working_set)
        fractions = self.served_fractions(working_set)
        latency = 0.0
        for i, (f, lvl) in enumerate(zip(fractions, self.levels)):
            if f <= 0.0:
                continue
            penalty = sum(up.miss_penalty_ns for up in self.levels[:i])
            latency += f * (lvl.latency_ns + penalty)
        return latency + self.tlb.walk_ns(working_set)

    def sample_latencies_ns(
        self,
        working_set: int,
        operations: int,
        rng: np.random.Generator,
        jitter: float = 0.02,
    ) -> np.ndarray:
        """Monte-Carlo per-access latencies (the simulated microbenchmark).

        Each access is served by a level drawn from the residency
        distribution; ``jitter`` adds multiplicative Gaussian noise like
        real measurements carry.
        """
        self.check_allocation(working_set)
        fractions = self.served_fractions(working_set)
        base = np.empty(len(self.levels))
        for i, lvl in enumerate(self.levels):
            base[i] = lvl.latency_ns + sum(
                up.miss_penalty_ns for up in self.levels[:i]
            )
        choices = rng.choice(len(self.levels), size=operations, p=fractions)
        lat = base[choices] + self.tlb.walk_ns(working_set)
        if jitter > 0:
            lat = lat * rng.normal(1.0, jitter, size=operations)
        return np.maximum(lat, 0.0)

    # -- bandwidth --------------------------------------------------------------
    def streaming_bandwidth_mib_s(
        self,
        working_set: int,
        threads: int = 272,
        per_thread_mib_s: float = 1600.0,
    ) -> float:
        """Achieved GLUPS-style bandwidth for a ``working_set`` array.

        With many threads streaming concurrently, levels operate as a
        pipeline: level i must carry every byte served at its depth or
        deeper (misses pass through on their way down and fills on the
        way back up), so it caps throughput at
        ``bandwidth_i / traffic_i`` where ``traffic_i`` is the fraction
        of references reaching level i. Achieved bandwidth is the
        minimum of these caps — the far-channel bottleneck of section 5
        Property 4 falls out of the DRAM term: in cache mode with miss
        fraction f, throughput <= DRAM_bw / f. The result is further
        capped by what the requesting cores can issue
        (``threads * per_thread_mib_s``), which is why single-threaded
        runs cannot saturate HBM.
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.check_allocation(working_set)
        fractions = self.served_fractions(working_set)
        bottleneck = math.inf
        reaching = 1.0
        for f, lvl in zip(fractions, self.levels):
            if reaching <= 0.0:
                break
            bottleneck = min(bottleneck, lvl.bandwidth_mib_s / reaching)
            reaching -= f
        issue_bw = threads * per_thread_mib_s
        return min(bottleneck, issue_bw)

    def __repr__(self) -> str:
        inner = ", ".join(lvl.name for lvl in self.levels)
        return f"MachineModel({self.name!r}: {inner})"
