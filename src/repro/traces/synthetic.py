"""Synthetic page-reference generators.

Statistical trace families for unit tests, property tests, and sweeps
beyond the paper's instrumented kernels: uniform random, Zipf-skewed
(cache-friendly hot sets), sequential streaming, strided, and phased
(working set shifts over time — the regime where a good HBM partition
"changes in each time step", paper section 1.1).
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload, spawn_thread_seeds

__all__ = [
    "random_trace",
    "zipf_trace",
    "stream_trace",
    "strided_trace",
    "phased_trace",
    "random_workload",
    "zipf_workload",
    "stream_workload",
    "strided_workload",
    "phased_workload",
]


def random_trace(
    length: int, pages: int, rng: np.random.Generator
) -> Trace:
    """Uniform random references over ``pages`` distinct pages."""
    if length < 0 or pages < 1:
        raise ValueError(f"need length >= 0 and pages >= 1, got {length}, {pages}")
    return Trace(
        rng.integers(0, pages, size=length),
        source="random",
        params={"pages": pages},
    )


def zipf_trace(
    length: int, pages: int, rng: np.random.Generator, s: float = 1.2
) -> Trace:
    """Zipf(s)-distributed references: a skewed, cache-friendly hot set."""
    if s <= 0:
        raise ValueError(f"zipf exponent must be > 0, got {s}")
    ranks = np.arange(1, pages + 1, dtype=np.float64)
    weights = ranks**-s
    weights /= weights.sum()
    # A fixed random page permutation decouples popularity from page id.
    perm = rng.permutation(pages)
    refs = perm[rng.choice(pages, size=length, p=weights)]
    return Trace(refs, source="zipf", params={"pages": pages, "s": s})


def stream_trace(length: int, pages: int) -> Trace:
    """Pure sequential streaming: 0, 1, ..., pages-1, 0, 1, ...

    The page-level image of a large sequential scan; equivalent to the
    adversarial cycle but sized by reference count.
    """
    if length < 0 or pages < 1:
        raise ValueError(f"need length >= 0 and pages >= 1, got {length}, {pages}")
    return Trace(
        np.arange(length, dtype=np.int64) % pages,
        source="stream",
        params={"pages": pages},
    )


def strided_trace(length: int, pages: int, stride: int) -> Trace:
    """Fixed-stride references modulo the page set."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    return Trace(
        (np.arange(length, dtype=np.int64) * stride) % pages,
        source="strided",
        params={"pages": pages, "stride": stride},
    )


def phased_trace(
    phases: int,
    phase_length: int,
    pages_per_phase: int,
    rng: np.random.Generator,
    overlap: float = 0.0,
) -> Trace:
    """Working set shifts every ``phase_length`` references.

    Each phase draws uniformly from its own window of
    ``pages_per_phase`` pages; consecutive windows share an ``overlap``
    fraction of pages. Stresses replacement policies and the dynamic
    re-partitioning argument of section 1.1.
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    if phases < 1 or phase_length < 1 or pages_per_phase < 1:
        raise ValueError("phases, phase_length, pages_per_phase must be >= 1")
    step = max(1, int(round(pages_per_phase * (1.0 - overlap))))
    chunks = []
    for ph in range(phases):
        base = ph * step
        chunks.append(base + rng.integers(0, pages_per_phase, size=phase_length))
    return Trace(
        np.concatenate(chunks),
        source="phased",
        params={
            "phases": phases,
            "phase_length": phase_length,
            "pages_per_phase": pages_per_phase,
            "overlap": overlap,
        },
    )


@register_workload("random")
def random_workload(
    threads: int,
    seed: int = 0,
    length: int = 10_000,
    pages: int = 512,
) -> Workload:
    """Uniform-random workload."""
    rngs = spawn_thread_seeds(seed, threads)
    return Workload(
        [random_trace(length, pages, r) for r in rngs],
        name=f"random-l{length}-u{pages}",
    )


@register_workload("zipf")
def zipf_workload(
    threads: int,
    seed: int = 0,
    length: int = 10_000,
    pages: int = 512,
    s: float = 1.2,
) -> Workload:
    """Zipf-skewed workload."""
    rngs = spawn_thread_seeds(seed, threads)
    return Workload(
        [zipf_trace(length, pages, r, s=s) for r in rngs],
        name=f"zipf{s}-l{length}-u{pages}",
    )


@register_workload("stream")
def stream_workload(
    threads: int,
    seed: int = 0,  # noqa: ARG001 - deterministic, kept for API symmetry
    length: int = 10_000,
    pages: int = 512,
) -> Workload:
    """Sequential-streaming workload."""
    return Workload(
        [stream_trace(length, pages) for _ in range(threads)],
        name=f"stream-l{length}-u{pages}",
    )


@register_workload("stride")
def strided_workload(
    threads: int,
    seed: int = 0,  # noqa: ARG001 - deterministic, kept for API symmetry
    length: int = 10_000,
    pages: int = 512,
    stride: int = 7,
) -> Workload:
    """Fixed-stride workload."""
    return Workload(
        [strided_trace(length, pages, stride) for _ in range(threads)],
        name=f"stride{stride}-l{length}-u{pages}",
    )


@register_workload("phased")
def phased_workload(
    threads: int,
    seed: int = 0,
    phases: int = 8,
    phase_length: int = 2_000,
    pages_per_phase: int = 128,
    overlap: float = 0.25,
) -> Workload:
    """Phase-shifting workload."""
    rngs = spawn_thread_seeds(seed, threads)
    return Workload(
        [
            phased_trace(phases, phase_length, pages_per_phase, r, overlap=overlap)
            for r in rngs
        ],
        name=f"phased-{phases}x{phase_length}",
    )
