"""Instrumented stencil / STREAM kernel trace generators.

Laghari and Unat [41] (paper section 1.3) design flat-mode placement
for "computational kernels such as STREAM on KNL" — bandwidth-bound
kernels with perfectly regular access. These traces are the polar
opposite of BFS: pure streaming with working sets equal to the array
size, so they stress the far channel with compulsory traffic and show
the regime where every arbitration policy is equivalent (queue mostly
short) until thread count crosses the channel capacity.

Kernels:

* :func:`stream_triad` — ``a[i] = b[i] + s * c[i]`` (the STREAM triad);
* :func:`jacobi_stencil` — ``iters`` sweeps of the 1-D 3-point Jacobi
  stencil with buffer swap, the textbook memory-bound PDE kernel.

Both verified against numpy with logging paused.
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload, spawn_thread_seeds
from .instrument import DEFAULT_ITEMSIZE, DEFAULT_PAGE_BYTES, AccessLogger, LoggingArray

__all__ = [
    "stream_triad",
    "jacobi_stencil",
    "stream_triad_trace",
    "jacobi_trace",
    "stream_triad_workload",
    "jacobi_workload",
]


def stream_triad(
    a: LoggingArray, b: LoggingArray, c: LoggingArray, scalar: float, n: int
) -> None:
    """STREAM triad: ``a[i] = b[i] + scalar * c[i]``."""
    for i in range(n):
        a[i] = b[i] + scalar * c[i]


def jacobi_stencil(
    a: LoggingArray, b: LoggingArray, n: int, iters: int
) -> LoggingArray:
    """``iters`` Jacobi sweeps of the 1-D 3-point stencil; returns the
    buffer holding the final values."""
    src, dst = a, b
    for _ in range(iters):
        dst[0] = src[0]
        for i in range(1, n - 1):
            dst[i] = (src[i - 1] + src[i] + src[i + 1]) / 3.0
        dst[n - 1] = src[n - 1]
        src, dst = dst, src
    return src


def stream_triad_trace(
    n: int = 4096,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    verify: bool = True,
) -> Trace:
    """Page trace of one STREAM-triad pass over three n-element arrays."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    logger = AccessLogger(page_bytes=page_bytes)
    b_np = rng.uniform(-1, 1, size=n)
    c_np = rng.uniform(-1, 1, size=n)
    scalar = 3.0
    a = logger.array([0.0] * n, itemsize=itemsize, name="a")
    b = logger.array(b_np, itemsize=itemsize, name="b")
    c = logger.array(c_np, itemsize=itemsize, name="c")
    stream_triad(a, b, c, scalar, n)
    logger.pause()
    if verify and not np.allclose(a.peek(), b_np + scalar * c_np):
        raise AssertionError("instrumented triad disagrees with numpy")
    return logger.to_trace(source="stream_triad", n=n, itemsize=itemsize)


def jacobi_trace(
    n: int = 2048,
    iters: int = 4,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    verify: bool = True,
) -> Trace:
    """Page trace of ``iters`` Jacobi sweeps over an n-point grid."""
    if n < 3:
        raise ValueError(f"stencil needs n >= 3, got {n}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    logger = AccessLogger(page_bytes=page_bytes)
    initial = rng.uniform(0, 1, size=n)
    a = logger.array(initial, itemsize=itemsize, name="grid")
    b = logger.array([0.0] * n, itemsize=itemsize, name="buffer")
    final = jacobi_stencil(a, b, n, iters)
    logger.pause()
    if verify:
        expected = initial.copy()
        for _ in range(iters):
            nxt = expected.copy()
            nxt[1:-1] = (expected[:-2] + expected[1:-1] + expected[2:]) / 3.0
            expected = nxt
        if not np.allclose(final.peek(), expected):
            raise AssertionError("instrumented stencil disagrees with numpy")
    return logger.to_trace(source="jacobi", n=n, iters=iters, itemsize=itemsize)


@register_workload("stream_triad")
def stream_triad_workload(
    threads: int,
    seed: int = 0,
    n: int = 4096,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    verify: bool = False,
) -> Workload:
    """STREAM-triad workload: ``threads`` independent passes."""
    rngs = spawn_thread_seeds(seed, threads)
    traces = [
        stream_triad_trace(
            n=n, seed=rngs[i], page_bytes=page_bytes, itemsize=itemsize,
            verify=verify,
        )
        for i in range(threads)
    ]
    return Workload(traces, name=f"triad-n{n}", coalesce=coalesce)


@register_workload("jacobi")
def jacobi_workload(
    threads: int,
    seed: int = 0,
    n: int = 2048,
    iters: int = 4,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    verify: bool = False,
) -> Workload:
    """Jacobi-stencil workload: ``threads`` independent grids."""
    rngs = spawn_thread_seeds(seed, threads)
    traces = [
        jacobi_trace(
            n=n, iters=iters, seed=rngs[i], page_bytes=page_bytes,
            itemsize=itemsize, verify=verify,
        )
        for i in range(threads)
    ]
    return Workload(traces, name=f"jacobi-n{n}x{iters}", coalesce=coalesce)
