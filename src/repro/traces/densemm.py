"""Instrumented dense matrix-matrix multiplication.

The paper's parameter sweep includes dense matrix multiplication as a
trace source (section 1.2: "the source of the access traces (GNU sort,
quicksort, Sparse and Dense Matrix Multiplication)"). We implement the
classic row-major i-k-j triple loop — the cache-friendly ordering — over
logging arrays, with an optional naive i-j-k variant for locality
ablations.
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload, spawn_thread_seeds
from .instrument import DEFAULT_ITEMSIZE, DEFAULT_PAGE_BYTES, AccessLogger, LoggingArray

__all__ = ["densemm_ikj", "densemm_ijk", "densemm_trace", "densemm_workload"]


def densemm_ikj(a: LoggingArray, b: LoggingArray, c: LoggingArray, n: int) -> None:
    """C += A * B with the i-k-j loop order (row-major streaming)."""
    for i in range(n):
        for k in range(n):
            a_ik = a[i * n + k]
            if a_ik == 0:
                continue
            for j in range(n):
                c[i * n + j] = c[i * n + j] + a_ik * b[k * n + j]


def densemm_ijk(a: LoggingArray, b: LoggingArray, c: LoggingArray, n: int) -> None:
    """C += A * B with the naive i-j-k order (column strides through B)."""
    for i in range(n):
        for j in range(n):
            acc = 0.0
            for k in range(n):
                acc += a[i * n + k] * b[k * n + j]
            c[i * n + j] = acc


def densemm_trace(
    n: int = 32,
    seed: int | np.random.Generator = 0,
    order: str = "ikj",
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    verify: bool = True,
) -> Trace:
    """Page trace of one n x n dense matrix product."""
    if order not in ("ikj", "ijk"):
        raise ValueError(f"order must be 'ikj' or 'ijk', got {order!r}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    logger = AccessLogger(page_bytes=page_bytes)
    a_np = rng.uniform(-1.0, 1.0, size=n * n)
    b_np = rng.uniform(-1.0, 1.0, size=n * n)
    a = logger.array(a_np, itemsize=itemsize, name="A")
    b = logger.array(b_np, itemsize=itemsize, name="B")
    c = logger.array([0.0] * (n * n), itemsize=itemsize, name="C")
    kernel = densemm_ikj if order == "ikj" else densemm_ijk
    kernel(a, b, c, n)
    logger.pause()
    if verify:
        expected = a_np.reshape(n, n) @ b_np.reshape(n, n)
        got = np.asarray(c.peek()).reshape(n, n)
        if not np.allclose(got, expected, atol=1e-9):
            raise AssertionError("instrumented dense MM disagrees with numpy")
    return logger.to_trace(source=f"densemm-{order}", n=n, itemsize=itemsize)


@register_workload("densemm")
def densemm_workload(
    threads: int,
    seed: int = 0,
    n: int = 32,
    order: str = "ikj",
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    verify: bool = False,
    work_factors=None,
) -> Workload:
    """Dense-MM workload: ``threads`` independent random instances."""
    rngs = spawn_thread_seeds(seed, threads)
    if work_factors is None:
        sizes = [n] * threads
    else:
        factors = list(work_factors)
        if len(factors) < threads:
            raise ValueError(
                f"work_factors has {len(factors)} entries for {threads} threads"
            )
        sizes = [max(2, int(round(n * f))) for f in factors[:threads]]
    traces = [
        densemm_trace(
            n=sizes[i],
            seed=rngs[i],
            order=order,
            page_bytes=page_bytes,
            itemsize=itemsize,
            verify=verify,
        )
        for i in range(threads)
    ]
    return Workload(traces, name=f"densemm-{order}-n{n}", coalesce=coalesce)
