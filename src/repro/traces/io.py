"""Workload persistence and caching.

Two formats:

* **NPZ** — compact binary for cached workloads (one array per thread
  plus a JSON metadata blob);
* **text** — one page id per line with ``# thread`` separators, for
  interop with external simulators (the paper's C++ simulator ingests
  address traces of this shape).

:class:`WorkloadCache` memoizes expensive instrumented-trace generation
(a full sort/SpGEMM workload takes seconds to minutes to regenerate) by
hashing the generator kind and parameters.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.log import get_logger
from .base import Trace, Workload, make_workload

log = get_logger("traces.io")

__all__ = [
    "save_workload_npz",
    "load_workload_npz",
    "save_workload_text",
    "load_workload_text",
    "WorkloadCache",
    "default_cache_dir",
]


def save_workload_npz(workload: Workload, path: str | os.PathLike) -> None:
    """Write a workload (source traces + metadata) to an ``.npz`` file."""
    arrays = {
        f"trace_{i}": t.pages for i, t in enumerate(workload.source_traces)
    }
    meta = {
        "name": workload.name,
        "threads": workload.num_threads,
        # Without this flag a reloaded non-disjoint workload (namespace
        # False, e.g. the shared-pages family) would be renumbered back
        # into disjoint blocks, silently destroying the sharing.
        "namespace": workload.namespaced,
        "sources": [t.source for t in workload.source_traces],
        "params": [dict(t.params) for t in workload.source_traces],
    }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_workload_npz(path: str | os.PathLike) -> Workload:
    """Read a workload written by :func:`save_workload_npz`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
        traces = [
            Trace(
                data[f"trace_{i}"],
                source=meta["sources"][i],
                params=meta["params"][i],
            )
            for i in range(meta["threads"])
        ]
    return Workload(
        traces, name=meta["name"], namespace=meta.get("namespace", True)
    )


def save_workload_text(workload: Workload, path: str | os.PathLike) -> None:
    """Write a workload as newline-separated page ids per thread.

    The ``# namespace`` header records whether the workload renumbers
    per-thread pages into disjoint blocks. Without it a reloaded
    shared-page workload (``namespace=False``) would be renumbered back
    into disjoint blocks, silently destroying the sharing — the text
    twin of the NPZ round-trip bug fixed for ``save_workload_npz``.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# workload {workload.name}\n")
        fh.write(f"# namespace {'true' if workload.namespaced else 'false'}\n")
        for i, trace in enumerate(workload.source_traces):
            fh.write(f"# thread {i} source={trace.source}\n")
            fh.write("\n".join(str(p) for p in trace.pages.tolist()))
            fh.write("\n")


def load_workload_text(path: str | os.PathLike) -> Workload:
    """Read a workload written by :func:`save_workload_text`.

    Headerless files (external traces) keep the historical defaults:
    a single thread, namespaced page ids.
    """
    name = Path(path).stem
    namespace = True
    traces: list[list[int]] = []
    current: list[int] | None = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                header = line[1:].strip()
                if header.startswith("workload"):
                    name = line.split("workload", 1)[1].strip() or name
                elif header.startswith("namespace"):
                    value = header.split("namespace", 1)[1].strip().lower()
                    namespace = value not in ("false", "0", "no")
                elif header.startswith("thread"):
                    current = []
                    traces.append(current)
                continue
            if current is None:  # headerless file: single thread
                current = []
                traces.append(current)
            current.append(int(line))
    if not traces:
        raise ValueError(f"no traces found in {path}")
    return Workload(
        [np.asarray(t, dtype=np.int64) for t in traces],
        name=name,
        namespace=namespace,
    )


def default_cache_dir() -> Path:
    """``$HBM_REPRO_CACHE`` or ``~/.cache/hbm-repro``."""
    env = os.environ.get("HBM_REPRO_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "hbm-repro"


class WorkloadCache:
    """Disk cache for generated workloads, keyed by generator parameters.

    >>> cache = WorkloadCache()                         # doctest: +SKIP
    >>> wl = cache.get("sort", threads=16, n=2000)      # doctest: +SKIP
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def _key(self, kind: str, threads: int, seed: int, params: dict[str, Any]) -> str:
        blob = json.dumps(
            {"kind": kind, "threads": threads, "seed": seed, "params": params},
            sort_keys=True,
            default=str,
        )
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]
        return f"{kind}-t{threads}-s{seed}-{digest}"

    def path_for(self, kind: str, threads: int, seed: int = 0, **params: Any) -> Path:
        return self.directory / (self._key(kind, threads, seed, params) + ".npz")

    def get(self, kind: str, threads: int, seed: int = 0, **params: Any) -> Workload:
        """Load the workload from cache, generating and storing on miss."""
        path = self.path_for(kind, threads, seed=seed, **params)
        if path.exists():
            log.debug("workload cache hit: %s", path.name)
            return load_workload_npz(path)
        log.debug("workload cache miss: %s (generating)", path.name)
        workload = make_workload(kind, threads, seed=seed, **params)
        self.directory.mkdir(parents=True, exist_ok=True)
        # pid-suffixed temp name (matching ResultCache.put): two
        # processes generating the same workload concurrently must not
        # clobber each other's half-written temp file; both finish with
        # an atomic os.replace onto the final name.
        tmp = path.with_name(f"{path.stem}.tmp{os.getpid()}.npz")
        try:
            save_workload_npz(workload, tmp)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)  # left behind only on failure
        return workload

    def clear(self) -> int:
        """Delete every cached workload, plus any stale ``*.tmp*``
        leftovers from killed writers; returns the number removed."""
        removed = 0
        if self.directory.exists():
            stale = set(self.directory.glob("*.npz"))
            stale.update(self.directory.glob("*.tmp*"))
            for f in stale:
                f.unlink(missing_ok=True)
                removed += 1
        return removed

    def stats(self) -> dict[str, Any]:
        """Entry count and on-disk footprint, for ``repro cache stats``."""
        entries = 0
        size = 0
        if self.directory.exists():
            for f in self.directory.glob("*.npz"):
                entries += 1
                try:
                    size += f.stat().st_size
                except OSError:
                    pass
        return {"entries": entries, "bytes": size}
