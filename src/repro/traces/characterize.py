"""Trace characterization: reuse distance, working sets, miss curves.

The paper's results hinge on trace structure: FIFO collapses when reuse
distances exceed HBM capacity (Dataset 3 is engineered that way), and
the sort/SpGEMM crossovers happen where per-thread working sets meet
the HBM-size sweep. These standard locality tools quantify that
structure, so experiment regimes can be *chosen* (and explained)
instead of found by trial:

* :func:`reuse_distances` — for each reference, the number of distinct
  pages since the previous reference to the same page (the LRU stack
  distance; inf for cold misses);
* :func:`miss_ratio_curve` — LRU miss ratio as a function of cache
  size, computed in one pass from the stack distances (Mattson's
  classic result: LRU misses at capacity k are exactly the references
  with stack distance >= k);
* :func:`working_set_profile` — distinct pages per fixed-size window
  (Denning's working set);
* :func:`characterize` — one-call summary used by the workload REPL
  and the experiment-design notes in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "reuse_distances",
    "miss_ratio_curve",
    "working_set_profile",
    "TraceProfile",
    "characterize",
]


def reuse_distances(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distance of every reference (-1 encodes cold misses).

    Maintains the sorted list of each resident page's last-use
    timestamp; a reference's stack distance is the number of timestamps
    strictly greater than its page's previous use (found by bisection),
    after which the stale timestamp is removed and the fresh one
    appended. List deletion makes this O(n * u) worst case — fine for
    the experiment-scale traces this analysis targets.
    """
    trace = np.asarray(trace, dtype=np.int64)
    distances = np.full(len(trace), -1, dtype=np.int64)
    # position-in-recency implemented via timestamping + sorted count
    last_use: dict[int, int] = {}
    use_times: list[int] = []  # sorted timestamps of the current pages
    import bisect

    for i, page in enumerate(trace.tolist()):
        prev = last_use.get(page)
        if prev is not None:
            # pages used strictly after prev = distinct pages between
            idx = bisect.bisect_right(use_times, prev)
            distances[i] = len(use_times) - idx
            use_times.pop(idx - 1)
        last_use[page] = i
        use_times.append(i)
    return distances


def miss_ratio_curve(
    trace: Sequence[int] | np.ndarray,
    capacities: Sequence[int],
) -> list[tuple[int, float]]:
    """LRU miss ratio at each capacity (Mattson stack analysis).

    A reference with stack distance d hits iff the cache holds at least
    d+1 pages; cold references always miss.
    """
    trace = np.asarray(trace, dtype=np.int64)
    if len(trace) == 0:
        return [(int(k), 0.0) for k in capacities]
    distances = reuse_distances(trace)
    n = len(trace)
    curve = []
    for k in capacities:
        if k < 1:
            raise ValueError(f"capacities must be >= 1, got {k}")
        hits = int(((distances >= 0) & (distances < k)).sum())
        curve.append((int(k), 1.0 - hits / n))
    return curve


def working_set_profile(
    trace: Sequence[int] | np.ndarray,
    window: int,
) -> np.ndarray:
    """Distinct pages in each consecutive ``window``-reference slice."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    trace = np.asarray(trace, dtype=np.int64)
    return np.array(
        [
            len(np.unique(trace[start : start + window]))
            for start in range(0, len(trace), window)
        ],
        dtype=np.int64,
    )


@dataclass(frozen=True)
class TraceProfile:
    """Locality summary of one trace."""

    references: int
    unique_pages: int
    cold_fraction: float
    median_reuse_distance: float
    p90_reuse_distance: float
    max_window_working_set: int
    mean_window_working_set: float
    lru_miss_ratio_at: dict[int, float]

    def summary(self) -> str:
        rows = [
            f"references           : {self.references}",
            f"unique pages         : {self.unique_pages}",
            f"cold fraction        : {self.cold_fraction:.4f}",
            f"median reuse distance: {self.median_reuse_distance:.1f}",
            f"p90 reuse distance   : {self.p90_reuse_distance:.1f}",
            f"working set (max/avg): {self.max_window_working_set}"
            f" / {self.mean_window_working_set:.1f}",
        ]
        for k, ratio in sorted(self.lru_miss_ratio_at.items()):
            rows.append(f"LRU miss ratio @ k={k:<6}: {ratio:.4f}")
        return "\n".join(rows)


def characterize(
    trace: Sequence[int] | np.ndarray,
    capacities: Sequence[int] = (64, 256, 1024),
    window: int = 512,
) -> TraceProfile:
    """One-call locality profile of a trace."""
    trace = np.asarray(trace, dtype=np.int64)
    n = len(trace)
    if n == 0:
        return TraceProfile(0, 0, 0.0, 0.0, 0.0, 0, 0.0, {int(k): 0.0 for k in capacities})
    distances = reuse_distances(trace)
    warm = distances[distances >= 0]
    ws = working_set_profile(trace, window)
    curve = dict(miss_ratio_curve(trace, capacities))
    return TraceProfile(
        references=n,
        unique_pages=len(np.unique(trace)),
        cold_fraction=float((distances < 0).mean()),
        median_reuse_distance=float(np.median(warm)) if len(warm) else 0.0,
        p90_reuse_distance=float(np.percentile(warm, 90)) if len(warm) else 0.0,
        max_window_working_set=int(ws.max()),
        mean_window_working_set=float(ws.mean()),
        lru_miss_ratio_at={int(k): float(v) for k, v in curve.items()},
    )
