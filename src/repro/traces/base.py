"""Trace and workload containers (paper section 3.2).

A **trace** is one core's page-reference sequence, produced either by
instrumenting a real kernel (sorting, SpGEMM, dense MM — see
:mod:`repro.traces.instrument`) or synthetically. A **workload** is one
trace per core. The model's Property 1 requires the per-core page sets
to be mutually exclusive; :class:`Workload` enforces this by compactly
renumbering each trace's pages into a disjoint global id range.

The paper generates workloads by running *p* independent instances of
the same program with different randomness (section 3.2); the
:func:`make_workload` factory follows that recipe: one generator, *p*
seeds spawned from a root seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..obs.log import get_logger

log = get_logger("traces")

__all__ = [
    "PageAttestation",
    "Trace",
    "Workload",
    "coalesce_consecutive",
    "make_workload",
    "register_workload",
    "workload_kinds",
    "spawn_thread_seeds",
]


@dataclass(frozen=True)
class PageAttestation:
    """Facts about a workload's page-id layout, certified at build time.

    The fast engine (:mod:`repro.core.fastengine`) needs to know that
    per-core page namespaces are disjoint and that ids are small enough
    for dense arrays. Scanning every trace to establish this costs
    O(n log n) per dispatch; a :class:`Workload` already knows the
    answer from construction (renumbering *makes* the namespaces
    disjoint), so it carries this attestation and the engine selector
    trusts it instead of rescanning.

    Attributes
    ----------
    disjoint:
        No page id appears in two different traces.
    min_page / max_page:
        Bounds over all references (``min_page=0, max_page=-1`` for a
        workload with no references).
    """

    disjoint: bool
    min_page: int
    max_page: int


def coalesce_consecutive(pages: np.ndarray) -> np.ndarray:
    """Collapse runs of identical consecutive page references to one.

    A sequential scan touches the same page once per element; after the
    address -> page mapping that becomes a run of identical references.
    Coalescing keeps exactly the page-*transition* sequence, which
    preserves miss behaviour exactly (a rerefenced resident page can
    never miss) while shrinking hit counts — the paper's qualitative
    FIFO-vs-Priority comparisons are unaffected, and the experiment
    configs document where coalescing is applied.
    """
    pages = np.asarray(pages)
    if len(pages) == 0:
        return pages.copy()
    keep = np.empty(len(pages), dtype=bool)
    keep[0] = True
    np.not_equal(pages[1:], pages[:-1], out=keep[1:])
    return pages[keep]


@dataclass(frozen=True)
class Trace:
    """One core's page-reference sequence plus provenance metadata."""

    pages: np.ndarray
    source: str = "unknown"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        pages = np.ascontiguousarray(np.asarray(self.pages, dtype=np.int64))
        object.__setattr__(self, "pages", pages)
        if pages.ndim != 1:
            raise ValueError(f"trace must be 1-D, got shape {pages.shape}")

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def unique_pages(self) -> int:
        """Working-set size in pages."""
        return len(np.unique(self.pages)) if len(self.pages) else 0

    def coalesced(self) -> "Trace":
        """Copy with consecutive duplicate references collapsed."""
        return Trace(
            coalesce_consecutive(self.pages),
            source=self.source,
            params={**self.params, "coalesced": True},
        )

    def renumbered(self, offset: int = 0) -> tuple["Trace", int]:
        """Compactly renumber pages to ``offset .. offset + u - 1``.

        Returns the new trace and the number of distinct pages ``u``.
        """
        if len(self.pages) == 0:
            return self, 0
        _, inverse = np.unique(self.pages, return_inverse=True)
        u = int(inverse.max()) + 1
        return (
            Trace(inverse.astype(np.int64) + offset, self.source, self.params),
            u,
        )


class Workload:
    """One renumbered trace per core, with disjoint page namespaces.

    Parameters
    ----------
    traces:
        Per-core traces (``Trace`` objects or raw arrays). Each trace's
        pages are renumbered into a contiguous block so that no page id
        appears in two traces (model Property 1), and so page ids stay
        small and dict-friendly for the simulator.
    name:
        Workload label used in experiment output.
    coalesce:
        If True, collapse consecutive duplicate references per trace
        before renumbering.
    namespace:
        If True (default), renumber each trace into a disjoint page-id
        block, enforcing the model's Property 1. Pass False for
        *deliberately* non-disjoint workloads (the paper's section 6.1
        future-work setting), in which page ids are taken as-is and
        pages with equal ids are genuinely shared between cores.
    """

    def __init__(
        self,
        traces: Sequence[Trace | np.ndarray | Sequence[int]],
        name: str = "workload",
        coalesce: bool = False,
        namespace: bool = True,
    ) -> None:
        if len(traces) == 0:
            raise ValueError("workload needs at least one trace")
        self.name = name
        self.namespaced = namespace
        normalized: list[Trace] = []
        for t in traces:
            trace = t if isinstance(t, Trace) else Trace(np.asarray(t))
            if coalesce:
                trace = trace.coalesced()
            normalized.append(trace)
        self.source_traces: tuple[Trace, ...] = tuple(normalized)
        if namespace:
            renumbered: list[Trace] = []
            offsets: list[int] = []
            offset = 0
            for trace in normalized:
                offsets.append(offset)
                new_trace, u = trace.renumbered(offset)
                renumbered.append(new_trace)
                offset += u
            self._renumbered: tuple[Trace, ...] = tuple(renumbered)
            self.page_offsets: tuple[int, ...] = tuple(offsets)
            self.total_unique_pages: int = offset
            # Renumbering assigns each trace its own contiguous id block,
            # so disjointness and the id range are known without a scan.
            self.attestation = PageAttestation(
                disjoint=True, min_page=0, max_page=offset - 1
            )
        else:
            self._renumbered = tuple(normalized)
            self.page_offsets = tuple(0 for _ in normalized)
            non_empty = [t.pages for t in normalized if len(t)]
            if non_empty:
                merged = np.concatenate(non_empty)
                self.total_unique_pages = len(np.unique(merged))
                per_thread = sum(len(np.unique(t)) for t in non_empty)
                self.attestation = PageAttestation(
                    disjoint=per_thread == self.total_unique_pages,
                    min_page=int(merged.min()),
                    max_page=int(merged.max()),
                )
            else:
                self.total_unique_pages = 0
                self.attestation = PageAttestation(
                    disjoint=True, min_page=0, max_page=-1
                )

    # -- simulator-facing view ---------------------------------------------
    @property
    def traces(self) -> list[np.ndarray]:
        """Disjoint page-id arrays, ready for :class:`repro.core.Simulator`."""
        return [t.pages for t in self._renumbered]

    @property
    def num_threads(self) -> int:
        return len(self._renumbered)

    @property
    def lengths(self) -> tuple[int, ...]:
        return tuple(len(t) for t in self._renumbered)

    @property
    def total_references(self) -> int:
        return sum(self.lengths)

    @property
    def max_length(self) -> int:
        return max(self.lengths)

    def unique_pages_per_thread(self) -> tuple[int, ...]:
        offs = list(self.page_offsets) + [self.total_unique_pages]
        return tuple(offs[i + 1] - offs[i] for i in range(self.num_threads))

    def subset(self, threads: int) -> "Workload":
        """Workload restricted to the first ``threads`` cores."""
        if not 1 <= threads <= self.num_threads:
            raise ValueError(
                f"threads must be in [1, {self.num_threads}], got {threads}"
            )
        return Workload(
            self.source_traces[:threads],
            name=self.name,
            namespace=self.namespaced,
        )

    def __repr__(self) -> str:
        return (
            f"Workload(name={self.name!r}, threads={self.num_threads}, "
            f"refs={self.total_references}, unique={self.total_unique_pages})"
        )


# -- workload factory --------------------------------------------------------

#: kind -> generator(threads, seed, **params) -> Workload
_WORKLOAD_REGISTRY: dict[str, Callable[..., Workload]] = {}


def register_workload(kind: str) -> Callable[[Callable[..., Workload]], Callable[..., Workload]]:
    """Decorator registering a workload generator under ``kind``."""

    def decorate(fn: Callable[..., Workload]) -> Callable[..., Workload]:
        if kind in _WORKLOAD_REGISTRY:
            raise ValueError(f"workload kind {kind!r} already registered")
        _WORKLOAD_REGISTRY[kind] = fn
        return fn

    return decorate


def workload_kinds() -> tuple[str, ...]:
    """Registered workload kinds, sorted."""
    return tuple(sorted(_WORKLOAD_REGISTRY))


def make_workload(kind: str, threads: int, seed: int = 0, **params: Any) -> Workload:
    """Build a workload of ``threads`` independent traces of ``kind``.

    Every generator derives per-thread randomness from ``seed`` via
    ``numpy.random.SeedSequence.spawn``, so the same (kind, threads,
    seed, params) triple always yields the identical workload and
    prefixes agree: ``make_workload(k, 8, s).subset(4)`` equals
    ``make_workload(k, 4, s)``.
    """
    # Imports registered lazily to avoid import cycles at package load.
    from . import (  # noqa: F401
        adversarial,
        densemm,
        graph,
        shared,
        sorting,
        spgemm,
        stencil,
        synthetic,
    )

    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    try:
        generator = _WORKLOAD_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; expected one of {workload_kinds()}"
        ) from None
    start = time.perf_counter()
    workload = generator(threads=threads, seed=seed, **params)
    log.debug(
        "generated %s threads=%d seed=%d params=%s: %d refs, %d pages in %.3fs",
        kind, threads, seed, params, workload.total_references,
        workload.total_unique_pages, time.perf_counter() - start,
    )
    return workload


def spawn_thread_seeds(seed: int, threads: int) -> list[np.random.Generator]:
    """One independent generator per thread, derived from a root seed."""
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(threads)]
